//! Confine inference in detail: candidate proposal (the §7 block
//! heuristic), verification, and §6.2 outermost-scope selection.
//!
//! Run with `cargo run --example confine_scopes`.

use localias::ast::parse_module;
use localias::core::infer_confines;

const SOURCE: &str = r#"
lock locks[16];
extern void work();
extern void log_it();

// Simple case: one pair, one scope.
void simple(int i) {
    spin_lock(&locks[i]);
    work();
    spin_unlock(&locks[i]);
}

// The pair sits inside an if; the confine can float to the function
// body (the outermost scope where `i` is visible), and inference
// prefers it.
void nested(int i, int c) {
    log_it();
    if (c) {
        spin_lock(&locks[i]);
        work();
        spin_unlock(&locks[i]);
    }
}

// Not confinable: the index is recomputed between the sites, so
// &locks[i] is not referentially transparent.
void mutated(int i) {
    spin_lock(&locks[i]);
    i = i + 1;
    spin_unlock(&locks[i]);
}

// Not confinable: a second element of the same array is touched inside
// the would-be scope (an alias access).
void crossed(int i, int j) {
    spin_lock(&locks[i]);
    spin_lock(&locks[j]);
    spin_unlock(&locks[j]);
    spin_unlock(&locks[i]);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = parse_module("scopes", SOURCE)?;
    let inf = infer_confines(&m);

    println!("{} candidates proposed:", inf.candidates.len());
    for (i, cand) in inf.candidates.iter().enumerate() {
        let outcome = &inf.analysis.confines[i];
        let status = if inf.chosen.contains(&i) {
            "CHOSEN (outermost success)".to_string()
        } else if outcome.ok() {
            "succeeds (inner scope, shadowed)".to_string()
        } else {
            let reasons: Vec<String> = outcome.reasons.iter().map(|r| r.to_string()).collect();
            format!("rejected: {}", reasons.join("; "))
        };
        println!(
            "  confine? {:<16} block {} stmts {}..={}  →  {status}",
            cand.key, cand.block, cand.start, cand.end
        );
    }

    println!("\n{} confines placed.", inf.chosen.len());
    assert!(!inf.chosen.is_empty());
    Ok(())
}
