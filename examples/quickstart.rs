//! Quickstart: parse a Mini-C module, check a `restrict` annotation, and
//! inspect the may-alias structure.
//!
//! Run with `cargo run --example quickstart`.

use localias::alias::steensgaard;
use localias::ast::parse_module;
use localias::core;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §2 introductory example: within p's scope, p must be
    // the sole access path to *q.
    let good = parse_module(
        "good",
        r#"
        void f(int *q) {
            restrict p = q {
                *p = 1;       // valid: access through the restricted name
                int *r = p;   // valid: a local copy
                *r = 2;       // valid: access through a copy
            }
            *q = 3;           // valid: the restrict scope has ended
        }
        "#,
    )?;
    let analysis = core::check(&good);
    for r in &analysis.restricts {
        println!(
            "restrict {}: {}",
            r.name,
            if r.ok() { "ok" } else { "REJECTED" }
        );
    }
    assert!(analysis.clean());

    // The same program with an illegal access through the old name.
    let bad = parse_module(
        "bad",
        r#"
        void f(int *q) {
            restrict p = q {
                *p = 1;
                *q = 2;       // INVALID: q aliases *p inside the scope
            }
        }
        "#,
    )?;
    let analysis = core::check(&bad);
    for r in &analysis.restricts {
        println!("restrict {}:", r.name);
        for reason in &r.reasons {
            println!("  rejected because {reason}");
        }
    }
    assert!(!analysis.clean());

    // The underlying may-alias analysis is also directly usable.
    let m = parse_module("alias", "void g(int *a) { int *b = a; *b = 1; }")?;
    let aliases = steensgaard::analyze(&m);
    println!(
        "may-alias analysis: {} abstract locations, {} type errors",
        aliases.state.locs.len(),
        aliases.state.mismatches.len()
    );
    Ok(())
}
