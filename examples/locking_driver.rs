//! The paper's motivating scenario (Figure 1): a device driver with a
//! per-device lock array, analyzed by the flow-sensitive lock checker
//! under all three Section 7 modes.
//!
//! Run with `cargo run --example locking_driver`.

use localias::ast::parse_module;
use localias::cqual::{check_locks, Mode};

const DRIVER: &str = r#"
// A miniature network driver: one lock per device.
struct dev { lock mu; int pending; };
struct dev devs[8];
lock registry_mu;
int registered;

extern void hw_kick();
extern void hw_drain();

// Device-local work: needs the device's own lock.
void service(int i) {
    struct dev *d = &devs[i];
    spin_lock(&d->mu);
    d->pending = 0;
    hw_kick();
    spin_unlock(&d->mu);
}

// Global registry: a single scalar lock, no aliasing trouble.
void register_dev() {
    spin_lock(&registry_mu);
    registered = registered + 1;
    spin_unlock(&registry_mu);
}

// Periodic flush over all devices.
void flush_all(int n) {
    for (int i = 0; i < n; i = i + 1) {
        spin_lock(&devs[i].mu);
        hw_drain();
        spin_unlock(&devs[i].mu);
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = parse_module("minidriver", DRIVER)?;

    for mode in [Mode::NoConfine, Mode::Confine, Mode::AllStrong] {
        let report = check_locks(&m, mode);
        println!("{mode:?}: {report}");
        for e in &report.errors {
            println!("    {e}");
        }
    }

    let weak = check_locks(&m, Mode::NoConfine);
    let confined = check_locks(&m, Mode::Confine);
    let strong = check_locks(&m, Mode::AllStrong);
    println!(
        "\nconfine inference eliminated {} of {} spurious errors",
        weak.error_count() - confined.error_count(),
        weak.error_count() - strong.error_count(),
    );
    assert_eq!(confined.error_count(), strong.error_count());
    Ok(())
}
