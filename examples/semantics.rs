//! The §3.2 operational semantics in action: `restrict` as
//! copy-and-poison, and the checker–interpreter correspondence of
//! Theorem 1 (a program that type checks never evaluates to `err`).
//!
//! Run with `cargo run --example semantics`.

use localias::ast::parse_module;
use localias::core;
use localias::interp::{Interp, RuntimeError};

const PROGRAMS: [(&str, &str); 4] = [
    (
        "valid use through the restricted name",
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                *p = *p + 41;
            }
            return *q;
        }
        "#,
    ),
    (
        "illegal use of the old alias inside the scope",
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                *p = 2;
                *q = 3;
            }
            return *q;
        }
        "#,
    ),
    (
        "copy escapes the scope",
        r#"
        int *stash;
        int main() {
            int *q = new (1);
            restrict p = q { stash = p; }
            return *stash;
        }
        "#,
    ),
    (
        "confine with a lock array",
        r#"
        lock locks[4];
        extern void work();
        int main() {
            confine (&locks[2]) {
                spin_lock(&locks[2]);
                work();
                spin_unlock(&locks[2]);
            }
            return 0;
        }
        "#,
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (what, src) in PROGRAMS {
        let m = parse_module("demo", src)?;
        let analysis = core::check(&m);
        let accepted = analysis.clean();

        let mut interp = Interp::new(&m, 100_000);
        let outcome = interp.call_with_default_args("main", 0);

        let static_verdict = if accepted { "ACCEPTED" } else { "REJECTED" };
        let dynamic_verdict = match &outcome {
            Ok(v) => format!("returned {v}"),
            Err(e) => format!("faulted: {e}"),
        };
        println!("{what}:\n  checker: {static_verdict}\n  runtime: {dynamic_verdict}\n");

        // Theorem 1: accepted programs never hit `err`.
        if accepted {
            assert!(
                !matches!(outcome, Err(RuntimeError::RestrictViolation { .. })),
                "soundness violated!"
            );
        }
    }
    println!("Theorem 1 held on every example.");
    Ok(())
}
