//! §5 restrict inference: automatically deciding which `let` bindings may
//! soundly become `restrict`.
//!
//! Run with `cargo run --example restrict_inference`.

use localias::ast::parse_module;
use localias::core::infer_restricts;

const SOURCE: &str = r#"
int *shared;

void examples(int *q, int *r) {
    // Can be restrict: the scope only touches *a through a.
    int *a = q;
    *a = 1;

    // Must stay let: *r is also written through b's scope via r itself.
    int *b = r;
    *b = 2;
    *r = 3;

    // Must stay let: the pointer escapes into a global.
    int *c = q;
    shared = c;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = parse_module("inference", SOURCE)?;
    let analysis = infer_restricts(&m);

    println!("let-or-restrict verdicts:");
    for c in &analysis.candidates {
        let verdict = if c.restricted { "restrict" } else { "let" };
        println!("  {:<4} {}", verdict, c.name);
    }

    let restricted: Vec<&str> = analysis
        .candidates
        .iter()
        .filter(|c| c.restricted)
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(restricted, ["a"], "only `a` is soundly restrictable");
    println!("\ninference found the unique maximal annotation.");
    Ok(())
}
