#![warn(missing_docs)]

//! # localias
//!
//! A from-scratch Rust implementation of **Checking and Inferring Local
//! Non-Aliasing** (Aiken, Foster, Kodumal & Terauchi, PLDI 2003): the
//! `restrict` and `confine` constructs, their type-and-effect checking
//! system, constraint-based checking and inference algorithms, and the
//! flow-sensitive lock-state analysis the paper evaluates them with.
//!
//! The workspace is organized as the paper is:
//!
//! | Paper | Crate (re-exported here as) |
//! |---|---|
//! | the analyzed language | [`ast`] — Mini-C lexer/parser/AST |
//! | unification-based may-alias analysis | [`alias`] — Steensgaard with abstract locations `ρ` |
//! | §4 constraints, Figures 4–5 | [`effects`] — effect terms, normalization, `CHECK-SAT` |
//! | §3–§6 checking & inference | [`core`] — restrict/confine checking, §5/§6 inference |
//! | §7 evaluation substrate | [`cqual`] — flow-sensitive `locked`/`unlocked` checker |
//! | §7 subject programs | [`corpus`] — 589 calibrated synthetic driver modules |
//! | §3.2 operational semantics | [`interp`] — reference interpreter (restrict = copy-and-poison) |
//!
//! # Quick start
//!
//! ```
//! use localias::ast::parse_module;
//! use localias::cqual::{check_locks, Mode};
//!
//! // Figure 1 of the paper, without annotations.
//! let m = parse_module(
//!     "fig1",
//!     r#"
//!     lock locks[8];
//!     extern void work();
//!     void do_with_lock(lock *l) {
//!         spin_lock(l);
//!         work();
//!         spin_unlock(l);
//!     }
//!     void foo(int i) { do_with_lock(&locks[i]); }
//!     "#,
//! )?;
//!
//! // Weak updates lose track of the lock array's state...
//! let weak = check_locks(&m, Mode::NoConfine);
//! assert!(weak.error_count() > 0);
//!
//! // ...but `restrict`/`confine` recover strong updates locally:
//! let m2 = parse_module(
//!     "fig1-restrict",
//!     r#"
//!     lock locks[8];
//!     extern void work();
//!     void do_with_lock(lock *restrict l) {
//!         spin_lock(l);
//!         work();
//!         spin_unlock(l);
//!     }
//!     void foo(int i) { do_with_lock(&locks[i]); }
//!     "#,
//! )?;
//! assert_eq!(check_locks(&m2, Mode::NoConfine).error_count(), 0);
//! # Ok::<(), localias::ast::ParseError>(())
//! ```

pub use localias_alias as alias;
pub use localias_ast as ast;
pub use localias_core as core;
pub use localias_corpus as corpus;
pub use localias_cqual as cqual;
pub use localias_effects as effects;
pub use localias_interp as interp;
