#!/bin/sh
# CI gate: formatting + lints, tier-1 build + tests, a mega-module smoke
# run of the wave-parallel checker, then a warm-cache smoke sweep that
# proves the incremental cache fully hits on an unchanged corpus.
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Cold pass primes a throwaway cache; warm pass must hit on all 589
# modules and miss on none.
CACHE=$(mktemp -d)
trap 'rm -rf "$CACHE"' EXIT
WARM="$CACHE/warm.json"

./target/release/localias experiment --jobs 1 --cache "$CACHE" >/dev/null
./target/release/localias experiment --jobs 1 --cache "$CACHE" \
    --bench-out "$WARM" >/dev/null

grep -q '"hits": 589' "$WARM" || {
    echo "check.sh: warm sweep did not hit on all 589 modules:" >&2
    cat "$WARM" >&2
    exit 1
}
grep -q '"misses": 0' "$WARM" || {
    echo "check.sh: warm sweep reported misses:" >&2
    cat "$WARM" >&2
    exit 1
}

# Mega-module smoke: the wave-parallel checker must produce reports
# byte-identical to the sequential schedule (asserted inside the bin).
INTRA="$CACHE/intra.json"
cargo run -q --release -p localias-bench --bin intra -- \
    --funs 120 --intra-jobs 4 --bench-out "$INTRA" >/dev/null
grep -q '"schema": "localias-bench-intra/v1"' "$INTRA" || {
    echo "check.sh: intra bench wrote an unexpected report:" >&2
    cat "$INTRA" >&2
    exit 1
}

echo "check.sh: fmt, clippy, build, tests, mega smoke, and warm-cache sweep all passed"
