#!/bin/sh
# CI gate: formatting + lints, tier-1 build + tests (workspace-wide, which
# includes the multi-process cache concurrency test), a mega-module smoke
# run of the wave-parallel checker, a warm-cache smoke sweep that proves
# the incremental cache fully hits on an unchanged corpus, and a
# crash-recovery smoke that kills a sweep mid-run and fabricates the
# worst-case crash artifacts to prove the sharded store heals itself,
# a watch-determinism smoke proving incremental recheck reports stay
# byte-identical to full rechecks at two worker counts, an
# observability smoke that traces a sweep, validates the emitted trace
# with `localias tracecheck`, and exports it as a Chrome trace, and a
# perf-regression gate proving `localias bench-diff` is clean on a
# self-compare and trips on an injected slowdown.
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace

# The concurrent-writer regression is the load-bearing test of the
# sharded store: two real processes persisting into one cache dir must
# lose no entries. Gate it by name so a filtered test run can't skip it.
cargo test -q -p localias-bench --test cache \
    concurrent_disjoint_sweeps_lose_no_entries >/dev/null

# The observability contract is likewise gated by name: counter totals
# and the span tree must not depend on the thread count, and on the
# mega-module the headline counters must match their closed forms.
cargo test -q -p localias-bench --test obs \
    trace_shape_is_thread_invariant >/dev/null
cargo test -q -p localias-bench --test obs \
    mega_module_counters_match_closed_form >/dev/null

# The histogram determinism contract too: per-hist sample counts must
# not depend on the thread count, and equal sample multisets must render
# byte-identical hist blocks under any worker layout.
cargo test -q -p localias-bench --test hist \
    sweep_hist_counts_are_thread_invariant >/dev/null
cargo test -q -p localias-bench --test hist \
    equal_multisets_render_byte_identical_hist_blocks >/dev/null

# Cold pass primes a throwaway cache; warm pass must hit on all 589
# modules and miss on none.
CACHE=$(mktemp -d)
trap 'rm -rf "$CACHE"' EXIT
WARM="$CACHE/warm.json"

./target/release/localias experiment --jobs 1 --cache "$CACHE" >/dev/null
./target/release/localias experiment --jobs 1 --cache "$CACHE" \
    --bench-out "$WARM" >/dev/null

grep -q '"hits": 589' "$WARM" || {
    echo "check.sh: warm sweep did not hit on all 589 modules:" >&2
    cat "$WARM" >&2
    exit 1
}
grep -q '"misses": 0' "$WARM" || {
    echo "check.sh: warm sweep reported misses:" >&2
    cat "$WARM" >&2
    exit 1
}

# Crash-recovery smoke, part 1: kill a sweep outright partway through.
# Whatever it leaves behind (partial shards, temp files, a held lock),
# the next sweep must load cleanly and exit 0.
KILLED="$CACHE/killed"
./target/release/localias experiment --jobs 1 --cache "$KILLED" >/dev/null &
SWEEP=$!
sleep 0.3
kill -9 "$SWEEP" 2>/dev/null || true
wait "$SWEEP" 2>/dev/null || true
./target/release/localias experiment --jobs 1 --cache "$KILLED" >/dev/null || {
    echo "check.sh: sweep after a kill -9 crash did not recover" >&2
    exit 1
}

# Part 2: fabricate the worst-case crash deterministically — one shard
# truncated mid-entry, an orphaned temp file and a stale lock left by a
# dead process — and prove the next sweep quarantines exactly the broken
# shard, sweeps the orphan, breaks the lock, and heals the store.
CRASH="$CACHE/crash"
./target/release/localias experiment --jobs 1 --cache "$CRASH" >/dev/null
SHARD=$(ls "$CRASH"/shard-*.jsonl | head -n 1)
SIZE=$(wc -c <"$SHARD")
head -c $((SIZE - 5)) "$SHARD" >"$SHARD.cut"
mv "$SHARD.cut" "$SHARD"
: >"$SHARD.tmp.999999999"
echo 999999999 >"${SHARD%.jsonl}.lock"

RECOVER="$CRASH/recover.json"
./target/release/localias experiment --jobs 1 --cache "$CRASH" \
    --bench-out "$RECOVER" >/dev/null
grep -q '"quarantined": 1' "$RECOVER" || {
    echo "check.sh: recovery sweep did not quarantine exactly one shard:" >&2
    cat "$RECOVER" >&2
    exit 1
}
BAD=$(ls "$CRASH"/*.bad 2>/dev/null | wc -l)
[ "$BAD" -eq 1 ] || {
    echo "check.sh: expected exactly one quarantined *.bad file, found $BAD" >&2
    ls "$CRASH" >&2
    exit 1
}
[ ! -e "$SHARD.tmp.999999999" ] || {
    echo "check.sh: orphaned temp file from a dead pid was not swept" >&2
    exit 1
}

# The recovery sweep re-analyzed the lost shard and persisted it back:
# one more pass must fully hit again.
HEALED="$CRASH/healed.json"
./target/release/localias experiment --jobs 1 --cache "$CRASH" \
    --bench-out "$HEALED" >/dev/null
grep -q '"hits": 589' "$HEALED" && grep -q '"misses": 0' "$HEALED" || {
    echo "check.sh: store did not heal after crash recovery:" >&2
    cat "$HEALED" >&2
    exit 1
}

# Mega-module smoke: the wave-parallel checker must produce reports
# byte-identical to the sequential schedule (asserted inside the bin).
INTRA="$CACHE/intra.json"
cargo run -q --release -p localias-bench --bin intra -- \
    --funs 120 --intra-jobs 4 --bench-out "$INTRA" >/dev/null
grep -q '"schema": "localias-bench-intra/v3"' "$INTRA" || {
    echo "check.sh: intra bench wrote an unexpected report:" >&2
    cat "$INTRA" >&2
    exit 1
}

# Watch-determinism smoke: after an edit, the incremental report must
# be byte-identical to a full recheck at --intra-jobs 1 and 4
# (`--verify` re-checks from scratch and fails the process on any
# divergence, every iteration).
WATCHDIR="$CACHE/watch"
mkdir -p "$WATCHDIR"
for JOBS in 1 4; do
    WFILE="$WATCHDIR/mod$JOBS.mc"
    printf '%s\n' \
        'lock locks[8];' \
        'extern void work();' \
        'void helper(int i) {' \
        '    spin_lock(&locks[i]);' \
        '    work();' \
        '    spin_unlock(&locks[i]);' \
        '}' \
        'void caller(int i) { helper(i); }' >"$WFILE"
    (
        sleep 0.5
        printf '%s\n' \
            'lock locks[8];' \
            'extern void work();' \
            'void helper(int i) {' \
            '    spin_lock(&locks[i]);' \
            '    work();' \
            '}' \
            'void caller(int i) { helper(i); }' >"$WFILE"
    ) &
    EDITOR_PID=$!
    WOUT="$WATCHDIR/out$JOBS.txt"
    ./target/release/localias watch "$WFILE" --iterations 2 --poll-ms 25 \
        --intra-jobs "$JOBS" --verify --quiet >"$WOUT" || {
        echo "check.sh: watch --verify diverged at --intra-jobs $JOBS:" >&2
        cat "$WOUT" >&2
        exit 1
    }
    wait "$EDITOR_PID"
    grep -q '^\[2\] incr:' "$WOUT" || {
        echo "check.sh: watch did not pick up the edit at --intra-jobs $JOBS:" >&2
        cat "$WOUT" >&2
        exit 1
    }
done

# Observability smoke: a traced sweep must emit a trace the strict
# validator accepts, embed profile + hist blocks in the bench report,
# print the profile table on stderr, and export a Chrome trace both
# directly (--trace-chrome) and from the trace file (tracecheck
# --chrome).
TRACE="$CACHE/trace.jsonl"
PROFILED="$CACHE/profiled.json"
PROFTAB="$CACHE/profile.txt"
CHROME="$CACHE/chrome.json"
./target/release/localias experiment --jobs 2 --cache "$CACHE" \
    --trace-out "$TRACE" --trace-chrome "$CHROME" --profile \
    --bench-out "$PROFILED" >/dev/null 2>"$PROFTAB"
./target/release/localias tracecheck "$TRACE" >/dev/null || {
    echo "check.sh: emitted trace failed validation" >&2
    cat "$TRACE" >&2
    exit 1
}
grep -q '"schema":"localias-trace/v2"' "$TRACE" || {
    echo "check.sh: trace header missing or wrong schema" >&2
    head -n 1 "$TRACE" >&2
    exit 1
}
grep -q '"profile": {' "$PROFILED" || {
    echo "check.sh: traced sweep did not embed a profile block:" >&2
    cat "$PROFILED" >&2
    exit 1
}
grep -q '"hist": {' "$PROFILED" || {
    echo "check.sh: traced sweep did not embed a hist block:" >&2
    cat "$PROFILED" >&2
    exit 1
}
grep -q 'bench.sweep' "$PROFTAB" || {
    echo "check.sh: --profile table missing the sweep span:" >&2
    cat "$PROFTAB" >&2
    exit 1
}
grep -q '"traceEvents"' "$CHROME" || {
    echo "check.sh: --trace-chrome did not write a Chrome trace:" >&2
    head -c 400 "$CHROME" >&2
    exit 1
}
CHROME2="$CACHE/chrome-from-trace.json"
./target/release/localias tracecheck "$TRACE" --chrome "$CHROME2" >/dev/null || {
    echo "check.sh: tracecheck --chrome failed on a valid trace" >&2
    exit 1
}
grep -q '"traceEvents"' "$CHROME2" || {
    echo "check.sh: tracecheck --chrome did not write a Chrome trace:" >&2
    head -c 400 "$CHROME2" >&2
    exit 1
}

# Perf-regression gate: bench-diff of the profiled artifact against
# itself must be clean (exit 0); against a copy with a 10x wall-time
# slowdown injected it must exit non-zero and name the regression.
./target/release/localias bench-diff "$PROFILED" "$PROFILED" >/dev/null || {
    echo "check.sh: bench-diff self-compare reported regressions" >&2
    ./target/release/localias bench-diff "$PROFILED" "$PROFILED" >&2 || true
    exit 1
}
REGRESSED="$CACHE/regressed.json"
sed 's/"wall_seconds": /"wall_seconds": 9/' "$PROFILED" >"$REGRESSED"
DIFFOUT="$CACHE/diff.txt"
if ./target/release/localias bench-diff "$PROFILED" "$REGRESSED" \
    >"$DIFFOUT" 2>&1; then
    echo "check.sh: bench-diff exited 0 on an injected 10x wall-time regression:" >&2
    cat "$DIFFOUT" >&2
    exit 1
fi
grep -q 'REGRESSED' "$DIFFOUT" || {
    echo "check.sh: bench-diff failed without flagging the injected regression:" >&2
    cat "$DIFFOUT" >&2
    exit 1
}

# Scale smoke: a 2,000-module streamed corpus swept as two concurrent
# partition processes over a shared cache must bench-merge into one
# artifact covering the whole corpus, and the traced partition's trace
# must pass the strict validator.
SCALE="$CACHE/scale"
mkdir -p "$SCALE"
./target/release/localias experiment 7 --modules 2000 --partition 0/2 \
    --cache "$SCALE/cache" --bench-out "$SCALE/p0.json" \
    --trace-out "$SCALE/p0-trace.jsonl" --quiet >/dev/null &
PART0=$!
./target/release/localias experiment 7 --modules 2000 --partition 1/2 \
    --cache "$SCALE/cache" --bench-out "$SCALE/p1.json" --quiet >/dev/null
wait "$PART0" || {
    echo "check.sh: partition 0/2 of the scale smoke failed" >&2
    exit 1
}
./target/release/localias bench-merge "$SCALE/p0.json" "$SCALE/p1.json" \
    --out "$SCALE/merged.json" >/dev/null
grep -q '"modules": 2000' "$SCALE/merged.json" || {
    echo "check.sh: merged scale artifact does not cover all 2000 modules:" >&2
    cat "$SCALE/merged.json" >&2
    exit 1
}
grep -q '"partition": null' "$SCALE/merged.json" || {
    echo "check.sh: merged scale artifact still claims to be a partition" >&2
    exit 1
}
./target/release/localias tracecheck "$SCALE/p0-trace.jsonl" >/dev/null || {
    echo "check.sh: partitioned sweep emitted an invalid trace" >&2
    cat "$SCALE/p0-trace.jsonl" >&2
    exit 1
}

# Alias-backend smoke: the Andersen backend must run the full three-mode
# sweep end-to-end, emit a valid trace, and key its own cache domain —
# a cache warmed by the default (Steensgaard) sweep serves it zero hits.
ALIAS="$CACHE/alias"
mkdir -p "$ALIAS"
./target/release/localias experiment 7 --modules 80 \
    --cache "$ALIAS/cache" --quiet >/dev/null
./target/release/localias experiment 7 --modules 80 --alias andersen \
    --cache "$ALIAS/cache" --bench-out "$ALIAS/andersen.json" \
    --trace-out "$ALIAS/andersen-trace.jsonl" --quiet >/dev/null
grep -q '"misses": 80' "$ALIAS/andersen.json" || {
    echo "check.sh: andersen sweep hit the steensgaard cache domain:" >&2
    cat "$ALIAS/andersen.json" >&2
    exit 1
}
./target/release/localias tracecheck "$ALIAS/andersen-trace.jsonl" >/dev/null || {
    echo "check.sh: andersen sweep emitted an invalid trace" >&2
    cat "$ALIAS/andersen-trace.jsonl" >&2
    exit 1
}

# Differential-fuzzing smoke: a seeded 500-module sweep with the
# interpreter as ground-truth oracle must find zero soundness
# divergences across all three modes x both alias backends — the repro
# dir staying empty is the machine-checkable "all clean" signal.
FUZZ="$CACHE/fuzz-repro"
mkdir -p "$FUZZ"
./target/release/localias fuzz --iterations 500 --seed 42 \
    --repro-dir "$FUZZ" >/dev/null || {
    echo "check.sh: fuzz smoke found soundness divergences; repros:" >&2
    ls "$FUZZ" >&2
    exit 1
}
if [ -n "$(ls -A "$FUZZ")" ]; then
    echo "check.sh: fuzz smoke exited 0 but wrote repro modules:" >&2
    ls "$FUZZ" >&2
    exit 1
fi

echo "check.sh: fmt, clippy, build, tests, concurrency + obs + hist gates, warm-cache sweep, crash recovery, mega smoke, watch-determinism smoke, trace + chrome smoke, bench-diff gate, partitioned scale smoke, andersen backend smoke, and fuzz smoke all passed"
