#!/bin/sh
# CI gate: tier-1 build + tests, then a warm-cache smoke sweep that proves
# the incremental cache fully hits on an unchanged corpus.
set -eu

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Cold pass primes a throwaway cache; warm pass must hit on all 589
# modules and miss on none.
CACHE=$(mktemp -d)
trap 'rm -rf "$CACHE"' EXIT
WARM="$CACHE/warm.json"

./target/release/localias experiment --jobs 1 --cache "$CACHE" >/dev/null
./target/release/localias experiment --jobs 1 --cache "$CACHE" \
    --bench-out "$WARM" >/dev/null

grep -q '"hits": 589' "$WARM" || {
    echo "check.sh: warm sweep did not hit on all 589 modules:" >&2
    cat "$WARM" >&2
    exit 1
}
grep -q '"misses": 0' "$WARM" || {
    echo "check.sh: warm sweep reported misses:" >&2
    cat "$WARM" >&2
    exit 1
}

echo "check.sh: build, tests, and warm-cache smoke sweep all passed"
