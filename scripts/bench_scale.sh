#!/bin/sh
# Corpus-scale sweep: modules/sec and peak RSS vs. corpus size, single-
# and two-partition, written to BENCH_scale.json in the repo root
# (schema localias-bench-scale/v2, embedding the obs profile and
# latency-histogram blocks of the largest single-process sweep).
#
# Every point runs in fresh `localias experiment` child processes — one
# per partition, concurrently, over a shared cold cache — so peak RSS is
# per sweep, not cumulative. Two-partition points are validated through
# `localias bench-merge`.
#
# Usage: scripts/bench_scale.sh [SEED] [--sizes N,N,...] [--partitions N,N,...]
#        (extra args are passed through to the `scale` bin; defaults are
#        sizes 1000,5000,20000,50000 and partitions 1,2)
set -eu

cd "$(dirname "$0")/.."

cargo build --release -p localias-driver -p localias-bench

LOCALIAS_BIN=target/release/localias \
    ./target/release/scale --bench-out BENCH_scale.json "$@"

echo
echo "wrote $(pwd)/BENCH_scale.json"
