#!/bin/sh
# Runs the full §7 experiment sweep twice — cold (fresh cache) and warm
# (fully cached) — and writes machine-readable performance reports
# (schema localias-bench-experiment/v6, with per-shard cache counters,
# an embedded per-phase profile block, and the latency-histogram block
# with exact p50/p90/p95/p99 per stage) to the repo root:
#
#   BENCH_experiment_cold.json   cold sweep, cache.misses == modules
#   BENCH_experiment.json        warm sweep, cache.hits   == modules
#   BENCH_intra.json             mega-module sequential-vs-wave-parallel
#                                timings (schema localias-bench-intra/v3)
#   BENCH_watch.json             function-granular incremental recheck:
#                                cold/edit/no-op latencies + check-phase
#                                speedup over from-scratch analysis
#                                (schema localias-bench-watch/v2)
#   BENCH_alias.json             alias-backend precision/perf frontier:
#                                both backends over the calibrated
#                                corpus, categories + error totals +
#                                wall time side by side (schema
#                                localias-bench-alias/v2)
#   BENCH_fuzz.json              differential-fuzzing throughput + FP
#                                rates (schema localias-bench-fuzz/v2)
#   BENCH_scale.json             modules/sec + peak RSS vs corpus size
#                                (schema localias-bench-scale/v2; only
#                                written when BENCH_SCALE=1 — it takes
#                                minutes)
#
# After the sweeps, `localias bench-diff` reports warm-vs-cold and — when
# a previous BENCH_experiment.json existed — run-over-run deltas. Both
# reports are informational here (|| true): regressions print but don't
# fail the bench run. CI gates on bench-diff in scripts/check.sh instead.
#
# Usage: scripts/bench.sh [--jobs N] [SEED]
#        (extra args are passed through to `localias experiment`)
# The cache directory defaults to .localias-cache and is recreated so the
# "cold" pass is genuinely cold; override with LOCALIAS_CACHE=dir.
set -eu

cd "$(dirname "$0")/.."

CACHE=${LOCALIAS_CACHE:-.localias-cache}

cargo build --release -p localias-driver -p localias-bench

# Keep the previous warm artifact around for the run-over-run report.
if [ -f BENCH_experiment.json ]; then
    cp BENCH_experiment.json BENCH_experiment.prev.json
fi

rm -rf "$CACHE"
./target/release/localias experiment --cache "$CACHE" \
    --bench-out BENCH_experiment_cold.json "$@"
./target/release/localias experiment --cache "$CACHE" \
    --bench-out BENCH_experiment.json "$@"

echo
echo "wrote $(pwd)/BENCH_experiment_cold.json (cold):"
cat BENCH_experiment_cold.json
echo
echo "wrote $(pwd)/BENCH_experiment.json (warm):"
cat BENCH_experiment.json

# What did the cache buy? The warm-vs-cold delta, per metric — wall time
# and phase times should be "improved", throughput likewise; histogram
# percentiles show which stages the cache removes entirely.
echo
echo "bench-diff cold -> warm:"
./target/release/localias bench-diff BENCH_experiment_cold.json \
    BENCH_experiment.json || true

# Run-over-run: this warm sweep against the previous one, when we have
# one. Informational — machine gating happens in check.sh.
if [ -f BENCH_experiment.prev.json ]; then
    echo
    echo "bench-diff previous warm run -> this warm run:"
    ./target/release/localias bench-diff BENCH_experiment.prev.json \
        BENCH_experiment.json || true
fi

# Intra-module wave parallelism on the synthesized mega-module: one
# sequential and one parallel run per mode, reports asserted identical.
# On a single-core container the "speedup" hovers near 1x; the per-wave
# timings still record the schedule the parallel path executes.
./target/release/intra --intra-jobs 4 --bench-out BENCH_intra.json

echo
echo "wrote $(pwd)/BENCH_intra.json (mega-module):"
cat BENCH_intra.json

# Function-granular incremental recheck on the mega-module: seeded
# single-function edits against an IncrementalSession, every report
# asserted byte-identical to from-scratch checking. The headline is
# check-phase vs check-phase at --intra-jobs 1 — parallelism helps the
# full check more than the (already tiny) incremental one, so the
# single-thread number is the honest comparison; end-to-end stays
# analysis-dominated by design (see EXPERIMENTS.md).
./target/release/watch --funs 300 --edits 8 --intra-jobs 1 --profile \
    --bench-out BENCH_watch.json

echo
echo "wrote $(pwd)/BENCH_watch.json (incremental recheck):"
cat BENCH_watch.json

# Alias-backend frontier: the full experiment once per backend, printed
# side by side and asserted against the paper's 352/85/138/14 baseline
# for the Steensgaard column. Cold for both backends (fresh cache dir)
# so the wall-time comparison is fair.
rm -rf "$CACHE-alias"
./target/release/alias --cache "$CACHE-alias" --bench-out BENCH_alias.json
rm -rf "$CACHE-alias"

echo
echo "wrote $(pwd)/BENCH_alias.json (backend frontier):"
cat BENCH_alias.json

# Differential fuzzing: 2,000 generated modules executed under the
# interpreter oracle and checked under all three modes x both
# backends. Exits non-zero on any soundness divergence, so the bench
# sweep doubles as a release gate; the artifact records fuzz
# throughput and the measured false-positive rate per mode/backend.
./target/release/fuzz 42 --modules 2000 --profile --bench-out BENCH_fuzz.json

echo
echo "wrote $(pwd)/BENCH_fuzz.json (differential fuzzing):"
cat BENCH_fuzz.json

# The corpus-scale sweep (1k..50k modules, 1 and 2 partitions) takes
# minutes, so it only runs when explicitly requested.
if [ "${BENCH_SCALE:-0}" = "1" ]; then
    scripts/bench_scale.sh
else
    echo
    echo "skipping corpus-scale sweep (set BENCH_SCALE=1 to run scripts/bench_scale.sh)"
fi
