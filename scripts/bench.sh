#!/bin/sh
# Runs the full §7 experiment sweep and writes a machine-readable
# performance report (schema localias-bench-experiment/v1) to
# BENCH_experiment.json at the repo root.
#
# Usage: scripts/bench.sh [--jobs N] [SEED]
#        (extra args are passed through to `localias experiment`)
set -eu

cd "$(dirname "$0")/.."

cargo build --release -p localias-driver
./target/release/localias experiment --bench-out BENCH_experiment.json "$@"

echo
echo "wrote $(pwd)/BENCH_experiment.json:"
cat BENCH_experiment.json
