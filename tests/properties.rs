//! Property-based tests over randomly generated Mini-C programs.
//!
//! Programs are generated from a seeded grammar of well-typed snippets
//! (a deterministic `localias-prng` stream drives the seed and size;
//! generation itself is a seeded walk so that scoping stays well-formed).
//! The properties:
//!
//! * the pretty-printer round-trips through the parser;
//! * every analysis is total (no panics) and deterministic;
//! * mode monotonicity: all-strong ≤ confine-inference ≤ no-confine
//!   error counts — strong updates only ever remove errors;
//! * inferred restricts are *sound*: rewriting the program with the
//!   inferred annotation made explicit passes the checker.

use localias::ast::{parse_module, pretty, BindingKind, Module, NodeId, StmtKind};
use localias::core;
use localias::cqual::{check_locks, Mode};
use localias_prng::Rng64;

mod common;
use common::random_module_source;

fn parse(src: &str) -> Module {
    parse_module("prop", src).unwrap_or_else(|e| panic!("must parse: {e}\n{src}"))
}

#[test]
fn pretty_print_roundtrips() {
    let mut rng = Rng64::seed_from_u64(0xB00);
    for _ in 0..48 {
        let (seed, stmts) = (rng.next_u64(), rng.gen_range(1usize..12));
        let src = random_module_source(seed, stmts);
        let m = parse(&src);
        let printed = pretty::print_module(&m);
        let m2 = parse_module("prop", &printed)
            .unwrap_or_else(|e| panic!("printed module must parse: {e}\n{printed}"));
        let printed2 = pretty::print_module(&m2);
        assert_eq!(printed, printed2);
    }
}

#[test]
fn analyses_are_total_and_deterministic() {
    let mut rng = Rng64::seed_from_u64(0xB01);
    for _ in 0..48 {
        let (seed, stmts) = (rng.next_u64(), rng.gen_range(1usize..12));
        let src = random_module_source(seed, stmts);
        let m = parse(&src);
        let a1 = core::check(&m);
        let a2 = core::check(&m);
        assert_eq!(a1.restricts.len(), a2.restricts.len());
        assert_eq!(a1.diags.len(), a2.diags.len());
        let _ = core::infer_restricts(&m);
        let inf1 = core::infer_confines(&m);
        let inf2 = core::infer_confines(&m);
        assert_eq!(inf1.chosen, inf2.chosen);
    }
}

#[test]
fn error_counts_are_monotone_in_update_strength() {
    let mut rng = Rng64::seed_from_u64(0xB02);
    for _ in 0..48 {
        let (seed, stmts) = (rng.next_u64(), rng.gen_range(1usize..12));
        let src = random_module_source(seed, stmts);
        let m = parse(&src);
        let nc = check_locks(&m, Mode::NoConfine).error_count();
        let cf = check_locks(&m, Mode::Confine).error_count();
        let st = check_locks(&m, Mode::AllStrong).error_count();
        assert!(st <= nc, "all-strong {st} > no-confine {nc}\n{src}");
        assert!(cf <= nc, "confine {cf} > no-confine {nc}\n{src}");
    }
}

#[test]
fn inferred_restricts_check_when_made_explicit() {
    let mut rng = Rng64::seed_from_u64(0xB03);
    for _ in 0..48 {
        let (seed, stmts) = (rng.next_u64(), rng.gen_range(1usize..10));
        let src = random_module_source(seed, stmts);
        let m = parse(&src);
        let inferred = core::infer_restricts(&m);
        // Promote only candidates whose name is actually *used*: the §5
        // inference rule deliberately lets an unused binding be a
        // restrict without the `{ρ}` restriction effect (the paper's
        // footnote on C's semantics), while explicit checking is strict —
        // so an unused inferred restrict is not required to re-check.
        let restricted: Vec<NodeId> = inferred
            .candidates
            .iter()
            .filter(|c| c.restricted && ident_count(&src, &c.name) >= 2)
            .map(|c| c.at)
            .collect();
        if restricted.is_empty() {
            continue;
        }
        // Rewrite the inferred lets into explicit restricts and re-check;
        // only the promoted annotations must pass (the generator may have
        // emitted explicit restricts that legitimately fail).
        let mut rewritten = m.clone();
        promote_decls(&mut rewritten, &restricted);
        let checked = core::check(&rewritten);
        for r in checked
            .restricts
            .iter()
            .filter(|r| restricted.contains(&r.at))
        {
            assert!(
                r.ok(),
                "inferred restrict `{}` fails explicit checking: {:?}\n{}",
                r.name,
                r.reasons,
                src
            );
        }
    }
}

/// Number of identifier tokens in `src` spelled exactly `name`.
fn ident_count(src: &str, name: &str) -> usize {
    use localias::ast::{Lexer, TokenKind};
    Lexer::new(src)
        .tokenize()
        .map(|toks| {
            toks.iter()
                .filter(|t| matches!(&t.kind, TokenKind::Ident(s) if s == name))
                .count()
        })
        .unwrap_or(0)
}

/// Flips the given `let` declarations to `restrict` in place.
fn promote_decls(m: &mut Module, targets: &[NodeId]) {
    fn visit_block(b: &mut localias::ast::Block, targets: &[NodeId]) {
        for s in &mut b.stmts {
            if targets.contains(&s.id) {
                if let StmtKind::Decl { binding, .. } = &mut s.kind {
                    *binding = BindingKind::Restrict;
                }
            }
            match &mut s.kind {
                StmtKind::Restrict { body, .. }
                | StmtKind::Confine { body, .. }
                | StmtKind::While { body, .. }
                | StmtKind::Block(body) => visit_block(body, targets),
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    visit_block(then_blk, targets);
                    if let Some(e) = else_blk {
                        visit_block(e, targets);
                    }
                }
                _ => {}
            }
        }
    }
    for item in &mut m.items {
        if let localias::ast::ItemKind::Fun(f) = &mut item.kind {
            visit_block(&mut f.body, targets);
        }
    }
}

/// Andersen refines Steensgaard: whenever the inclusion-based
/// analysis says two pointer variables may point to a common cell,
/// the unification-based analysis must have merged their pointee
/// classes (never the other way around).
#[test]
fn andersen_refines_steensgaard() {
    let mut rng = Rng64::seed_from_u64(0xB04);
    for _ in 0..32 {
        let (seed, stmts) = (rng.next_u64(), rng.gen_range(1usize..10));
        let src = random_module_source(seed, stmts);
        let m = parse(&src);
        let pts = localias::alias::andersen::analyze(&m);
        let mut uni = localias::alias::steensgaard::analyze(&m);

        // Compare per-function pointer locals pairwise.
        for f in m.functions() {
            let fun = f.name.name.as_str();
            let vars: Vec<&localias::alias::VarInfo> = uni
                .state
                .vars
                .iter()
                .filter(|v| v.fun.as_deref() == Some(fun))
                .collect();
            let ptrs: Vec<(String, localias::alias::Loc)> = vars
                .iter()
                .filter_map(|v| v.ty.pointee().map(|l| (v.name.clone(), l)))
                .collect();
            for i in 0..ptrs.len() {
                for j in (i + 1)..ptrs.len() {
                    let a = localias::alias::andersen::Cell::Var(
                        Some(fun.to_string()),
                        ptrs[i].0.clone(),
                    );
                    let b = localias::alias::andersen::Cell::Var(
                        Some(fun.to_string()),
                        ptrs[j].0.clone(),
                    );
                    if pts.may_point_same(&a, &b) {
                        assert!(
                            uni.state.locs.same(ptrs[i].1, ptrs[j].1),
                            "Andersen aliases {} and {} but Steensgaard does not\n{}",
                            ptrs[i].0,
                            ptrs[j].0,
                            src
                        );
                    }
                }
            }
        }
    }
}

/// The general §7 strategy never recovers less than the heuristic:
/// every lock error the heuristic's confines eliminate, the general
/// candidate set eliminates too.
#[test]
fn general_confine_strategy_dominates_heuristic() {
    let mut rng = Rng64::seed_from_u64(0xB05);
    for _ in 0..24 {
        let (seed, stmts) = (rng.next_u64(), rng.gen_range(1usize..10));
        let src = random_module_source(seed, stmts);
        let m = parse(&src);
        let heuristic = {
            let mut a = core::infer_confines(&m);
            localias::cqual::check_locks_with(&m, &mut a.analysis, Mode::Confine).error_count()
        };
        let general = {
            let mut a = core::infer_confines_general(&m);
            localias::cqual::check_locks_with(&m, &mut a.analysis, Mode::Confine).error_count()
        };
        assert!(
            general <= heuristic,
            "general {general} > heuristic {heuristic}\n{src}"
        );
    }
}
