//! Property-based tests on the effect constraint solver: random
//! constraint systems, checked against a reference evaluator.
//!
//! * The reported least solution *is* a solution: every inclusion holds.
//! * It is the *least* one on intersection-free systems (checked against
//!   a naive fixpoint evaluator).
//! * The targeted Figure 5 `CHECK-SAT` query agrees with full
//!   propagation.

use localias::alias::{LocTable, Ty};
use localias::effects::{
    build, reaches, solve, ConstraintSystem, EffVar, Effect, EffectKind, KindMask,
};
use localias_prng::Rng64;

const KINDS: [EffectKind; 4] = [
    EffectKind::Read,
    EffectKind::Write,
    EffectKind::Alloc,
    EffectKind::Mention,
];

/// A randomly generated system plus its ingredients.
struct SysSpec {
    cs: ConstraintSystem,
    locs: LocTable,
    vars: Vec<EffVar>,
    loc_ids: Vec<localias::alias::Loc>,
}

fn random_system(seed: u64, n_vars: usize, n_locs: usize, n_cons: usize, inters: bool) -> SysSpec {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut cs = ConstraintSystem::new();
    let mut locs = LocTable::new();
    let vars: Vec<EffVar> = (0..n_vars).map(|i| cs.fresh_var(format!("v{i}"))).collect();
    let loc_ids: Vec<_> = (0..n_locs)
        .map(|i| locs.fresh(format!("l{i}"), Ty::Int))
        .collect();
    for _ in 0..n_cons {
        let target = vars[rng.gen_range(0..vars.len())];
        let effect = random_effect(&mut rng, &vars, &loc_ids, if inters { 2 } else { 0 });
        cs.include(effect, target);
    }
    SysSpec {
        cs,
        locs,
        vars,
        loc_ids,
    }
}

fn random_effect(
    rng: &mut Rng64,
    vars: &[EffVar],
    locs: &[localias::alias::Loc],
    inter_budget: usize,
) -> Effect {
    match rng.gen_range(0..5u32) {
        0 => Effect::atom(
            KINDS[rng.gen_range(0..4usize)],
            locs[rng.gen_range(0..locs.len())],
        ),
        1 => Effect::var(vars[rng.gen_range(0..vars.len())]),
        2 => Effect::union(
            random_effect(rng, vars, locs, inter_budget),
            random_effect(rng, vars, locs, inter_budget),
        ),
        3 if inter_budget > 0 => Effect::inter(
            random_effect(rng, vars, locs, inter_budget - 1),
            random_effect(rng, vars, locs, inter_budget - 1),
        ),
        _ => Effect::atom(
            KINDS[rng.gen_range(0..4usize)],
            locs[rng.gen_range(0..locs.len())],
        ),
    }
}

/// Reference evaluation of an effect term under a solution.
type RefSol = std::collections::HashMap<EffVar, std::collections::HashMap<u32, KindMask>>;

fn eval(
    e: &Effect,
    sol: &RefSol,
    cs: &ConstraintSystem,
    locs: &LocTable,
) -> std::collections::HashMap<u32, KindMask> {
    match e {
        Effect::Empty => Default::default(),
        Effect::Atom(a) => {
            let mut m = std::collections::HashMap::new();
            m.insert(locs.find_const(a.loc).0, a.kind.mask());
            m
        }
        Effect::Var(v) => sol.get(&cs.find_const(*v)).cloned().unwrap_or_default(),
        Effect::Union(a, b) => {
            let mut m = eval(a, sol, cs, locs);
            for (l, k) in eval(b, sol, cs, locs) {
                let e = m.entry(l).or_default();
                *e = e.union(k);
            }
            m
        }
        Effect::Inter(a, b) => {
            let left = eval(a, sol, cs, locs);
            let right = eval(b, sol, cs, locs);
            left.into_iter()
                .filter(|(l, _)| right.contains_key(l))
                .collect()
        }
    }
}

/// Naive fixpoint reference solver.
fn reference_solve(cs: &ConstraintSystem, locs: &LocTable) -> RefSol {
    let mut sol: RefSol = Default::default();
    loop {
        let mut changed = false;
        for (l, v) in &cs.includes {
            let add = eval(l, &sol, cs, locs);
            let entry = sol.entry(cs.find_const(*v)).or_default();
            for (loc, k) in add {
                let cur = entry.entry(loc).or_default();
                let new = cur.union(k);
                if new != *cur {
                    *cur = new;
                    changed = true;
                }
            }
        }
        if !changed {
            return sol;
        }
    }
}

#[test]
fn solution_satisfies_all_inclusions() {
    let mut outer = Rng64::seed_from_u64(0x501);
    for _ in 0..64 {
        let seed = outer.next_u64();
        let SysSpec {
            mut cs, mut locs, ..
        } = random_system(seed, 6, 5, 14, true);
        let sol = solve(&mut cs, &mut locs);
        // Rebuild a reference-style view of the solver's answer.
        let mut view: RefSol = Default::default();
        for raw in 0..cs.var_count() as u32 {
            let v = cs.find_const(EffVar(raw));
            let entry = view.entry(v).or_default();
            for (l, k) in sol.set(&cs, v) {
                entry.insert(l.0, k);
            }
        }
        for (l, v) in cs.includes.clone() {
            let lhs = eval(&l, &view, &cs, &locs);
            let rhs = view.get(&cs.find_const(v)).cloned().unwrap_or_default();
            for (loc, k) in lhs {
                let have = rhs.get(&loc).copied().unwrap_or_default();
                assert_eq!(
                    have.union(k),
                    have,
                    "inclusion violated at {:?}: {} ⊄ solution",
                    loc,
                    k
                );
            }
        }
    }
}

#[test]
fn solution_is_least_on_intersection_free_systems() {
    let mut outer = Rng64::seed_from_u64(0x502);
    for _ in 0..64 {
        let seed = outer.next_u64();
        let SysSpec {
            mut cs,
            mut locs,
            vars,
            loc_ids,
        } = random_system(seed, 6, 5, 12, false);
        let reference = reference_solve(&cs, &locs);
        let sol = solve(&mut cs, &mut locs);
        for &v in &vars {
            let got = sol.set(&cs, v);
            let want = reference
                .get(&cs.find_const(v))
                .cloned()
                .unwrap_or_default();
            // Same total mask weight both ways = equality of finite maps.
            let got_map: std::collections::HashMap<u32, KindMask> =
                got.iter().map(|&(l, k)| (l.0, k)).collect();
            assert_eq!(&got_map, &want, "var {:?}", v);
        }
        // And every membership query agrees.
        for &v in &vars {
            for &l in &loc_ids {
                for kinds in [KindMask::READ, KindMask::ACCESS, KindMask::MENTION] {
                    let want = reference
                        .get(&cs.find_const(v))
                        .and_then(|m| m.get(&locs.find_const(l).0))
                        .is_some_and(|k| k.overlaps(kinds));
                    assert_eq!(sol.contains(&cs, &locs, v, l, kinds), want);
                }
            }
        }
    }
}

#[test]
fn targeted_reaches_agrees_with_full_solution() {
    let mut outer = Rng64::seed_from_u64(0x503);
    for _ in 0..64 {
        let seed = outer.next_u64();
        let SysSpec {
            mut cs,
            mut locs,
            vars,
            loc_ids,
        } = random_system(seed, 5, 4, 12, true);
        let graph = build(&mut cs);
        let sol = {
            // solve() rebuilds its own graph; run it on a clone-shaped
            // system by re-solving the same constraints.
            let mut cs2 = ConstraintSystem::new();
            std::mem::swap(&mut cs2, &mut cs);
            let s = solve(&mut cs2, &mut locs);
            std::mem::swap(&mut cs2, &mut cs);
            s
        };
        for &v in &vars {
            for &l in &loc_ids {
                for kinds in [KindMask::READ, KindMask::WRITE, KindMask::ALL] {
                    assert_eq!(
                        reaches(&graph, &cs, &mut locs, l, kinds, v),
                        sol.contains(&cs, &locs, v, l, kinds),
                        "loc {:?} kinds {} var {:?}",
                        l,
                        kinds,
                        v
                    );
                }
            }
        }
    }
}
