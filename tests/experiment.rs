//! Integration test of the Section 7 experiment: the Figure 7 rows are
//! measured exactly, and a stratified sample of the corpus matches its
//! calibrated expectations. (The full 589-module sweep lives in the
//! `localias-bench` `summary` binary; it runs in about a second in
//! release mode but is kept out of the default test run.)

use localias::corpus::{generate, Category, DEFAULT_SEED, FIGURE7};
use localias::cqual::{check_locks, Mode};

#[test]
fn figure7_rows_are_measured_exactly() {
    let corpus = generate(DEFAULT_SEED);
    for &(name, nc, cf, as_) in FIGURE7.iter() {
        let m = corpus.iter().find(|m| m.name == name).expect(name);
        let parsed = m.parse();
        let measured = (
            check_locks(&parsed, Mode::NoConfine).error_count(),
            check_locks(&parsed, Mode::Confine).error_count(),
            check_locks(&parsed, Mode::AllStrong).error_count(),
        );
        assert_eq!(measured, (nc, cf, as_), "{name}");
    }
}

#[test]
fn stratified_sample_matches_calibration() {
    let corpus = generate(DEFAULT_SEED);
    let mut remaining = [6usize; 4]; // per category
    for m in &corpus {
        let slot = match m.category {
            Category::Clean => 0,
            Category::RealBugs => 1,
            Category::Recovered => 2,
            Category::Partial => 3,
        };
        if remaining[slot] == 0 {
            continue;
        }
        remaining[slot] -= 1;
        let parsed = m.parse();
        let measured = (
            check_locks(&parsed, Mode::NoConfine).error_count(),
            check_locks(&parsed, Mode::Confine).error_count(),
            check_locks(&parsed, Mode::AllStrong).error_count(),
        );
        assert_eq!(
            measured,
            (m.expect.no_confine, m.expect.confine, m.expect.all_strong),
            "{} ({:?})",
            m.name,
            m.category
        );
    }
    assert_eq!(remaining, [0, 0, 0, 0], "all categories sampled");
}

#[test]
fn a_different_seed_still_reproduces_the_population() {
    // The calibration is deterministic in shape, not tied to one seed.
    let corpus = generate(12345);
    assert_eq!(corpus.len(), 589);
    let clean = corpus
        .iter()
        .filter(|m| m.category == Category::Clean)
        .count();
    assert_eq!(clean, 352);
    let eliminated: usize = corpus.iter().map(|m| m.expect.eliminated()).sum();
    assert_eq!(eliminated, 3116);
}

/// The full 589-module sweep: measured error counts equal the calibrated
/// expectations for *every* module. Takes ~30 s in debug mode, so it is
/// ignored by default; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full corpus sweep; run explicitly (fast under --release)"]
fn full_corpus_measures_exactly_as_calibrated() {
    let corpus = generate(DEFAULT_SEED);
    let mut mismatches = Vec::new();
    for m in &corpus {
        let parsed = m.parse();
        let measured = (
            check_locks(&parsed, Mode::NoConfine).error_count(),
            check_locks(&parsed, Mode::Confine).error_count(),
            check_locks(&parsed, Mode::AllStrong).error_count(),
        );
        let expected = (m.expect.no_confine, m.expect.confine, m.expect.all_strong);
        if measured != expected {
            mismatches.push(format!("{}: {measured:?} != {expected:?}", m.name));
        }
    }
    assert!(mismatches.is_empty(), "{mismatches:#?}");
}
