//! Empirical soundness (the paper's Theorem 1): a program that type
//! checks never evaluates to `err`.
//!
//! The checker's verdict is compared against the §3.2 reference
//! interpreter, which implements `restrict` literally as copy-and-poison:
//! a runtime [`RuntimeError::RestrictViolation`] *is* the semantics'
//! `err`. For randomly generated annotated programs:
//!
//! * if every explicit annotation checks, execution must not raise a
//!   restrict violation (soundness);
//! * contrapositively, any run that does violate must come from a program
//!   the checker rejected.
//!
//! The suite also cross-validates the static lock checker against the
//! interpreter's dynamic lock fault detection on the corpus.

mod common;

use common::random_module_source;
use localias::ast::parse_module;
use localias::core;
use localias::corpus::{generate, Category, DEFAULT_SEED};
use localias::interp::{Interp, RuntimeError};
use localias_prng::Rng64;

#[test]
fn checked_programs_never_violate_restrict() {
    let mut rng = Rng64::seed_from_u64(0x5D0);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let stmts = rng.gen_range(1usize..10);
        let arg = rng.gen_range(0i64..4);
        let src = random_module_source(seed, stmts);
        let m = parse_module("sound", &src).expect("generated modules parse");
        let analysis = core::check(&m);
        let accepted = analysis.clean();

        let mut interp = Interp::new(&m, 200_000);
        let result = interp.run_all(arg);

        // Other faults (null derefs, fuel) are outside the theorem's
        // scope; acceptance says nothing about them.
        if let Err(RuntimeError::RestrictViolation { detail }) = result {
            // Theorem 1: this must only happen to rejected programs.
            assert!(
                !accepted,
                "checker accepted a program that violates at runtime \
                 (arg {arg}): {detail}\n{src}"
            );
        }
    }
}

#[test]
fn paper_examples_validate_both_directions() {
    // Accepted by the checker — and executes cleanly.
    let good = parse_module(
        "good",
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                int *r = p;
                *r = 2;
            }
            return *q;
        }
        "#,
    )
    .unwrap();
    assert!(core::check(&good).clean());
    let mut interp = Interp::new(&good, 10_000);
    interp.call_with_default_args("main", 0).unwrap();

    // Rejected by the checker — and faults at runtime.
    let bad = parse_module(
        "bad",
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                *p = 2;
                *q = 3;
            }
            return 0;
        }
        "#,
    )
    .unwrap();
    assert!(!core::check(&bad).clean());
    let mut interp = Interp::new(&bad, 10_000);
    let err = interp.call_with_default_args("main", 0).unwrap_err();
    assert!(matches!(err, RuntimeError::RestrictViolation { .. }));
}

#[test]
fn corpus_clean_modules_have_no_dynamic_lock_faults() {
    let corpus = generate(DEFAULT_SEED);
    let mut checked = 0;
    for m in corpus.iter().filter(|m| m.category == Category::Clean) {
        if checked >= 8 {
            break;
        }
        checked += 1;
        let parsed = m.parse();
        for arg in 0..3 {
            let mut interp = Interp::new(&parsed, 500_000);
            let result = interp.run_all(arg);
            assert!(
                !matches!(result, Err(RuntimeError::RestrictViolation { .. })),
                "{}: restrict violation with arg {arg}: {result:?}",
                m.name
            );
            assert!(
                interp.lock_faults.is_empty(),
                "{}: dynamic lock fault with arg {arg}: {:?}",
                m.name,
                interp.lock_faults
            );
        }
    }
    assert_eq!(checked, 8);
}

#[test]
fn corpus_bug_modules_fault_dynamically() {
    // The static analysis reports genuine bugs in these modules; the
    // interpreter confirms them on at least one input.
    let corpus = generate(DEFAULT_SEED);
    let mut checked = 0;
    for m in corpus.iter().filter(|m| m.category == Category::RealBugs) {
        if checked >= 8 {
            break;
        }
        checked += 1;
        let parsed = m.parse();
        let mut any_fault = false;
        for arg in 0..3 {
            let mut interp = Interp::new(&parsed, 500_000);
            let _ = interp.run_all(arg);
            if !interp.lock_faults.is_empty() {
                any_fault = true;
                break;
            }
        }
        assert!(
            any_fault,
            "{}: statically reported bug never manifests dynamically",
            m.name
        );
    }
    assert_eq!(checked, 8);
}

#[test]
fn recovered_modules_execute_cleanly() {
    // Weak-update (spurious) errors must NOT correspond to dynamic
    // faults: the code is correct, the static analysis was just
    // imprecise — exactly what makes those errors "spurious".
    let corpus = generate(DEFAULT_SEED);
    let mut checked = 0;
    for m in corpus.iter().filter(|m| m.category == Category::Recovered) {
        if checked >= 8 {
            break;
        }
        let parsed = m.parse();
        // Skip recovered modules that also carry injected genuine bugs.
        if m.expect.all_strong > 0 {
            continue;
        }
        checked += 1;
        for arg in 0..3 {
            let mut interp = Interp::new(&parsed, 500_000);
            let result = interp.run_all(arg);
            assert!(
                !matches!(result, Err(RuntimeError::RestrictViolation { .. })),
                "{}: {result:?}",
                m.name
            );
            assert!(
                interp.lock_faults.is_empty(),
                "{}: spurious static errors must not fault dynamically: {:?}",
                m.name,
                interp.lock_faults
            );
        }
    }
    assert!(checked >= 4, "sampled {checked}");
}
