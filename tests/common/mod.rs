//! Shared test infrastructure: re-exports the corpus crate's random
//! Mini-C program generator.

#![allow(dead_code)]

pub use localias::corpus::random_module_source;
