//! Integration tests running the paper's own example programs through
//! the full pipeline (parser → alias analysis → effect constraints →
//! checking/inference → flow-sensitive lock checking).

use localias::ast::parse_module;
use localias::core::{self, Reason};
use localias::cqual::{check_locks, Mode};

#[test]
fn figure1_story_end_to_end() {
    // Unannotated: the abstract location of the lock array conflates all
    // elements, weak updates lose the state, and the unlock site cannot
    // be verified.
    let unannotated = parse_module(
        "fig1",
        r#"
        lock locks[8];
        extern void work();
        void do_with_lock(lock *l) {
            spin_lock(l);
            work();
            spin_unlock(l);
        }
        void foo(int i) { do_with_lock(&locks[i]); }
        "#,
    )
    .unwrap();
    assert!(check_locks(&unannotated, Mode::NoConfine).error_count() > 0);

    // The paper's fix: the C99-style restrict parameter.
    let annotated = parse_module(
        "fig1r",
        r#"
        lock locks[8];
        extern void work();
        void do_with_lock(lock *restrict l) {
            spin_lock(l);
            work();
            spin_unlock(l);
        }
        void foo(int i) { do_with_lock(&locks[i]); }
        "#,
    )
    .unwrap();
    let a = core::check(&annotated);
    assert!(a.clean(), "{:?}", a.restricts);
    assert_eq!(check_locks(&annotated, Mode::NoConfine).error_count(), 0);
}

#[test]
fn section2_valid_and_invalid_dereferences() {
    // { int *restrict p = q; *p valid; *q invalid }
    let m = parse_module(
        "s2",
        "void f(int *q) { restrict int *p = q; *p = 1; *q = 2; }",
    )
    .unwrap();
    let a = core::check(&m);
    assert!(a.restricts[0].reasons.contains(&Reason::AliasAccessed));
}

#[test]
fn section2_rebinding_in_inner_scope() {
    let m = parse_module(
        "s2b",
        r#"
        void f(int *src) {
            restrict p = src {
                restrict r = p {
                    *r = 1;     // valid
                }
                *p = 2;         // valid again after r's scope
            }
        }
        "#,
    )
    .unwrap();
    let a = core::check(&m);
    assert!(a.restricts.iter().all(|r| r.ok()), "{:?}", a.restricts);
}

#[test]
fn section2_escaping_copy() {
    let m = parse_module(
        "s2c",
        r#"
        int *x;
        void f(int *q) {
            restrict p = q {
                int *r = p;   // valid: local copy
                *r = 1;
                x = p;        // invalid: copy escapes
            }
        }
        "#,
    )
    .unwrap();
    let a = core::check(&m);
    assert!(a.restricts[0].reasons.contains(&Reason::Escapes));
}

#[test]
fn section3_sneaky_double_restrict() {
    // restrict y = x in restrict z = x in ... *y ... *z — the extra
    // restriction effect must reject this.
    let m = parse_module(
        "s3",
        "void f(int *x) { restrict y = x { restrict z = x { *y = 1; *z = 2; } } }",
    )
    .unwrap();
    let a = core::check(&m);
    assert!(a.restricts.iter().any(|r| !r.ok()), "{:?}", a.restricts);
}

#[test]
fn section3_escape_example() {
    // The §3 example motivating the ρ' ∉ locs(Γ, τ1, τ2) side condition:
    // `p := q` inside q's restrict would create two unrestricted names
    // for the same location.
    let m = parse_module(
        "s3b",
        r#"
        void f() {
            int *x = new 0;
            int **p = new (new 1);
            restrict q = x {
                p = &q;
            }
        }
        "#,
    )
    .unwrap();
    let a = core::check(&m);
    assert!(
        a.restricts.iter().any(|r| !r.ok()),
        "storing &q lets ρ' escape: {:?}",
        a.restricts
    );
}

#[test]
fn section6_confine_example() {
    // The §6 rewriting of the locks example with confine, explicit form.
    let m = parse_module(
        "s6",
        r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            confine (&locks[i]) {
                spin_lock(&locks[i]);
                work();
                spin_unlock(&locks[i]);
            }
        }
        "#,
    )
    .unwrap();
    let a = core::check(&m);
    assert!(a.clean(), "{:?}", a.confines);
    assert_eq!(check_locks(&m, Mode::NoConfine).error_count(), 0);
}

#[test]
fn section6_confine_inference_matches_explicit() {
    // Inference must discover what the explicit annotation stated.
    let src_plain = r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
        }
    "#;
    let m = parse_module("s6b", src_plain).unwrap();
    let inf = core::infer_confines(&m);
    assert_eq!(inf.chosen.len(), 1);
    assert_eq!(check_locks(&m, Mode::Confine).error_count(), 0);
}

#[test]
fn adjacent_confines_merge() {
    // §7: (confine e in e1; confine e in e2) = confine e in {e1; e2} —
    // the heuristic greedily merges adjacent statements with matching
    // change_type arguments into one region.
    let m = parse_module(
        "merge",
        r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            spin_unlock(&locks[i]);
            spin_lock(&locks[i]);
            spin_unlock(&locks[i]);
        }
        "#,
    )
    .unwrap();
    let inf = core::infer_confines(&m);
    // One merged region covering all four statements.
    let chosen: Vec<_> = inf.chosen.iter().map(|&i| &inf.candidates[i]).collect();
    assert_eq!(chosen.len(), 1, "{chosen:?}");
    assert_eq!((chosen[0].start, chosen[0].end), (0, 3));
    assert_eq!(check_locks(&m, Mode::Confine).error_count(), 0);
}

#[test]
fn change_type_alias_for_intrinsics() {
    // The generic change_type statement is accepted and conservatively
    // invalidates the lock's state.
    let m = parse_module(
        "ct",
        r#"
        lock mu;
        void f() {
            change_type(&mu);
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    )
    .unwrap();
    let r = check_locks(&m, Mode::AllStrong);
    assert!(
        r.error_count() > 0,
        "state unknown after change_type: {:?}",
        r.errors
    );
}

#[test]
fn pretty_printed_corpus_module_reanalyzes_identically() {
    // Cross-crate: generate a module, print it, re-parse it, and get the
    // same lock verdicts.
    let corpus = localias::corpus::generate(7);
    let m = corpus
        .iter()
        .find(|m| m.expect.no_confine > 0)
        .expect("an erroring module");
    let parsed = m.parse();
    let printed = localias::ast::pretty::print_module(&parsed);
    let reparsed = parse_module(&m.name, &printed).unwrap();
    for mode in [Mode::NoConfine, Mode::Confine, Mode::AllStrong] {
        assert_eq!(
            check_locks(&parsed, mode).error_count(),
            check_locks(&reparsed, mode).error_count(),
            "{mode:?}"
        );
    }
}
