//! Effect atoms, kind masks, effect variables and effect terms.
//!
//! The paper uses two sorts of sets: plain *location* sets (written `S`,
//! used for `locs(τ)`/`locs(Γ)` and escape checks) and *effect* sets
//! (written `L`, whose elements are `read(ρ)`, `write(ρ)`, `alloc(ρ)` —
//! the refinement §6 introduces for `confine`). We represent both with one
//! atom type: an [`Atom`] is a location tagged with an [`EffectKind`],
//! where [`EffectKind::Mention`] plays the role of plain set membership.

use localias_alias::Loc;
use std::fmt;

/// The kind of an effect atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectKind {
    /// `read(ρ)` — the location is read.
    Read,
    /// `write(ρ)` — the location is written.
    Write,
    /// `alloc(ρ)` — the location is allocated.
    Alloc,
    /// `ρ` occurs in a type or environment (`locs(τ)` / `locs(Γ)`
    /// membership, not an access).
    Mention,
}

impl EffectKind {
    /// This kind as a one-bit [`KindMask`].
    pub fn mask(self) -> KindMask {
        match self {
            EffectKind::Read => KindMask::READ,
            EffectKind::Write => KindMask::WRITE,
            EffectKind::Alloc => KindMask::ALLOC,
            EffectKind::Mention => KindMask::MENTION,
        }
    }
}

impl fmt::Display for EffectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EffectKind::Read => write!(f, "read"),
            EffectKind::Write => write!(f, "write"),
            EffectKind::Alloc => write!(f, "alloc"),
            EffectKind::Mention => write!(f, "mention"),
        }
    }
}

/// A set of [`EffectKind`]s, packed into a byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct KindMask(pub u8);

impl KindMask {
    /// The empty mask.
    pub const EMPTY: KindMask = KindMask(0);
    /// `read`.
    pub const READ: KindMask = KindMask(1);
    /// `write`.
    pub const WRITE: KindMask = KindMask(2);
    /// `alloc`.
    pub const ALLOC: KindMask = KindMask(4);
    /// Type/environment mention.
    pub const MENTION: KindMask = KindMask(8);
    /// Any access: read, write or alloc (the undifferentiated effects of
    /// the §3 system).
    pub const ACCESS: KindMask = KindMask(1 | 2 | 4);
    /// Writes or allocations (what referential transparency forbids).
    pub const WRITE_OR_ALLOC: KindMask = KindMask(2 | 4);
    /// Every kind.
    pub const ALL: KindMask = KindMask(15);

    /// Set union.
    pub fn union(self, other: KindMask) -> KindMask {
        KindMask(self.0 | other.0)
    }

    /// Set intersection.
    pub fn inter(self, other: KindMask) -> KindMask {
        KindMask(self.0 & other.0)
    }

    /// `true` if no kinds are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if the masks share a kind.
    pub fn overlaps(self, other: KindMask) -> bool {
        !self.inter(other).is_empty()
    }

    /// `true` if `kind` is present.
    pub fn contains(self, kind: EffectKind) -> bool {
        self.overlaps(kind.mask())
    }
}

impl fmt::Display for KindMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, n) in [
            (KindMask::READ, "read"),
            (KindMask::WRITE, "write"),
            (KindMask::ALLOC, "alloc"),
            (KindMask::MENTION, "mention"),
        ] {
            if self.overlaps(k) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{n}")?;
                first = false;
            }
        }
        if first {
            write!(f, "∅")?;
        }
        Ok(())
    }
}

/// An effect atom: a kind applied to a location, e.g. `write(ρ3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The kind.
    pub kind: EffectKind,
    /// The location (compare via its canonical representative).
    pub loc: Loc,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind, self.loc)
    }
}

/// An effect variable `ε` — an unknown set of atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EffVar(pub u32);

impl EffVar {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EffVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε{}", self.0)
    }
}

/// An effect term `L` (the left-hand side of an inclusion `L ⊆ ε`).
///
/// Grammar (paper §4): `L ::= ∅ | {K(ρ)} | ε | L ∪ L | L ∩ L`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// `∅`
    Empty,
    /// A single atom `{K(ρ)}`.
    Atom(Atom),
    /// An effect variable.
    Var(EffVar),
    /// Union `L1 ∪ L2`.
    Union(Box<Effect>, Box<Effect>),
    /// Filtered intersection `L1 ∩ L2`.
    ///
    /// The left operand supplies the atoms; the right operand *gates* by
    /// location: an atom `K(ρ)` from the left passes iff the right side
    /// contains `ρ` under **any** kind. This directional reading is what
    /// the paper's `(Down)` rule needs — `L ∩ (ε_Γ ∪ ε_τ)` keeps the
    /// kinded effects of `L` for locations mentioned by the environment or
    /// type — and every intersection the generation rules emit has this
    /// shape.
    Inter(Box<Effect>, Box<Effect>),
}

impl Effect {
    /// A single-atom effect.
    pub fn atom(kind: EffectKind, loc: Loc) -> Effect {
        Effect::Atom(Atom { kind, loc })
    }

    /// A variable effect.
    pub fn var(v: EffVar) -> Effect {
        Effect::Var(v)
    }

    /// Union of two effects (flattening trivial cases).
    pub fn union(a: Effect, b: Effect) -> Effect {
        match (a, b) {
            (Effect::Empty, x) | (x, Effect::Empty) => x,
            (a, b) => Effect::Union(Box::new(a), Box::new(b)),
        }
    }

    /// Filtered intersection (see [`Effect::Inter`]).
    pub fn inter(a: Effect, b: Effect) -> Effect {
        match (&a, &b) {
            (Effect::Empty, _) | (_, Effect::Empty) => Effect::Empty,
            _ => Effect::Inter(Box::new(a), Box::new(b)),
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Empty => write!(f, "∅"),
            Effect::Atom(a) => write!(f, "{{{a}}}"),
            Effect::Var(v) => write!(f, "{v}"),
            Effect::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Effect::Inter(a, b) => write!(f, "({a} ∩ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_compose() {
        assert!(KindMask::ACCESS.contains(EffectKind::Read));
        assert!(KindMask::ACCESS.contains(EffectKind::Write));
        assert!(KindMask::ACCESS.contains(EffectKind::Alloc));
        assert!(!KindMask::ACCESS.contains(EffectKind::Mention));
        assert!(KindMask::WRITE_OR_ALLOC.overlaps(KindMask::WRITE));
        assert!(!KindMask::WRITE_OR_ALLOC.overlaps(KindMask::READ));
        assert_eq!(KindMask::READ.union(KindMask::WRITE), KindMask(3),);
        assert!(KindMask::EMPTY.is_empty());
    }

    #[test]
    fn effect_constructors_simplify() {
        let a = Effect::atom(EffectKind::Read, Loc(0));
        assert_eq!(Effect::union(Effect::Empty, a.clone()), a);
        assert_eq!(Effect::inter(Effect::Empty, a.clone()), Effect::Empty);
        assert_eq!(Effect::inter(a.clone(), Effect::Empty), Effect::Empty);
    }

    #[test]
    fn display_is_readable() {
        let e = Effect::union(
            Effect::atom(EffectKind::Write, Loc(1)),
            Effect::var(EffVar(2)),
        );
        assert_eq!(e.to_string(), "({write(ρ1)} ∪ ε2)");
        assert_eq!(KindMask::ACCESS.to_string(), "read|write|alloc");
        assert_eq!(KindMask::EMPTY.to_string(), "∅");
    }
}
