//! The constraint system: inclusions, variable equalities, checked
//! disinclusions, and the conditional constraints of §5/§6.

use crate::effect::{EffVar, Effect, KindMask};
use localias_alias::{Loc, UnionFind};
use localias_obs as obs;
use std::borrow::Cow;
use std::fmt;

/// A boolean flag set by a fired conditional constraint.
///
/// `localias-core` allocates one per inference candidate ("was this
/// `let-or-restrict` demoted to `let`?", "was this `confine?` rejected?")
/// and reads it from the [`crate::solve::Solution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlagId(pub u32);

/// A checked disinclusion `ρ ∉_κ ε` — the paper's `ρ ∉ L` side conditions
/// of (Restrict), restricted to the kinds in `kinds`.
///
/// Unlike conditional constraints these do not alter the solution; they
/// are *verified* against the least solution after solving, and each
/// violation is reported to the caller tagged with `tag`.
#[derive(Debug, Clone)]
pub struct NotIn {
    /// The location that must stay out.
    pub loc: Loc,
    /// Which kinds count as membership.
    pub kinds: KindMask,
    /// The effect variable whose solution is inspected.
    pub var: EffVar,
    /// Caller tag identifying which annotation/check this belongs to.
    pub tag: u32,
}

/// The antecedent of a conditional constraint.
#[derive(Debug, Clone)]
pub enum Guard {
    /// Fires when `ρ` is in `var`'s solution under one of `kinds`.
    LocIn {
        /// The guarded location.
        loc: Loc,
        /// Kinds that count.
        kinds: KindMask,
        /// The observed variable.
        var: EffVar,
    },
    /// Fires when *any* atom of one of `kinds` is in `var`'s solution.
    AnyKind {
        /// The observed variable.
        var: EffVar,
        /// Kinds that count.
        kinds: KindMask,
    },
    /// Fires when some location `ρ` appears in `left` under `left_kinds`
    /// **and** in `right` under `right_kinds` — the shape of §6.1's
    /// referential-transparency conditions (`∃ρ''. read(ρ'') ∈ L1 ∧
    /// write(ρ'') ∈ L2`).
    Overlap {
        /// First observed variable.
        left: EffVar,
        /// Kinds counted on the left.
        left_kinds: KindMask,
        /// Second observed variable.
        right: EffVar,
        /// Kinds counted on the right.
        right_kinds: KindMask,
    },
}

/// The consequent of a conditional constraint.
#[derive(Debug, Clone, Default)]
pub struct Action {
    /// Location pairs to unify (the `⇒ ρ = ρ'` demotions).
    pub unify: Vec<(Loc, Loc)>,
    /// Inclusions to add (`⇒ L ⊆ ε`).
    pub include: Vec<(Effect, EffVar)>,
    /// Flags to set.
    pub flags: Vec<FlagId>,
}

/// A conditional constraint `guard ⇒ action`. One-shot: once fired it
/// stays fired.
#[derive(Debug, Clone)]
pub struct Conditional {
    /// The antecedent.
    pub guard: Guard,
    /// The consequent.
    pub action: Action,
}

/// A system of effect constraints under construction.
///
/// The expected life cycle: `localias-core` generates constraints during
/// its typing walk, then hands the system together with the
/// [`localias_alias::LocTable`] to [`crate::solve::solve`].
#[derive(Debug, Default)]
pub struct ConstraintSystem {
    evars: UnionFind,
    names: Vec<Cow<'static, str>>,
    /// Unconditional inclusions `L ⊆ ε`.
    pub includes: Vec<(Effect, EffVar)>,
    /// Checked disinclusions.
    pub not_ins: Vec<NotIn>,
    /// Conditional constraints.
    pub conditionals: Vec<Conditional>,
    flag_count: u32,
}

impl ConstraintSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        ConstraintSystem::default()
    }

    /// Allocates a fresh effect variable; `name` is for diagnostics.
    ///
    /// Names are never consulted on the analysis hot path, so callers
    /// should pass a `&'static str` (free) rather than a formatted
    /// `String` — dynamic context belongs in diagnostics, not here.
    pub fn fresh_var(&mut self, name: impl Into<Cow<'static, str>>) -> EffVar {
        obs::count(obs::Counter::EffectVars, 1);
        let v = EffVar(self.evars.push());
        self.names.push(name.into());
        v
    }

    /// Allocates a fresh flag (initially unset).
    pub fn fresh_flag(&mut self) -> FlagId {
        let f = FlagId(self.flag_count);
        self.flag_count += 1;
        f
    }

    /// Number of flags allocated.
    pub fn flag_count(&self) -> u32 {
        self.flag_count
    }

    /// Number of effect-variable keys allocated.
    pub fn var_count(&self) -> usize {
        self.evars.len()
    }

    /// Adds the inclusion `L ⊆ ε`.
    pub fn include(&mut self, l: Effect, var: EffVar) {
        if matches!(l, Effect::Empty) {
            return;
        }
        obs::count(obs::Counter::ConstraintEdges, 1);
        self.includes.push((l, var));
    }

    /// Records the equality `ε1 = ε2` (from the Figure 4a type-equality
    /// resolution): the variables become one.
    pub fn equate(&mut self, a: EffVar, b: EffVar) {
        obs::count(obs::Counter::ConstraintEdges, 1);
        self.evars.union(a.0, b.0);
    }

    /// Canonical representative of `v`.
    pub fn find(&mut self, v: EffVar) -> EffVar {
        EffVar(self.evars.find(v.0))
    }

    /// Canonical representative without path compression.
    pub fn find_const(&self, v: EffVar) -> EffVar {
        EffVar(self.evars.find_const(v.0))
    }

    /// Diagnostic name of `v`.
    pub fn name(&self, v: EffVar) -> &str {
        self.names[v.index()].as_ref()
    }

    /// Adds a checked disinclusion `ρ ∉_κ ε` tagged `tag`.
    pub fn check_not_in(&mut self, loc: Loc, kinds: KindMask, var: EffVar, tag: u32) {
        self.not_ins.push(NotIn {
            loc,
            kinds,
            var,
            tag,
        });
    }

    /// Adds a conditional constraint.
    pub fn conditional(&mut self, guard: Guard, action: Action) {
        self.conditionals.push(Conditional { guard, action });
    }
}

impl fmt::Display for ConstraintSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "constraint system: {} vars, {} inclusions, {} checks, {} conditionals",
            self.var_count(),
            self.includes.len(),
            self.not_ins.len(),
            self.conditionals.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::EffectKind;

    #[test]
    fn vars_and_flags_allocate() {
        let mut cs = ConstraintSystem::new();
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        assert_ne!(a, b);
        assert_eq!(cs.name(a), "a");
        let f1 = cs.fresh_flag();
        let f2 = cs.fresh_flag();
        assert_ne!(f1, f2);
        assert_eq!(cs.flag_count(), 2);
    }

    #[test]
    fn equate_merges() {
        let mut cs = ConstraintSystem::new();
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        cs.equate(a, b);
        assert_eq!(cs.find(a), cs.find(b));
    }

    #[test]
    fn empty_inclusions_are_dropped() {
        let mut cs = ConstraintSystem::new();
        let a = cs.fresh_var("a");
        cs.include(Effect::Empty, a);
        assert!(cs.includes.is_empty());
        cs.include(Effect::atom(EffectKind::Read, Loc(0)), a);
        assert_eq!(cs.includes.len(), 1);
    }
}
