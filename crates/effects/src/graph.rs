//! The effect constraint graph and the Figure 4b normalization.
//!
//! Inclusions `L ⊆ ε` are lowered into a directed graph exactly as the
//! paper prescribes:
//!
//! | Constraint          | Edge(s)                                   |
//! |---------------------|-------------------------------------------|
//! | `{K(ρ)} ⊆ ε`        | atom source at `ε`'s node                 |
//! | `ε1 ⊆ ε2`           | `ε1 → ε2`                                 |
//! | `L1 ∪ L2 ⊆ ε`       | lower both into `ε`                       |
//! | `M1 ∩ M2 ⊆ ε`       | `M1 →ₗ I`, `M2 →ᵣ I`, `I → ε` (fresh `I`) |
//!
//! Nested unions/intersections get fresh auxiliary variables, which is the
//! left-to-right rewriting of Figure 4b; the rewriting preserves least
//! solutions (each auxiliary variable's least solution is exactly the set
//! denoted by the sub-term it names).
//!
//! Intersection (`I`) nodes are *directional* (see
//! [`crate::effect::Effect::Inter`]): the left input supplies kinded
//! atoms, the right input gates by location. An atom `K(ρ)` leaves `I`
//! iff it entered on the left and `ρ` (under any kind) entered on the
//! right — for the symmetric location-set intersections the paper writes,
//! this coincides with plain intersection.

use crate::constraint::ConstraintSystem;
use crate::effect::{Atom, EffVar, Effect};

/// A node index in the constraint graph.
pub type NodeIx = u32;

/// Which input port of an intersection node an edge feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Port {
    /// An ordinary inclusion edge (into a plain node).
    Normal,
    /// The atom-supplying input of an `I` node.
    Left,
    /// The location-gating input of an `I` node.
    Right,
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An effect variable (or an auxiliary variable from normalization).
    Plain,
    /// An intersection node.
    Inter,
}

/// The lowered constraint graph. Grows monotonically — conditional
/// constraint firing adds edges but never removes them.
#[derive(Debug, Default)]
pub struct Graph {
    /// Node kinds, indexed by [`NodeIx`].
    pub kinds: Vec<NodeKind>,
    /// Outgoing edges: `(from, to, port)` adjacency.
    pub out: Vec<Vec<(NodeIx, Port)>>,
    /// Atom sources: `(atom, node, port)`.
    pub atoms: Vec<(Atom, NodeIx, Port)>,
    /// Node of each *canonical* effect variable; lazily created.
    var_node: Vec<Option<NodeIx>>,
    /// Log of atoms/edges added since the last [`Graph::take_additions`]
    /// — the solver seeds these incrementally instead of re-propagating.
    added_atoms: Vec<(Atom, NodeIx, Port)>,
    added_edges: Vec<(NodeIx, NodeIx, Port)>,
}

impl Graph {
    /// Creates a graph sized for `cs`'s variables.
    pub fn new(cs: &ConstraintSystem) -> Self {
        Graph {
            kinds: Vec::new(),
            out: Vec::new(),
            atoms: Vec::new(),
            var_node: vec![None; cs.var_count()],
            added_atoms: Vec::new(),
            added_edges: Vec::new(),
        }
    }

    fn push_node(&mut self, kind: NodeKind) -> NodeIx {
        let ix = self.kinds.len() as NodeIx;
        self.kinds.push(kind);
        self.out.push(Vec::new());
        ix
    }

    /// The node representing effect variable `v` (resolved to its
    /// canonical representative first).
    pub fn var_node(&mut self, cs: &mut ConstraintSystem, v: EffVar) -> NodeIx {
        let r = cs.find(v);
        if r.index() >= self.var_node.len() {
            self.var_node.resize(r.index() + 1, None);
        }
        match self.var_node[r.index()] {
            Some(n) => n,
            None => {
                let n = self.push_node(NodeKind::Plain);
                self.var_node[r.index()] = Some(n);
                n
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// The node of an already-canonical effect variable, without creating
    /// one. Pass the result of [`ConstraintSystem::find`]/`find_const`.
    pub fn var_node_readonly(&self, canonical: EffVar) -> Option<NodeIx> {
        self.var_node.get(canonical.index()).copied().flatten()
    }

    fn edge(&mut self, from: NodeIx, to: NodeIx, port: Port) {
        self.out[from as usize].push((to, port));
        self.added_edges.push((from, to, port));
    }

    /// Drains the additions (atoms, edges) logged since the last call.
    #[allow(clippy::type_complexity)]
    pub fn take_additions(&mut self) -> (Vec<(Atom, NodeIx, Port)>, Vec<(NodeIx, NodeIx, Port)>) {
        (
            std::mem::take(&mut self.added_atoms),
            std::mem::take(&mut self.added_edges),
        )
    }

    /// Lowers the inclusion `l ⊆ ε` into graph edges (Figure 4b).
    pub fn include(&mut self, cs: &mut ConstraintSystem, l: &Effect, var: EffVar) {
        let target = self.var_node(cs, var);
        self.lower(cs, l, target, Port::Normal);
    }

    fn lower(&mut self, cs: &mut ConstraintSystem, l: &Effect, target: NodeIx, port: Port) {
        match l {
            Effect::Empty => {}
            Effect::Atom(a) => {
                self.atoms.push((*a, target, port));
                self.added_atoms.push((*a, target, port));
            }
            Effect::Var(v) => {
                let n = self.var_node(cs, *v);
                self.edge(n, target, port);
            }
            Effect::Union(a, b) => {
                self.lower(cs, a, target, port);
                self.lower(cs, b, target, port);
            }
            Effect::Inter(a, b) => {
                let i = self.push_node(NodeKind::Inter);
                self.lower(cs, a, i, Port::Left);
                self.lower(cs, b, i, Port::Right);
                self.edge(i, target, port);
            }
        }
    }
}

/// Builds the graph for every unconditional inclusion in `cs`.
pub fn build(cs: &mut ConstraintSystem) -> Graph {
    let mut g = Graph::new(cs);
    let includes = cs.includes.clone();
    for (l, v) in &includes {
        g.include(cs, l, *v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::EffectKind;
    use localias_alias::Loc;

    #[test]
    fn atoms_and_edges_lower() {
        let mut cs = ConstraintSystem::new();
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        cs.include(Effect::atom(EffectKind::Read, Loc(0)), a);
        cs.include(Effect::var(a), b);
        let g = build(&mut cs);
        assert_eq!(g.atoms.len(), 1);
        // a's node has one edge to b's node.
        let edge_count: usize = g.out.iter().map(|v| v.len()).sum();
        assert_eq!(edge_count, 1);
    }

    #[test]
    fn unions_flatten_without_aux_nodes() {
        let mut cs = ConstraintSystem::new();
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        let c = cs.fresh_var("c");
        cs.include(Effect::union(Effect::var(a), Effect::var(b)), c);
        let g = build(&mut cs);
        assert!(g.kinds.iter().all(|k| *k == NodeKind::Plain));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn intersections_create_inodes() {
        let mut cs = ConstraintSystem::new();
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        let c = cs.fresh_var("c");
        cs.include(Effect::inter(Effect::var(a), Effect::var(b)), c);
        let g = build(&mut cs);
        assert_eq!(g.kinds.iter().filter(|k| **k == NodeKind::Inter).count(), 1);
        // The I node has exactly one Left and one Right incoming edge.
        let mut left = 0;
        let mut right = 0;
        for edges in &g.out {
            for (_, port) in edges {
                match port {
                    Port::Left => left += 1,
                    Port::Right => right += 1,
                    Port::Normal => {}
                }
            }
        }
        assert_eq!((left, right), (1, 1));
    }

    #[test]
    fn equated_vars_share_a_node() {
        let mut cs = ConstraintSystem::new();
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        cs.equate(a, b);
        let mut g = Graph::new(&cs);
        let na = g.var_node(&mut cs, a);
        let nb = g.var_node(&mut cs, b);
        assert_eq!(na, nb);
    }
}
