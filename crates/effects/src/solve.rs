//! Solving effect constraint systems: least solutions, the Figure 5
//! `CHECK-SAT` reachability query, conditional-constraint fixpoints, and
//! verification of checked disinclusions.
//!
//! ## Least solutions
//!
//! A solution maps every effect variable to a set of kinded atoms such
//! that all inclusions hold. Least solutions exist (the system is
//! monotone) and are computed by worklist propagation over the constraint
//! graph; an intersection node passes an atom `K(ρ)` only once `ρ` has
//! arrived on *both* of its inputs — the role played by the arrival
//! counter in the paper's Figure 5.
//!
//! ## Conditional constraints (§5, §6)
//!
//! Inference introduces one-shot conditionals `guard ⇒ action` whose
//! actions may unify locations and add inclusions. [`solve`] iterates:
//! compute the least solution, fire every newly-true guard, repeat. Each
//! round fires at least one guard or terminates, and guards never
//! "unfire" (solutions only grow, locations only merge), so the loop runs
//! at most `#conditionals + 1` rounds — this is the worklist the paper
//! charges `O(n)` re-computation per fired constraint to, giving the
//! overall `O(n²)` inference bound.

use crate::constraint::{Action, ConstraintSystem, Guard, NotIn};
use crate::effect::{EffVar, Effect, KindMask};
use crate::graph::{build, Graph, NodeIx, Port};
use localias_alias::{Loc, LocTable};
use localias_obs as obs;

pub use localias_alias::{FxHasher, FxMap};

/// A dense `Loc → KindMask` set.
///
/// Locations are small dense indices (a module tops out at a few hundred
/// even on the largest corpus members), so per-node sets are flat byte
/// arrays indexed by `Loc::index` — membership tests and unions on the
/// propagation hot path are a single array access with no hashing at
/// all. A side list of touched locations keeps iteration proportional to
/// the set's size rather than the table's.
#[derive(Debug, Clone, Default)]
struct LocSet {
    /// `masks[loc.index()]`: low bits are the [`KindMask`], the top bit
    /// records membership in `present` (so re-inserting a removed
    /// location does not duplicate the list entry).
    masks: Vec<u8>,
    /// Insertion-ordered list of locations ever inserted; entries whose
    /// mask has gone back to empty are skipped on iteration.
    present: Vec<Loc>,
    /// Number of locations with a non-empty mask.
    len: usize,
}

/// Top bit of a `LocSet` mask byte: "already in the `present` list".
const IN_LIST: u8 = 0x80;

impl LocSet {
    #[inline]
    fn get(&self, loc: Loc) -> KindMask {
        KindMask(self.masks.get(loc.index()).copied().unwrap_or(0) & !IN_LIST)
    }

    /// Unions `mask` into `loc`'s entry, returning `(old, new)` masks.
    #[inline]
    fn union_insert(&mut self, loc: Loc, mask: KindMask) -> (KindMask, KindMask) {
        let i = loc.index();
        if i >= self.masks.len() {
            self.masks.resize(i + 1, 0);
        }
        let raw = self.masks[i];
        let old = raw & !IN_LIST;
        let new = old | (mask.0 & !IN_LIST);
        if new != old {
            if old == 0 {
                self.len += 1;
                if raw & IN_LIST == 0 {
                    self.present.push(loc);
                }
            }
            self.masks[i] = new | IN_LIST;
        }
        (KindMask(old), KindMask(new))
    }

    /// Empties `loc`'s entry, returning its previous non-empty mask.
    #[inline]
    fn remove(&mut self, loc: Loc) -> Option<KindMask> {
        let raw = self.masks.get_mut(loc.index())?;
        let old = *raw & !IN_LIST;
        if old == 0 {
            return None;
        }
        *raw &= IN_LIST;
        self.len -= 1;
        Some(KindMask(old))
    }

    #[inline]
    fn contains(&self, loc: Loc) -> bool {
        !self.get(loc).is_empty()
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// Iterates the non-empty entries in insertion order.
    fn iter(&self) -> impl Iterator<Item = (Loc, KindMask)> + '_ {
        self.present.iter().filter_map(move |&l| {
            let m = self.masks[l.index()] & !IN_LIST;
            (m != 0).then_some((l, KindMask(m)))
        })
    }
}

/// Per-node solution state during propagation.
#[derive(Debug, Clone, Default)]
struct NodeState {
    /// For plain nodes: the solved atom set. For intersection nodes: the
    /// *output* (gated) set.
    sol: LocSet,
    /// Intersection nodes only: atoms seen on the left input.
    left: LocSet,
    /// Intersection nodes only: locations seen on the right input.
    right: LocSet,
}

/// The result of [`solve`].
#[derive(Debug)]
pub struct Solution {
    /// Final per-node sets (internal layout).
    node_sets: Vec<LocSet>,
    /// Node of each canonical effect variable at the end of solving.
    var_node: FxMap<EffVar, NodeIx>,
    /// Flag values set by fired conditionals.
    flags: Vec<bool>,
    /// Violated disinclusion checks.
    violations: Vec<Violation>,
    /// How many solver rounds ran.
    pub rounds: usize,
    /// How many conditional constraints fired.
    pub fired: usize,
}

/// A violated `ρ ∉ ε` check.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The caller's tag from [`ConstraintSystem::check_not_in`].
    pub tag: u32,
    /// The offending (canonical) location.
    pub loc: Loc,
    /// The kinds under which it was found.
    pub found: KindMask,
}

impl Solution {
    /// Is `K(ρ)` (for any `K` in `kinds`) in `var`'s least solution?
    pub fn contains(
        &self,
        cs: &ConstraintSystem,
        locs: &LocTable,
        var: EffVar,
        loc: Loc,
        kinds: KindMask,
    ) -> bool {
        let r = cs.find_const(var);
        let Some(&node) = self.var_node.get(&r) else {
            return false;
        };
        let l = locs.find_const(loc);
        self.node_sets[node as usize].get(l).overlaps(kinds)
    }

    /// The solved atom set of `var` as sorted `(location, kinds)` pairs.
    ///
    /// Allocates and sorts; callers that only need to scan the set should
    /// prefer [`Solution::set_iter`].
    pub fn set(&self, cs: &ConstraintSystem, var: EffVar) -> Vec<(Loc, KindMask)> {
        let mut v: Vec<_> = self.set_iter(cs, var).collect();
        v.sort_by_key(|&(l, _)| l);
        v
    }

    /// Iterates `var`'s solved atom set without allocating.
    ///
    /// Iteration order is the set's insertion order (an artifact of
    /// propagation scheduling); use [`Solution::set`] when a sorted order
    /// matters.
    pub fn set_iter<'a>(
        &'a self,
        cs: &ConstraintSystem,
        var: EffVar,
    ) -> impl Iterator<Item = (Loc, KindMask)> + 'a {
        let r = cs.find_const(var);
        self.var_node
            .get(&r)
            .map(|&node| self.node_sets[node as usize].iter())
            .into_iter()
            .flatten()
    }

    /// The number of atoms in `var`'s solved set.
    pub fn set_len(&self, cs: &ConstraintSystem, var: EffVar) -> usize {
        let r = cs.find_const(var);
        self.var_node
            .get(&r)
            .map_or(0, |&node| self.node_sets[node as usize].len())
    }

    /// Whether `flag` was set by a fired conditional.
    pub fn flag(&self, flag: crate::constraint::FlagId) -> bool {
        self.flags.get(flag.0 as usize).copied().unwrap_or(false)
    }

    /// The violated checks, in generation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// The registry tying abstract locations to their memoized `ε_ρ`
/// variables (`locs(τ)` memoization, paper §4).
///
/// When solving unifies two locations (a §5/§6 demotion), the two
/// locations' `ε` variables must come to denote the same set; the solver
/// achieves this by adding mutual inclusion edges between them, which
/// preserves least solutions without disturbing the already-built graph.
#[derive(Debug, Default)]
pub struct LocVars {
    map: FxMap<Loc, EffVar>,
}

impl LocVars {
    /// Creates an empty registry.
    pub fn new() -> Self {
        LocVars::default()
    }

    /// The `ε_ρ` variable for `loc`'s class, creating one (named from the
    /// location) on first use. Pass the canonical representative.
    pub fn var_for(&mut self, cs: &mut ConstraintSystem, canonical: Loc) -> EffVar {
        match self.map.get(&canonical) {
            Some(&v) => v,
            None => {
                let v = cs.fresh_var("ε_ρ");
                self.map.insert(canonical, v);
                v
            }
        }
    }

    /// The variable for `loc`'s class if one exists.
    pub fn get(&self, canonical: Loc) -> Option<EffVar> {
        self.map.get(&canonical).copied()
    }

    /// All `(location, variable)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, EffVar)> + '_ {
        self.map.iter().map(|(&l, &v)| (l, v))
    }

    /// Reconciles the registry after `loser`'s class merged into
    /// `winner`'s, returning inclusions the caller must add so both
    /// variables denote the same set.
    pub fn merge(&mut self, winner: Loc, loser: Loc) -> Vec<(Effect, EffVar)> {
        match (
            self.map.get(&winner).copied(),
            self.map.get(&loser).copied(),
        ) {
            (Some(a), Some(b)) if a != b => {
                vec![(Effect::var(a), b), (Effect::var(b), a)]
            }
            (Some(_), Some(_)) => Vec::new(),
            (Some(a), None) => {
                self.map.insert(loser, a);
                Vec::new()
            }
            (None, Some(b)) => {
                self.map.insert(winner, b);
                Vec::new()
            }
            (None, None) => Vec::new(),
        }
    }
}

/// [`solve_with`] without a location-variable registry.
pub fn solve(cs: &mut ConstraintSystem, locs: &mut LocTable) -> Solution {
    let mut loc_vars = LocVars::new();
    solve_with(cs, locs, &mut loc_vars)
}

/// Computes the least solution of `cs`'s constraints, fires conditional
/// constraints to fixpoint (mutating `locs` as demotions unify
/// locations), and verifies all checked disinclusions.
///
/// `loc_vars` keeps the memoized per-location `ε_ρ` variables coherent
/// across mid-solve location unifications.
pub fn solve_with(
    cs: &mut ConstraintSystem,
    locs: &mut LocTable,
    loc_vars: &mut LocVars,
) -> Solution {
    let mut graph = build(cs);
    let mut fired = vec![false; cs.conditionals.len()];
    let mut flags = vec![false; cs.flag_count() as usize];
    let mut rounds = 0;

    // Merges that happened before solving are the caller's to handle;
    // drop them so we only react to our own.
    let _ = locs.take_merges();

    // Initial propagation; later rounds extend the same state
    // *incrementally* — the paper's O(n) work per fired conditional
    // rather than a full re-propagation.
    let mut engine = Engine::new(graph.node_count());
    let _ = graph.take_additions(); // initial atoms are seeded in bulk
    for &(atom, node, port) in &graph.atoms {
        let l = locs.find(atom.loc);
        engine.deliver(node, port, l, atom.kind.mask());
    }
    engine.run(&graph);

    let states = loop {
        rounds += 1;

        let mut any = false;
        // Indexed loop: the body mutates `cs` (adding constraints), so an
        // iterator over `cs.conditionals` cannot be held across it.
        #[allow(clippy::needless_range_loop)]
        for i in 0..cs.conditionals.len() {
            if fired[i] {
                continue;
            }
            let guard_true = {
                let cond = &cs.conditionals[i];
                eval_guard(&cond.guard, cs, locs, &graph, &engine.states)
            };
            if guard_true {
                fired[i] = true;
                any = true;
                let action = cs.conditionals[i].action.clone();
                apply_action(&action, cs, locs, &mut graph, &mut flags);
                for (winner, loser) in locs.take_merges() {
                    for (l, v) in loc_vars.merge(winner, loser) {
                        cs.includes.push((l.clone(), v));
                        graph.include(cs, &l, v);
                    }
                    engine.merge_loc(winner, loser);
                }
                // Seed whatever the action added to the graph.
                let (atoms, edges) = graph.take_additions();
                engine.grow(graph.node_count());
                for (atom, node, port) in atoms {
                    let l = locs.find(atom.loc);
                    engine.deliver(node, port, l, atom.kind.mask());
                }
                for (from, to, port) in edges {
                    engine.deliver_edge(from, to, port);
                }
                engine.run(&graph);
            }
        }
        if !any {
            break std::mem::take(&mut engine.states);
        }
    };

    // Verify the checked disinclusions against the final least solution.
    let mut violations = Vec::new();
    let not_ins: Vec<NotIn> = cs.not_ins.clone();
    for check in &not_ins {
        let node = var_node_of(&graph, cs, check.var);
        if let Some(node) = node {
            let l = locs.find(check.loc);
            let found = states[node as usize].sol.get(l).inter(check.kinds);
            if !found.is_empty() {
                violations.push(Violation {
                    tag: check.tag,
                    loc: l,
                    found,
                });
            }
        }
    }

    let mut var_node = FxMap::default();
    for raw in 0..cs.var_count() as u32 {
        let r = cs.find(EffVar(raw));
        if let Some(n) = var_node_of(&graph, cs, r) {
            var_node.insert(r, n);
        }
    }

    let fired = fired.iter().filter(|f| **f).count();
    obs::count(obs::Counter::SolveRounds, rounds as u64);
    obs::count(obs::Counter::ConditionalsFired, fired as u64);
    Solution {
        node_sets: states.into_iter().map(|s| s.sol).collect(),
        var_node,
        flags,
        violations,
        rounds,
        fired,
    }
}

fn var_node_of(graph: &Graph, cs: &ConstraintSystem, v: EffVar) -> Option<NodeIx> {
    // Read-only lookup mirroring Graph::var_node without creating nodes.
    let r = cs.find_const(v);
    graph_var_node(graph, r)
}

fn graph_var_node(graph: &Graph, canonical: EffVar) -> Option<NodeIx> {
    graph.var_node_readonly(canonical)
}

fn apply_action(
    action: &Action,
    cs: &mut ConstraintSystem,
    locs: &mut LocTable,
    graph: &mut Graph,
    flags: &mut Vec<bool>,
) {
    for &(a, b) in &action.unify {
        let ta = locs.content(a);
        let tb = locs.content(b);
        // Unify the classes and their contents; mismatches here mean the
        // program was already ill-typed and have been reported elsewhere.
        let mut mismatches = Vec::new();
        localias_alias::unify(
            locs,
            &localias_alias::Ty::Ref(a),
            &localias_alias::Ty::Ref(b),
            &mut mismatches,
        );
        let _ = (ta, tb);
    }
    for (l, v) in &action.include {
        cs.includes.push((l.clone(), *v));
        graph.include(cs, l, *v);
    }
    for f in &action.flags {
        if f.0 as usize >= flags.len() {
            flags.resize(f.0 as usize + 1, false);
        }
        flags[f.0 as usize] = true;
    }
}

fn eval_guard(
    guard: &Guard,
    cs: &ConstraintSystem,
    locs: &mut LocTable,
    graph: &Graph,
    states: &[NodeState],
) -> bool {
    let sol_of = |v: EffVar| -> Option<&LocSet> {
        var_node_of(graph, cs, v).map(|n| &states[n as usize].sol)
    };
    match guard {
        Guard::LocIn { loc, kinds, var } => {
            let l = locs.find(*loc);
            sol_of(*var).is_some_and(|s| s.get(l).overlaps(*kinds))
        }
        Guard::AnyKind { var, kinds } => sol_of(*var)
            .map(|s| s.iter().any(|(_, m)| m.overlaps(*kinds)))
            .unwrap_or(false),
        Guard::Overlap {
            left,
            left_kinds,
            right,
            right_kinds,
        } => {
            let (Some(ls), Some(rs)) = (sol_of(*left), sol_of(*right)) else {
                return false;
            };
            let (small, big, small_kinds, big_kinds) = if ls.len() <= rs.len() {
                (ls, rs, *left_kinds, *right_kinds)
            } else {
                (rs, ls, *right_kinds, *left_kinds)
            };
            small
                .iter()
                .any(|(l, m)| m.overlaps(small_kinds) && big.get(l).overlaps(big_kinds))
        }
    }
}

/// The incremental propagation engine used by [`solve_with`]: state
/// persists across conditional-constraint rounds, new atoms/edges are
/// seeded individually, and location merges re-key the per-node maps —
/// `O(n)` per fired constraint, the paper's §5 cost model.
#[derive(Debug, Default)]
struct Engine {
    states: Vec<NodeState>,
    work: Vec<(NodeIx, Loc)>,
    /// Reused buffer for [`Engine::deliver_edge`], so each new edge does
    /// not allocate a fresh snapshot vector.
    scratch: Vec<(Loc, KindMask)>,
}

impl Engine {
    fn new(nodes: usize) -> Self {
        Engine {
            states: vec![NodeState::default(); nodes],
            work: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn grow(&mut self, nodes: usize) {
        if nodes > self.states.len() {
            self.states.resize(nodes, NodeState::default());
        }
    }

    fn deliver(&mut self, node: NodeIx, port: Port, loc: Loc, mask: KindMask) {
        deliver(&mut self.states, &mut self.work, node, port, loc, mask);
    }

    /// Pushes everything `from` currently holds along a newly added edge.
    fn deliver_edge(&mut self, from: NodeIx, to: NodeIx, port: Port) {
        // Snapshot into the reusable scratch buffer (delivery mutates
        // `states`, so the source set cannot be borrowed across it).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(self.states[from as usize].sol.iter());
        for &(l, m) in &scratch {
            self.deliver(to, port, l, m);
        }
        self.scratch = scratch;
    }

    /// Re-keys every per-node map after `loser`'s class merged into
    /// `winner`'s, re-checking intersection gates for the merged key.
    /// Conservatively re-enqueues every touched node for the merged key
    /// (monotone, so spurious work is harmless).
    fn merge_loc(&mut self, winner: Loc, loser: Loc) {
        for node in 0..self.states.len() {
            let st = &mut self.states[node];
            let mut touched = false;
            if let Some(m) = st.sol.remove(loser) {
                st.sol.union_insert(winner, m);
                touched = true;
            }
            if let Some(m) = st.left.remove(loser) {
                st.left.union_insert(winner, m);
                touched = true;
            }
            if let Some(m) = st.right.remove(loser) {
                st.right.union_insert(winner, m);
                touched = true;
            }
            // Re-check the gate: the merge may newly align a left-side
            // atom with a right-side presence.
            if (touched || st.left.contains(winner)) && st.right.contains(winner) {
                let lm = st.left.get(winner);
                if !lm.is_empty() {
                    let (old, new) = st.sol.union_insert(winner, lm);
                    if new != old {
                        touched = true;
                    }
                }
            }
            if touched {
                self.work.push((node as NodeIx, winner));
            }
        }
    }

    /// Drains the worklist to a fixpoint.
    fn run(&mut self, graph: &Graph) {
        while let Some((node, loc)) = self.work.pop() {
            let mask = self.states[node as usize].sol.get(loc);
            if mask.is_empty() {
                continue;
            }
            for &(to, port) in &graph.out[node as usize] {
                deliver(&mut self.states, &mut self.work, to, port, loc, mask);
            }
        }
    }
}

/// Delivers `mask` for `loc` to `node` on `port`, updating intersection
/// gating and scheduling further propagation.
fn deliver(
    states: &mut [NodeState],
    work: &mut Vec<(NodeIx, Loc)>,
    node: NodeIx,
    port: Port,
    loc: Loc,
    mask: KindMask,
) {
    obs::count(obs::Counter::DeliverOps, 1);
    let st = &mut states[node as usize];
    match port {
        Port::Normal => {
            let (old, new) = st.sol.union_insert(loc, mask);
            if new != old {
                work.push((node, loc));
            }
        }
        Port::Left => {
            let (old, new) = st.left.union_insert(loc, mask);
            if new != old {
                // Re-gate: pass left kinds if the right side has the loc.
                if st.right.contains(loc) {
                    let (out_old, out_new) = st.sol.union_insert(loc, new);
                    if out_new != out_old {
                        work.push((node, loc));
                    }
                }
            }
        }
        Port::Right => {
            let (old, new) = st.right.union_insert(loc, mask);
            if new != old && old.is_empty() {
                let lm = st.left.get(loc);
                if !lm.is_empty() {
                    let (out_old, out_new) = st.sol.union_insert(loc, lm);
                    if out_new != out_old {
                        work.push((node, loc));
                    }
                }
            }
        }
    }
}

/// The Figure 5 `CHECK-SAT` query: does `K(ρ)` (for any `K` in `kinds`)
/// reach `var` in the least solution?
///
/// This runs a *single-location* counting search — `O(n)` per query — and
/// is the fast path `localias-core` uses for pure `restrict` *checking*
/// (`k` annotations → `O(kn)` total, the paper's §4 bound). It answers
/// identically to full propagation **when no intersection gate depends on
/// other locations' presence** — true by construction here, because gates
/// test presence of the *same* location on the right input.
pub fn reaches(
    graph: &Graph,
    cs: &ConstraintSystem,
    locs: &mut LocTable,
    loc: Loc,
    kinds: KindMask,
    var: EffVar,
) -> bool {
    obs::count(obs::Counter::CheckSatQueries, 1);
    let Some(target) = var_node_of(graph, cs, var) else {
        return false;
    };
    let l = locs.find(loc);

    // Node/edge work is tallied locally (plain integers on the hot path)
    // and flushed to the global counters once per query.
    let mut nodes_visited: u64 = 0;
    let mut edges_walked: u64 = 0;
    let mut states: Vec<NodeState> = vec![NodeState::default(); graph.node_count()];
    let mut work: Vec<(NodeIx, Loc)> = Vec::new();
    for &(atom, node, port) in &graph.atoms {
        if locs.find(atom.loc) == l {
            deliver(&mut states, &mut work, node, port, l, atom.kind.mask());
        }
    }
    let found = 'search: {
        while let Some((node, loc)) = work.pop() {
            nodes_visited += 1;
            if node == target && states[node as usize].sol.get(loc).overlaps(kinds) {
                break 'search true;
            }
            let mask = states[node as usize].sol.get(loc);
            if mask.is_empty() {
                continue;
            }
            for &(to, port) in &graph.out[node as usize] {
                edges_walked += 1;
                deliver(&mut states, &mut work, to, port, loc, mask);
            }
        }
        states[target as usize].sol.get(l).overlaps(kinds)
    };
    obs::count(obs::Counter::CheckSatNodes, nodes_visited);
    obs::count(obs::Counter::CheckSatEdges, edges_walked);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::FlagId;
    use crate::effect::{Effect, EffectKind};
    use localias_alias::Ty;

    fn setup() -> (ConstraintSystem, LocTable) {
        (ConstraintSystem::new(), LocTable::new())
    }

    #[test]
    fn atoms_flow_through_var_chains() {
        let (mut cs, mut locs) = setup();
        let l = locs.fresh("l", Ty::Int);
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        let c = cs.fresh_var("c");
        cs.include(Effect::atom(EffectKind::Read, l), a);
        cs.include(Effect::var(a), b);
        cs.include(Effect::var(b), c);
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.contains(&cs, &locs, c, l, KindMask::READ));
        assert!(!sol.contains(&cs, &locs, c, l, KindMask::WRITE));
    }

    #[test]
    fn intersection_gates_by_location() {
        let (mut cs, mut locs) = setup();
        let l1 = locs.fresh("l1", Ty::Int);
        let l2 = locs.fresh("l2", Ty::Int);
        let eff = cs.fresh_var("eff");
        let vis = cs.fresh_var("vis");
        let out = cs.fresh_var("out");
        // eff = {read l1, write l2}; vis = {mention l1}; out ⊇ eff ∩ vis.
        cs.include(Effect::atom(EffectKind::Read, l1), eff);
        cs.include(Effect::atom(EffectKind::Write, l2), eff);
        cs.include(Effect::atom(EffectKind::Mention, l1), vis);
        cs.include(Effect::inter(Effect::var(eff), Effect::var(vis)), out);
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.contains(&cs, &locs, out, l1, KindMask::READ));
        assert!(
            !sol.contains(&cs, &locs, out, l2, KindMask::ALL),
            "l2 is not visible, so the Down-style mask drops it"
        );
        // Kinds pass from the left only.
        assert!(!sol.contains(&cs, &locs, out, l1, KindMask::MENTION));
    }

    #[test]
    fn cyclic_constraints_terminate() {
        let (mut cs, mut locs) = setup();
        let l = locs.fresh("l", Ty::Int);
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        cs.include(Effect::var(a), b);
        cs.include(Effect::var(b), a);
        cs.include(Effect::atom(EffectKind::Write, l), a);
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.contains(&cs, &locs, a, l, KindMask::WRITE));
        assert!(sol.contains(&cs, &locs, b, l, KindMask::WRITE));
    }

    #[test]
    fn checked_disinclusion_violations() {
        let (mut cs, mut locs) = setup();
        let l = locs.fresh("l", Ty::Int);
        let a = cs.fresh_var("a");
        cs.include(Effect::atom(EffectKind::Read, l), a);
        cs.check_not_in(l, KindMask::ACCESS, a, 7);
        cs.check_not_in(l, KindMask::MENTION, a, 8);
        let sol = solve(&mut cs, &mut locs);
        assert_eq!(sol.violations().len(), 1);
        assert_eq!(sol.violations()[0].tag, 7);
        assert_eq!(sol.violations()[0].found, KindMask::READ);
    }

    #[test]
    fn conditional_loc_in_fires_and_unifies() {
        let (mut cs, mut locs) = setup();
        let rho = locs.fresh("rho", Ty::Int);
        let rho_p = locs.fresh("rho'", Ty::Int);
        let body = cs.fresh_var("body");
        cs.include(Effect::atom(EffectKind::Read, rho), body);
        let flag = cs.fresh_flag();
        cs.conditional(
            Guard::LocIn {
                loc: rho,
                kinds: KindMask::ACCESS,
                var: body,
            },
            Action {
                unify: vec![(rho, rho_p)],
                include: vec![],
                flags: vec![flag],
            },
        );
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.flag(flag), "guard must fire");
        assert!(locs.same(rho, rho_p), "demotion unifies ρ and ρ'");
        assert!(sol.rounds >= 2);
    }

    #[test]
    fn conditional_does_not_fire_when_guard_false() {
        let (mut cs, mut locs) = setup();
        let rho = locs.fresh("rho", Ty::Int);
        let rho_p = locs.fresh("rho'", Ty::Int);
        let other = locs.fresh("other", Ty::Int);
        let body = cs.fresh_var("body");
        cs.include(Effect::atom(EffectKind::Read, other), body);
        let flag = cs.fresh_flag();
        cs.conditional(
            Guard::LocIn {
                loc: rho,
                kinds: KindMask::ACCESS,
                var: body,
            },
            Action {
                unify: vec![(rho, rho_p)],
                include: vec![],
                flags: vec![flag],
            },
        );
        let sol = solve(&mut cs, &mut locs);
        assert!(!sol.flag(flag));
        assert!(!locs.same(rho, rho_p));
    }

    #[test]
    fn cascading_conditionals() {
        // Firing one guard unifies locations, which makes a second guard
        // true on the next round.
        let (mut cs, mut locs) = setup();
        let a = locs.fresh("a", Ty::Int);
        let b = locs.fresh("b", Ty::Int);
        let c = locs.fresh("c", Ty::Int);
        let v = cs.fresh_var("v");
        cs.include(Effect::atom(EffectKind::Write, a), v);
        let f1 = cs.fresh_flag();
        let f2 = cs.fresh_flag();
        // write(a) ∈ v ⇒ b = a  (so write(b) ∈ v next round)
        cs.conditional(
            Guard::LocIn {
                loc: a,
                kinds: KindMask::WRITE,
                var: v,
            },
            Action {
                unify: vec![(a, b)],
                include: vec![],
                flags: vec![f1],
            },
        );
        // write(b) ∈ v ⇒ set f2 and unify c.
        cs.conditional(
            Guard::LocIn {
                loc: b,
                kinds: KindMask::WRITE,
                var: v,
            },
            Action {
                unify: vec![(b, c)],
                include: vec![],
                flags: vec![f2],
            },
        );
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.flag(f1) && sol.flag(f2));
        assert!(locs.same(a, c));
        assert_eq!(sol.fired, 2);
    }

    #[test]
    fn overlap_guard() {
        let (mut cs, mut locs) = setup();
        let l = locs.fresh("l", Ty::Int);
        let m = locs.fresh("m", Ty::Int);
        let l1 = cs.fresh_var("L1");
        let l2 = cs.fresh_var("L2");
        cs.include(Effect::atom(EffectKind::Read, l), l1);
        cs.include(Effect::atom(EffectKind::Write, m), l2);
        let f = cs.fresh_flag();
        cs.conditional(
            Guard::Overlap {
                left: l1,
                left_kinds: KindMask::READ,
                right: l2,
                right_kinds: KindMask::WRITE_OR_ALLOC,
            },
            Action {
                unify: vec![],
                include: vec![],
                flags: vec![f],
            },
        );
        let sol = solve(&mut cs, &mut locs);
        assert!(!sol.flag(f), "no shared location yet");

        // Now make the locations alias and re-solve: the RT conflict
        // appears.
        let (mut cs2, mut locs2) = setup();
        let l = locs2.fresh("l", Ty::Int);
        let l12 = cs2.fresh_var("L1");
        let l22 = cs2.fresh_var("L2");
        cs2.include(Effect::atom(EffectKind::Read, l), l12);
        cs2.include(Effect::atom(EffectKind::Write, l), l22);
        let f2 = cs2.fresh_flag();
        cs2.conditional(
            Guard::Overlap {
                left: l12,
                left_kinds: KindMask::READ,
                right: l22,
                right_kinds: KindMask::WRITE_OR_ALLOC,
            },
            Action {
                unify: vec![],
                include: vec![],
                flags: vec![f2],
            },
        );
        let sol2 = solve(&mut cs2, &mut locs2);
        assert!(sol2.flag(f2));
    }

    #[test]
    fn any_kind_guard() {
        let (mut cs, mut locs) = setup();
        let l = locs.fresh("l", Ty::Int);
        let v = cs.fresh_var("v");
        cs.include(Effect::atom(EffectKind::Alloc, l), v);
        let f = cs.fresh_flag();
        cs.conditional(
            Guard::AnyKind {
                var: v,
                kinds: KindMask::WRITE_OR_ALLOC,
            },
            Action {
                unify: vec![],
                include: vec![],
                flags: vec![f],
            },
        );
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.flag(f));
    }

    #[test]
    fn conditional_include_extends_solution() {
        let (mut cs, mut locs) = setup();
        let l = locs.fresh("l", Ty::Int);
        let trigger = cs.fresh_var("trigger");
        let sink = cs.fresh_var("sink");
        cs.include(Effect::atom(EffectKind::Read, l), trigger);
        cs.conditional(
            Guard::LocIn {
                loc: l,
                kinds: KindMask::READ,
                var: trigger,
            },
            Action {
                unify: vec![],
                include: vec![(Effect::atom(EffectKind::Write, l), sink)],
                flags: vec![FlagId(0)],
            },
        );
        // Allocate the flag referenced above.
        let _ = cs.fresh_flag();
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.contains(&cs, &locs, sink, l, KindMask::WRITE));
    }

    #[test]
    fn reaches_matches_full_propagation() {
        let (mut cs, mut locs) = setup();
        let l1 = locs.fresh("l1", Ty::Int);
        let l2 = locs.fresh("l2", Ty::Int);
        let a = cs.fresh_var("a");
        let b = cs.fresh_var("b");
        let vis = cs.fresh_var("vis");
        let out = cs.fresh_var("out");
        cs.include(Effect::atom(EffectKind::Read, l1), a);
        cs.include(Effect::atom(EffectKind::Write, l2), a);
        cs.include(Effect::var(a), b);
        cs.include(Effect::atom(EffectKind::Mention, l1), vis);
        cs.include(Effect::inter(Effect::var(b), Effect::var(vis)), out);
        let graph = build(&mut cs);
        let sol = {
            let mut cs2 = ConstraintSystem::new();
            std::mem::swap(&mut cs2, &mut cs);
            let s = solve(&mut cs2, &mut locs);
            std::mem::swap(&mut cs2, &mut cs);
            s
        };
        for (loc, var) in [(l1, a), (l1, b), (l1, out), (l2, out), (l2, b)] {
            for kinds in [KindMask::READ, KindMask::WRITE, KindMask::ACCESS] {
                assert_eq!(
                    reaches(&graph, &cs, &mut locs, loc, kinds, var),
                    sol.contains(&cs, &locs, var, loc, kinds),
                    "reaches vs full propagation disagree for {loc} {kinds} {var}"
                );
            }
        }
    }

    #[test]
    fn unified_locations_share_atoms() {
        let (mut cs, mut locs) = setup();
        let a = locs.fresh("a", Ty::Int);
        let b = locs.fresh("b", Ty::Int);
        let v = cs.fresh_var("v");
        cs.include(Effect::atom(EffectKind::Read, a), v);
        locs.union_raw(a, b);
        let sol = solve(&mut cs, &mut locs);
        assert!(sol.contains(&cs, &locs, v, b, KindMask::READ));
    }
}
