#![warn(missing_docs)]

//! Effect constraints and their solver — the algorithmic core of
//! *Checking and Inferring Local Non-Aliasing* (PLDI 2003), §4–§6.
//!
//! * [`effect`] — kinded effect atoms (`read`/`write`/`alloc` plus plain
//!   `mention` for location sets), effect variables `ε`, and effect terms
//!   `L ::= ∅ | {K(ρ)} | ε | L ∪ L | L ∩ L`;
//! * [`constraint`] — the constraint system: inclusions `L ⊆ ε`, variable
//!   equalities (from Figure 4a type resolution), checked disinclusions
//!   `ρ ∉ ε` (the (Restrict) side conditions), and the conditional
//!   constraints that drive §5/§6 inference;
//! * [`graph`] — normalization into a constraint graph with intersection
//!   nodes (Figure 4b);
//! * [`solve`](crate::solve()) (in the [`solve`](crate::solve) module) —
//!   least solutions by worklist propagation, the Figure 5 `CHECK-SAT`
//!   single-location query, and the conditional-constraint fixpoint loop.
//!
//! # Example
//!
//! ```
//! use localias_effects::{ConstraintSystem, Effect, EffectKind, KindMask, solve};
//! use localias_alias::{LocTable, Ty};
//!
//! let mut locs = LocTable::new();
//! let rho = locs.fresh("rho", Ty::Int);
//! let mut cs = ConstraintSystem::new();
//! let body = cs.fresh_var("body effect");
//! cs.include(Effect::atom(EffectKind::Write, rho), body);
//! cs.check_not_in(rho, KindMask::ACCESS, body, 0); // "ρ ∉ L2"
//! let sol = solve(&mut cs, &mut locs);
//! assert_eq!(sol.violations().len(), 1); // the restrict would be rejected
//! ```

pub mod constraint;
pub mod effect;
pub mod graph;
pub mod solve;

pub use constraint::{Action, Conditional, ConstraintSystem, FlagId, Guard, NotIn};
pub use effect::{Atom, EffVar, Effect, EffectKind, KindMask};
pub use graph::{build, Graph, NodeIx, NodeKind, Port};
pub use solve::{reaches, solve, solve_with, FxHasher, FxMap, LocVars, Solution, Violation};
