//! Stress and corner-case tests for the effect constraint solver:
//! deep intersection nesting, variable equalities interacting with
//! lowering, incremental conditional cascades, and `LocVars` merging.

use localias_alias::{LocTable, Ty};
use localias_effects::{
    solve, solve_with, Action, ConstraintSystem, Effect, EffectKind, Guard, KindMask, LocVars,
};

fn setup() -> (ConstraintSystem, LocTable) {
    (ConstraintSystem::new(), LocTable::new())
}

#[test]
fn deeply_nested_intersections() {
    // ((((atoms ∩ g1) ∩ g2) ∩ g3) ∩ g4) ⊆ out — the atom survives only if
    // its location is present in every gate.
    let (mut cs, mut locs) = setup();
    let l = locs.fresh("l", Ty::Int);
    let gates: Vec<_> = (0..4).map(|i| cs.fresh_var(format!("g{i}"))).collect();
    for &g in &gates {
        cs.include(Effect::atom(EffectKind::Mention, l), g);
    }
    let out = cs.fresh_var("out");
    let mut term = Effect::atom(EffectKind::Write, l);
    for &g in &gates {
        term = Effect::inter(term, Effect::var(g));
    }
    cs.include(term, out);
    let sol = solve(&mut cs, &mut locs);
    assert!(sol.contains(&cs, &locs, out, l, KindMask::WRITE));

    // Remove one gate's mention: a second location must not pass.
    let (mut cs2, mut locs2) = setup();
    let l2 = locs2.fresh("l", Ty::Int);
    let m2 = locs2.fresh("m", Ty::Int);
    let g = cs2.fresh_var("gate");
    cs2.include(Effect::atom(EffectKind::Mention, l2), g);
    let out2 = cs2.fresh_var("out");
    cs2.include(
        Effect::inter(
            Effect::union(
                Effect::atom(EffectKind::Write, l2),
                Effect::atom(EffectKind::Write, m2),
            ),
            Effect::var(g),
        ),
        out2,
    );
    let sol2 = solve(&mut cs2, &mut locs2);
    assert!(sol2.contains(&cs2, &locs2, out2, l2, KindMask::WRITE));
    assert!(!sol2.contains(&cs2, &locs2, out2, m2, KindMask::WRITE));
}

#[test]
fn equated_vars_before_and_after_inclusion() {
    let (mut cs, mut locs) = setup();
    let l = locs.fresh("l", Ty::Int);
    let a = cs.fresh_var("a");
    let b = cs.fresh_var("b");
    let c = cs.fresh_var("c");
    // Include into `a`, equate a = b afterwards, then flow b into c.
    cs.include(Effect::atom(EffectKind::Read, l), a);
    cs.equate(a, b);
    cs.include(Effect::var(b), c);
    let sol = solve(&mut cs, &mut locs);
    assert!(sol.contains(&cs, &locs, b, l, KindMask::READ));
    assert!(sol.contains(&cs, &locs, c, l, KindMask::READ));
}

#[test]
fn long_conditional_cascade_is_incremental() {
    // A chain of N conditionals, each enabling the next: the incremental
    // engine must converge without quadratic blowup in rounds.
    const N: usize = 60;
    let (mut cs, mut locs) = setup();
    let ls: Vec<_> = (0..N + 1)
        .map(|i| locs.fresh(format!("l{i}"), Ty::Int))
        .collect();
    let v = cs.fresh_var("v");
    cs.include(Effect::atom(EffectKind::Write, ls[0]), v);
    let flags: Vec<_> = (0..N).map(|_| cs.fresh_flag()).collect();
    for i in 0..N {
        cs.conditional(
            Guard::LocIn {
                loc: ls[i],
                kinds: KindMask::WRITE,
                var: v,
            },
            Action {
                unify: vec![],
                include: vec![(Effect::atom(EffectKind::Write, ls[i + 1]), v)],
                flags: vec![flags[i]],
            },
        );
    }
    let sol = solve(&mut cs, &mut locs);
    assert_eq!(sol.fired, N, "every link in the cascade fires");
    for f in flags {
        assert!(sol.flag(f));
    }
    assert!(sol.contains(&cs, &locs, v, ls[N], KindMask::WRITE));
}

#[test]
fn unification_cascade_with_loc_vars() {
    // Conditionals unify a chain of locations; the LocVars registry must
    // keep the per-location ε variables extensionally equal throughout.
    let (mut cs, mut locs) = setup();
    let mut loc_vars = LocVars::new();
    let a = locs.fresh("a", Ty::Int);
    let b = locs.fresh("b", Ty::Int);
    let va = loc_vars.var_for(&mut cs, a);
    let vb = loc_vars.var_for(&mut cs, b);
    cs.include(Effect::atom(EffectKind::Mention, a), va);
    cs.include(Effect::atom(EffectKind::Mention, b), vb);

    let trig = cs.fresh_var("trigger");
    let tl = locs.fresh("t", Ty::Int);
    cs.include(Effect::atom(EffectKind::Read, tl), trig);
    let f = cs.fresh_flag();
    cs.conditional(
        Guard::LocIn {
            loc: tl,
            kinds: KindMask::READ,
            var: trig,
        },
        Action {
            unify: vec![(a, b)],
            include: vec![],
            flags: vec![f],
        },
    );
    let sol = solve_with(&mut cs, &mut locs, &mut loc_vars);
    assert!(sol.flag(f));
    assert!(locs.same(a, b));
    // Both ε variables now contain the merged class.
    let merged = locs.find(a);
    assert!(sol.contains(&cs, &locs, va, merged, KindMask::MENTION));
    assert!(sol.contains(&cs, &locs, vb, merged, KindMask::MENTION));
}

#[test]
fn merge_unlocks_an_intersection_gate() {
    // write(a) waits at a gate that only mentions b; unifying a = b via a
    // conditional must let it through incrementally.
    let (mut cs, mut locs) = setup();
    let a = locs.fresh("a", Ty::Int);
    let b = locs.fresh("b", Ty::Int);
    let eff = cs.fresh_var("eff");
    let vis = cs.fresh_var("vis");
    let out = cs.fresh_var("out");
    cs.include(Effect::atom(EffectKind::Write, a), eff);
    cs.include(Effect::atom(EffectKind::Mention, b), vis);
    cs.include(Effect::inter(Effect::var(eff), Effect::var(vis)), out);

    let f = cs.fresh_flag();
    cs.conditional(
        Guard::LocIn {
            loc: a,
            kinds: KindMask::WRITE,
            var: eff,
        },
        Action {
            unify: vec![(a, b)],
            include: vec![],
            flags: vec![f],
        },
    );
    let sol = solve(&mut cs, &mut locs);
    assert!(sol.flag(f));
    let merged = locs.find(a);
    assert!(
        sol.contains(&cs, &locs, out, merged, KindMask::WRITE),
        "the merge must re-check the gate"
    );
}

#[test]
fn checked_disinclusions_see_post_merge_classes() {
    let (mut cs, mut locs) = setup();
    let a = locs.fresh("a", Ty::Int);
    let b = locs.fresh("b", Ty::Int);
    let v = cs.fresh_var("v");
    cs.include(Effect::atom(EffectKind::Write, b), v);
    // The check watches `a`; a conditional later merges a into b's class.
    cs.check_not_in(a, KindMask::ACCESS, v, 42);
    let f = cs.fresh_flag();
    cs.conditional(
        Guard::LocIn {
            loc: b,
            kinds: KindMask::WRITE,
            var: v,
        },
        Action {
            unify: vec![(a, b)],
            include: vec![],
            flags: vec![f],
        },
    );
    let sol = solve(&mut cs, &mut locs);
    assert_eq!(sol.violations().len(), 1);
    assert_eq!(sol.violations()[0].tag, 42);
}

#[test]
fn large_flat_system_solves_fast() {
    // 20k inclusions over 5k variables: worklist propagation should be
    // effectively linear. (A timing assertion would flake; the real check
    // is that it terminates promptly under `cargo test`.)
    let (mut cs, mut locs) = setup();
    let ls: Vec<_> = (0..100)
        .map(|i| locs.fresh(format!("l{i}"), Ty::Int))
        .collect();
    let vars: Vec<_> = (0..5000).map(|i| cs.fresh_var(format!("v{i}"))).collect();
    for (i, &l) in ls.iter().enumerate() {
        cs.include(Effect::atom(EffectKind::Read, l), vars[i]);
    }
    for i in 100..5000 {
        cs.include(Effect::var(vars[i - 100]), vars[i]);
        cs.include(Effect::var(vars[i - 1]), vars[i]);
    }
    let sol = solve(&mut cs, &mut locs);
    // The last variable reaches every location.
    for &l in &ls {
        assert!(sol.contains(&cs, &locs, vars[4999], l, KindMask::READ));
    }
}
