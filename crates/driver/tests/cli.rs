//! End-to-end tests of the `localias` CLI binary.

use std::process::Command;

fn localias(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_localias"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("localias-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path
}

const FIG1: &str = r#"
lock locks[8];
extern void work();
void do_with_lock(lock *restrict l) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
void foo(int i) { do_with_lock(&locks[i]); }
"#;

#[test]
fn usage_without_args() {
    let (_, err, ok) = localias(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
}

#[test]
fn parse_pretty_prints() {
    let p = write_temp("fig1.mc", FIG1);
    let (out, _, ok) = localias(&["parse", p.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("lock* restrict l"), "{out}");
    assert!(out.contains("spin_lock"));
}

#[test]
fn check_reports_ok() {
    let p = write_temp("fig1b.mc", FIG1);
    let (out, _, ok) = localias(&["check", p.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("restrict l") && out.contains(": ok"), "{out}");
    assert!(out.contains("all annotations check"), "{out}");
}

#[test]
fn check_reports_rejection() {
    let p = write_temp(
        "bad.mc",
        "void f(int *q) { restrict p = q { *p = 1; *q = 2; } }",
    );
    let (out, _, ok) = localias(&["check", p.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("REJECTED"), "{out}");
}

#[test]
fn locks_modes() {
    let p = write_temp(
        "arr.mc",
        r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
        }
        "#,
    );
    let (out, _, ok) = localias(&["locks", p.to_str().unwrap(), "noconfine"]);
    assert!(ok);
    assert!(out.contains("1 of 2 lock sites"), "{out}");
    let (out, _, _) = localias(&["locks", p.to_str().unwrap(), "confine"]);
    assert!(out.contains("0 of 2 lock sites"), "{out}");
    let (_, err, ok) = localias(&["locks", p.to_str().unwrap(), "bogus"]);
    assert!(!ok);
    assert!(err.contains("unknown mode"));
}

#[test]
fn infer_lists_confines() {
    let p = write_temp(
        "inf.mc",
        r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
        }
        "#,
    );
    let (out, _, ok) = localias(&["infer", p.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("CONFINED"), "{out}");
}

#[test]
fn run_executes_and_reports_faults() {
    let p = write_temp(
        "buggy.mc",
        r#"
        lock mu;
        void f() {
            spin_lock(&mu);
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    let (out, _, ok) = localias(&["run", p.to_str().unwrap()]);
    assert!(ok, "{out}");
    assert!(out.contains("dynamic lock fault"), "{out}");

    let p = write_temp("clean.mc", FIG1);
    let (out, _, ok) = localias(&["run", p.to_str().unwrap(), "3"]);
    assert!(ok, "{out}");
    assert!(out.contains("no dynamic lock faults"), "{out}");
}

#[test]
fn experiment_flag_surface_is_validated() {
    // All of these fail during argument parsing, before any sweep runs.
    let (_, err, ok) = localias(&["experiment", "--cache"]);
    assert!(!ok);
    assert!(err.contains("--cache requires"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--cache", "d", "--no-cache"]);
    assert!(!ok);
    assert!(err.contains("mutually exclusive"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--no-cache", "--cache-shards", "4"]);
    assert!(!ok);
    assert!(err.contains("mutually exclusive"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--cache-shards", "0"]);
    assert!(!ok);
    assert!(err.contains("--cache-shards must be between"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown flag"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--jobs", "many"]);
    assert!(!ok);
    assert!(err.contains("bad thread count"), "{err}");

    let (_, err, ok) = localias(&["experiment", "notaseed"]);
    assert!(!ok);
    assert!(err.contains("bad seed"), "{err}");
}

#[test]
fn alias_backend_flag_surface_is_validated() {
    // An unknown backend fails fast and names the valid choices.
    let (_, err, ok) = localias(&["experiment", "--alias", "unification"]);
    assert!(!ok);
    assert!(err.contains("unknown alias backend"), "{err}");
    assert!(err.contains("steensgaard"), "{err}");
    assert!(err.contains("andersen"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--alias"]);
    assert!(!ok);
    assert!(err.contains("--alias requires"), "{err}");

    // The usage text documents the flag.
    let (_, err, _) = localias(&[]);
    assert!(err.contains("--alias"), "{err}");
}

#[test]
fn partition_flag_surface_is_validated() {
    // Strict slice-spec validation, rejected before any sweep runs.
    let (_, err, ok) = localias(&["experiment", "--partition", "2/2"]);
    assert!(!ok);
    assert!(err.contains("out of range"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--partition", "0/0"]);
    assert!(!ok);
    assert!(err.contains("at least 1"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--partition", "half"]);
    assert!(!ok);
    assert!(err.contains("bad partition spec"), "{err}");

    let (_, err, ok) = localias(&["experiment", "--modules", "0"]);
    assert!(!ok);
    assert!(err.contains("--modules must be at least 1"), "{err}");

    // Partitioned processes cooperate through the shared cache, so
    // --no-cache conflicts — in either flag order.
    for args in [
        &["experiment", "--partition", "0/2", "--no-cache"][..],
        &["experiment", "--no-cache", "--partition", "0/2"][..],
    ] {
        let (_, err, ok) = localias(args);
        assert!(!ok);
        assert!(err.contains("mutually exclusive"), "{args:?}: {err}");
    }
}

#[test]
fn bench_merge_usage_and_errors() {
    let (_, err, ok) = localias(&["bench-merge"]);
    assert!(!ok);
    assert!(err.contains("usage: localias bench-merge"), "{err}");

    let (_, err, ok) = localias(&["bench-merge", "/nonexistent/part0.json"]);
    assert!(!ok);
    assert!(err.contains("part0.json"), "{err}");

    let (_, err, ok) = localias(&["bench-merge", "a.json", "--frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown flag"), "{err}");
}

/// The ISSUE's multi-process acceptance test: two concurrent `localias
/// experiment --partition i/2` processes over one shared cache directory,
/// bench-merged, must yield exactly the module-result set of a
/// single-process sweep of the same corpus.
#[test]
fn two_process_partition_sweep_merges_to_the_single_process_results() {
    let dir = std::env::temp_dir().join("localias-cli-partition-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let (cache, p0, p1, merged, full) = (
        path("cache"),
        path("p0.json"),
        path("p1.json"),
        path("merged.json"),
        path("full.json"),
    );

    // Two partition processes run concurrently over the shared cache.
    let spawn = |idx: usize, out: &str| {
        Command::new(env!("CARGO_BIN_EXE_localias"))
            .args([
                "experiment",
                "7",
                "--modules",
                "60",
                "--partition",
                &format!("{idx}/2"),
                "--cache",
                &cache,
                "--bench-out",
                out,
                "--quiet",
            ])
            .spawn()
            .expect("binary spawns")
    };
    let (mut c0, mut c1) = (spawn(0, &p0), spawn(1, &p1));
    assert!(c0.wait().unwrap().success());
    assert!(c1.wait().unwrap().success());

    let (out, err, ok) = localias(&["bench-merge", &p0, &p1, "--out", &merged]);
    assert!(ok, "{err}");
    assert!(
        out.contains("merged 2 partitions (60 modules, seed 7)"),
        "{out}"
    );

    // The single-process reference: --partition 0/1 is the whole corpus
    // in one slice, so its artifact carries the full per-module rows.
    let (_, err, ok) = localias(&[
        "experiment",
        "7",
        "--modules",
        "60",
        "--partition",
        "0/1",
        "--cache",
        &path("cache-single"),
        "--bench-out",
        &full,
        "--quiet",
    ]);
    assert!(ok, "{err}");

    let merged_doc = localias_bench::json::parse(&std::fs::read_to_string(&merged).unwrap())
        .expect("merged artifact parses");
    let full_doc = localias_bench::json::parse(&std::fs::read_to_string(&full).unwrap())
        .expect("single-process artifact parses");
    assert_eq!(
        merged_doc.get("results").unwrap(),
        full_doc.get("results").unwrap(),
        "merged partitions must reproduce the single-process module-result set"
    );
    for key in ["errors", "spurious", "modules", "seed"] {
        assert_eq!(
            merged_doc.get(key).unwrap(),
            full_doc.get(key).unwrap(),
            "field {key:?} must agree"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_fails_cleanly() {
    let (_, err, ok) = localias(&["check", "/nonexistent/definitely.mc"]);
    assert!(!ok);
    assert!(err.contains("localias:"));
}

#[test]
fn diagnostics_carry_line_numbers() {
    let p = write_temp(
        "lines.mc",
        "lock locks[8];\nextern void work();\nvoid f(int i) {\n    spin_lock(&locks[i]);\n    work();\n    spin_unlock(&locks[i]);\n}\n",
    );
    let (out, _, ok) = localias(&["locks", p.to_str().unwrap(), "noconfine"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("(line 6:"),
        "the failing unlock is on line 6: {out}"
    );

    let p = write_temp(
        "lines2.mc",
        "void f(int *q) {\n    restrict p = q {\n        *p = 1;\n        *q = 2;\n    }\n}\n",
    );
    let (out, _, _) = localias(&["check", p.to_str().unwrap()]);
    assert!(out.contains("(line 2:"), "the restrict is on line 2: {out}");
}

/// A two-function module: `helper` wraps a lock pair, `caller` uses it.
/// Editing only `caller`'s body must leave `helper` cache-served.
const WATCH_BASE: &str = "lock locks[8];\nextern void work();\nvoid helper(int i) {\n    spin_lock(&locks[i]);\n    work();\n    spin_unlock(&locks[i]);\n}\nvoid caller(int i) { helper(i); }\n";

/// Same module with `caller`'s body edited (an extra call).
const WATCH_EDIT: &str = "lock locks[8];\nextern void work();\nvoid helper(int i) {\n    spin_lock(&locks[i]);\n    work();\n    spin_unlock(&locks[i]);\n}\nvoid caller(int i) { work(); helper(i); }\n";

#[test]
fn watch_single_iteration_verifies_and_exits() {
    let p = write_temp("watch1.mc", WATCH_BASE);
    let (out, err, ok) = localias(&[
        "watch",
        p.to_str().unwrap(),
        "--iterations",
        "1",
        "--verify",
    ]);
    assert!(ok, "{out}{err}");
    assert!(out.contains("[1] cold:"), "{out}");
    assert!(out.contains("verified: byte-identical"), "{out}");
}

#[test]
fn watch_rejects_unknown_flags() {
    let (_, err, ok) = localias(&["watch", "nosuch.mc", "--frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown flag"), "{err}");
}

#[test]
fn fuzz_smoke_is_clean_and_deterministic() {
    let dir = std::env::temp_dir().join("localias-cli-tests/fuzz-repro");
    let _ = std::fs::remove_dir_all(&dir);
    let args = [
        "fuzz",
        "--iterations",
        "60",
        "--seed",
        "42",
        "--stream",
        "--repro-dir",
    ];
    let mut with_dir: Vec<&str> = args.to_vec();
    let dir_s = dir.to_str().unwrap().to_string();
    with_dir.push(&dir_s);
    let (out, err, ok) = localias(&with_dir);
    assert!(ok, "clean checker must survive the smoke: {err}");
    assert!(out.contains("divergences: 0"), "{out}");
    assert!(
        out.contains("fuzz0 "),
        "--stream prints verdict lines: {out}"
    );
    let entries = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(entries, 0, "no repro modules on a clean run");
    // Byte-identical replay, seed-sensitive.
    let (out2, _, _) = localias(&with_dir);
    assert_eq!(out, out2);
    let (out3, _, ok3) = localias(&["fuzz", "--iterations", "60", "--seed", "7", "--stream"]);
    assert!(ok3);
    assert_ne!(out, out3);
}

#[test]
fn fuzz_rejects_bad_flags() {
    let (_, err, ok) = localias(&["fuzz", "--frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown fuzz option"), "{err}");
    let (_, err, ok) = localias(&["fuzz", "--iterations"]);
    assert!(!ok);
    assert!(err.contains("--iterations needs a value"), "{err}");
    let (_, err, ok) = localias(&["fuzz", "--seed", "notanumber"]);
    assert!(!ok);
    assert!(err.contains("bad --seed value"), "{err}");
}

#[test]
fn watch_picks_up_an_edit_and_rechecks_incrementally() {
    use std::io::Read as _;
    let p = write_temp("watch2.mc", WATCH_BASE);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_localias"))
        .args([
            "watch",
            p.to_str().unwrap(),
            "--iterations",
            "2",
            "--poll-ms",
            "25",
            "--verify",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    // Give the watcher time to do the cold pass and record the mtime,
    // then save an edit touching only `caller`.
    std::thread::sleep(std::time::Duration::from_millis(400));
    std::fs::write(&p, WATCH_EDIT).unwrap();
    let status = child.wait().expect("watch exits after 2 iterations");
    let mut out = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();
    assert!(status.success(), "{out}");
    assert!(out.contains("[1] cold:"), "{out}");
    assert!(out.contains("[2] incr:"), "{out}");
    // 2 functions × 3 modes = 6 slots; only `caller` re-checks (its
    // summary is unchanged, so the cone stops there).
    assert!(
        out.contains("rechecked 3/6 (3 hits)"),
        "editing one of two functions must leave the other cache-served: {out}"
    );
}
