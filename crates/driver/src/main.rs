//! `localias` — command-line interface to the local non-aliasing
//! analyses.
//!
//! ```text
//! localias parse   <file.mc>          # parse & pretty-print
//! localias check   <file.mc>          # check explicit restrict/confine annotations
//! localias infer   <file.mc>          # restrict + confine inference
//! localias locks   <file.mc> [mode]   # flow-sensitive lock checking
//! localias run     <file.mc> [arg]    # execute under the §3.2 semantics
//! localias watch   <file.mc> [--iterations N] [--poll-ms MS]
//!                    [--intra-jobs N] [--verify] [--quiet]
//!                                     # re-check incrementally on every save
//! localias corpus  <dir> [seed]       # dump the synthetic driver corpus
//! localias experiment [seed] [--jobs N] [--intra-jobs N]
//!                    [--cache DIR | --no-cache] [--cache-shards N]
//!                    [--modules N] [--partition I/N]
//!                    [--bench-out FILE] [--trace-out FILE]
//!                    [--trace-chrome FILE] [--profile] [--quiet]
//!                                     # run the full Section 7 experiment
//! localias bench-merge <part.json>... [--out FILE]
//!                                     # union per-partition bench reports
//! localias bench-diff <old.json> <new.json> [--threshold PCT] [--json FILE]
//!                                     # perf-regression gate over two artifacts
//! localias tracecheck <trace.jsonl> [--chrome OUT.json]
//!                                     # validate a localias-trace file
//! ```
//!
//! `experiment` keeps an incremental result cache (default
//! `.localias-cache/`): modules whose source is unchanged since the last
//! sweep are served from the store instead of being re-analyzed. The
//! store is sharded (`--cache-shards N` files, default 16) and persisted
//! merge-on-write under per-shard locks, so concurrent sweeps sharing a
//! cache directory never lose each other's entries.
//!
//! `--trace-out` writes a `localias-trace/v2` JSON-lines trace of the
//! run (per-phase spans + latency histograms + pipeline counters),
//! `--trace-chrome` a Chrome trace-event file of the same run, and
//! `--profile` prints per-phase time and latency-percentile tables to
//! stderr; all three also embed the trace in the `--bench-out` report's
//! `profile` block. Latency histograms are always collected — every
//! `--bench-out` report carries a `hist` block with exact
//! p50/p90/p95/p99 percentiles. `--quiet` silences informational
//! diagnostics (warnings still print); `LOCALIAS_LOG` overrides the
//! level (`off|error|warn|info|debug`).
//!
//! Modes for `locks`: `noconfine` (default), `confine`, `allstrong`.

use localias_ast::span::LineMap;
use localias_ast::{parse_module, pretty, Module, NodeId};
use localias_cqual::{check_locks, IncrementalSession, Mode, MODES};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Formats `node`'s position as `line:col`, when known.
fn at(m: &Module, lines: &LineMap, node: NodeId) -> String {
    let span = m.span_of(node);
    if span == localias_ast::Span::DUMMY {
        return String::new();
    }
    let (line, col) = lines.location(span.lo);
    format!(" (line {line}:{col})")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("parse") => cmd_parse(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("locks") => cmd_locks(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("bench-merge") => cmd_bench_merge(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("tracecheck") => cmd_tracecheck(&args[1..]),
        _ => {
            eprintln!(
                "usage: localias <parse|check|infer|locks|run|fuzz|watch|corpus|experiment|bench-merge|bench-diff|tracecheck> [args]\n\
                 \n\
                 parse   <file.mc>          parse and pretty-print a module\n\
                 check   <file.mc>          check explicit restrict/confine annotations\n\
                 infer   <file.mc> [--general]  run restrict and confine inference\n\
                 locks   <file.mc> [mode]   lock checking (noconfine|confine|allstrong)\n\
                 run     <file.mc> [arg]    execute every function (restrict = copy-and-poison)\n\
                 fuzz    [--iterations N] [--seed S] [--fuel N] [--repro-dir DIR]\n\
                 \x20                          [--no-shrink] [--stream]\n\
                 \x20                          differential soundness fuzzing: generated modules\n\
                 \x20                          run through the interpreter (ground truth) and all\n\
                 \x20                          three checker modes under both alias backends; any\n\
                 \x20                          missed real fault fails the run, shrunk to a minimal\n\
                 \x20                          repro module under --repro-dir (--stream prints the\n\
                 \x20                          per-module verdict lines)\n\
                 watch   <file.mc> [--iterations N] [--poll-ms MS] [--intra-jobs N]\n\
                 \x20                          [--verify] [--quiet]\n\
                 \x20                          re-run the three lock checks on every save,\n\
                 \x20                          re-checking only edited functions plus their\n\
                 \x20                          summary-change cone (--verify cross-checks every\n\
                 \x20                          report against from-scratch analysis; --iterations\n\
                 \x20                          exits after N analyses, for scripting)\n\
                 corpus  <dir> [seed]       write the synthetic driver corpus to <dir>\n\
                 experiment [seed] [--jobs N] [--intra-jobs N] [--cache DIR | --no-cache]\n\
                 \x20                          [--cache-shards N] [--modules N] [--partition I/N]\n\
                 \x20                          [--alias steensgaard|andersen]\n\
                 \x20                          [--bench-out FILE] [--trace-out FILE]\n\
                 \x20                          [--trace-chrome FILE] [--profile] [--quiet]\n\
                 \x20                          run the full Section 7 experiment in parallel,\n\
                 \x20                          incrementally via the sharded result cache\n\
                 \x20                          (default .localias-cache/, 16 shards; only\n\
                 \x20                          changed modules re-analyze, and concurrent\n\
                 \x20                          sweeps sharing the dir merge instead of clobber).\n\
                 \x20                          --modules N streams an N-module corpus instead\n\
                 \x20                          of the paper's 589; --partition I/N sweeps only\n\
                 \x20                          slice I of N (run one process per slice over a\n\
                 \x20                          shared cache, then bench-merge the reports);\n\
                 \x20                          --alias selects the alias backend (steensgaard\n\
                 \x20                          is the paper's default; andersen refines the\n\
                 \x20                          frozen classes and keys its own cache domain)\n\
                 bench-merge <part.json>... [--out FILE]\n\
                 \x20                          union per-partition --bench-out reports from a\n\
                 \x20                          --partition i/N sweep into one artifact equal to\n\
                 \x20                          a single-process sweep (stdout unless --out)\n\
                 bench-diff <OLD.json> <NEW.json> [--threshold PCT] [--json FILE]\n\
                 \x20                          compare two bench artifacts of the same schema\n\
                 \x20                          family metric by metric (throughput, phase times,\n\
                 \x20                          histogram percentiles, cache hit and FP rates);\n\
                 \x20                          exits non-zero when any metric regresses past the\n\
                 \x20                          threshold (default 10%)\n\
                 tracecheck <trace.jsonl> [--chrome OUT.json]\n\
                 \x20                          validate a localias-trace/v1|v2 JSON-lines file\n\
                 \x20                          (as written by --trace-out), summarize it, and\n\
                 \x20                          optionally convert it to a Chrome trace-event\n\
                 \x20                          file (chrome://tracing, Perfetto)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("localias: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load(args: &[String]) -> Result<(String, Module, LineMap), String> {
    let path = args.first().ok_or("missing input file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("module")
        .to_string();
    let module = parse_module(&name, &src).map_err(|e| format!("{path}: {e}"))?;
    let lines = LineMap::new(&src);
    Ok((name, module, lines))
}

fn cmd_parse(args: &[String]) -> Result<String, String> {
    let (_, m, _) = load(args)?;
    Ok(pretty::print_module(&m))
}

fn cmd_check(args: &[String]) -> Result<String, String> {
    let (name, m, lines) = load(args)?;
    let a = localias_core::check(&m);
    let mut out = String::new();
    let _ = writeln!(out, "module {name}:");
    for e in &a.state.mismatches {
        let _ = writeln!(out, "  type error: {e}");
    }
    for d in &a.diags {
        let _ = writeln!(out, "  error: {d}");
    }
    for r in &a.restricts {
        let pos = at(&m, &lines, r.at);
        if r.ok() {
            let _ = writeln!(out, "  restrict {}{pos}: ok", r.name);
        } else {
            for reason in &r.reasons {
                let _ = writeln!(out, "  restrict {}{pos}: REJECTED — {reason}", r.name);
            }
        }
    }
    for c in a.confines.iter().filter(|c| c.explicit) {
        let pos = match c.site {
            localias_core::ConfineSite::Stmt(id) => at(&m, &lines, id),
            localias_core::ConfineSite::Range { block, .. } => at(&m, &lines, block),
        };
        if c.ok() {
            let _ = writeln!(out, "  confine {}{pos}: ok", c.expr);
        } else {
            for reason in &c.reasons {
                let _ = writeln!(out, "  confine {}{pos}: REJECTED — {reason}", c.expr);
            }
        }
    }
    if a.clean() {
        let _ = writeln!(out, "  all annotations check");
    }
    Ok(out)
}

fn cmd_infer(args: &[String]) -> Result<String, String> {
    let (name, m, _lines) = load(args)?;
    let general = args.iter().any(|a| a == "--general");
    let mut out = String::new();
    let _ = writeln!(out, "module {name}:");

    let ra = localias_core::infer_restricts(&m);
    for c in &ra.candidates {
        let verdict = if c.restricted { "restrict" } else { "let" };
        let _ = writeln!(out, "  binding {} ({}): {verdict}", c.name, c.at);
    }

    let inf = if general {
        localias_core::infer_confines_general(&m)
    } else {
        localias_core::infer_confines(&m)
    };
    for (i, cand) in inf.candidates.iter().enumerate() {
        let chosen = inf.chosen.contains(&i);
        let outcome = &inf.analysis.confines[i];
        let verdict = if chosen {
            "CONFINED (outermost)"
        } else if outcome.ok() {
            "confinable (inner)"
        } else {
            "rejected"
        };
        let _ = writeln!(
            out,
            "  confine? {} @ block {} stmts {}..={}: {verdict}",
            cand.key, cand.block, cand.start, cand.end
        );
        for reason in &outcome.reasons {
            let _ = writeln!(out, "      reason: {reason}");
        }
    }
    Ok(out)
}

fn cmd_locks(args: &[String]) -> Result<String, String> {
    let (name, m, lines) = load(args)?;
    let mode = match args.get(1).map(String::as_str) {
        None | Some("noconfine") => Mode::NoConfine,
        Some("confine") => Mode::Confine,
        Some("allstrong") => Mode::AllStrong,
        Some(other) => return Err(format!("unknown mode `{other}`")),
    };
    let r = check_locks(&m, mode);
    let mut out = String::new();
    let _ = writeln!(out, "module {name} ({mode:?}): {r}");
    for e in &r.errors {
        let pos = at(&m, &lines, e.site);
        let _ = writeln!(out, "  {e}{pos}");
    }
    Ok(out)
}

fn cmd_run(args: &[String]) -> Result<String, String> {
    let (name, m, _lines) = load(args)?;
    let arg: i64 = match args.get(1) {
        Some(s) => s.parse().map_err(|_| format!("bad argument `{s}`"))?,
        None => 1,
    };
    let mut out = String::new();
    let mut interp = localias_interp::Interp::new(&m, 1_000_000);
    match interp.run_all(arg) {
        Ok(()) => {
            let _ = writeln!(out, "module {name}: ran all functions with arg {arg}");
        }
        Err(e) => {
            let _ = writeln!(out, "module {name}: runtime error: {e}");
        }
    }
    for fault in &interp.lock_faults {
        let _ = writeln!(out, "  dynamic lock fault: {fault:?}");
    }
    if interp.lock_faults.is_empty() {
        let _ = writeln!(out, "  no dynamic lock faults");
    }
    Ok(out)
}

/// `localias fuzz` — differential soundness fuzzing with the
/// interpreter as oracle (see `localias_bench::fuzz`).
///
/// Exits non-zero if any generated module exhibits a soundness
/// divergence: a dynamic lock fault the checker missed under some
/// mode × backend, or a Theorem-1 restrict violation in a check-clean
/// module. Divergent modules are shrunk to 1-minimal counterexamples
/// and written under `--repro-dir` (so an empty repro dir after a run
/// is the machine-checkable "all clean" signal `scripts/check.sh`
/// gates on).
fn cmd_fuzz(args: &[String]) -> Result<String, String> {
    const USAGE: &str = "usage: localias fuzz [--iterations N] [--seed S] \
         [--fuel N] [--repro-dir DIR] [--no-shrink] [--stream]";
    let mut cfg = localias_bench::fuzz::FuzzConfig::default();
    let mut repro_dir: Option<String> = None;
    let mut stream = false;
    let mut i = 0;
    let num = |args: &[String], i: usize, what: &str| -> Result<u64, String> {
        args.get(i + 1)
            .ok_or(format!("{what} needs a value\n{USAGE}"))?
            .parse::<u64>()
            .map_err(|_| format!("bad {what} value\n{USAGE}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--iterations" => {
                cfg.iterations = num(args, i, "--iterations")?;
                i += 2;
            }
            "--seed" => {
                cfg.seed = num(args, i, "--seed")?;
                i += 2;
            }
            "--fuel" => {
                cfg.fuel = num(args, i, "--fuel")?;
                i += 2;
            }
            "--repro-dir" => {
                repro_dir = Some(
                    args.get(i + 1)
                        .ok_or(format!("--repro-dir needs a value\n{USAGE}"))?
                        .clone(),
                );
                i += 2;
            }
            "--no-shrink" => {
                cfg.shrink = false;
                i += 1;
            }
            "--stream" => {
                stream = true;
                i += 1;
            }
            other => return Err(format!("unknown fuzz option `{other}`\n{USAGE}")),
        }
    }
    let report = localias_bench::fuzz::run_fuzz(&cfg);
    if let Some(dir) = &repro_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
        for d in &report.divergences {
            let path = format!("{dir}/{}_{}.mc", d.module, d.kind.name());
            let mut body = format!(
                "// {} divergence: entry {} ({})\n// replay: localias fuzz --seed {} \
                 --iterations {} (module index {})\n",
                d.kind.name(),
                d.entry,
                d.detail,
                cfg.seed,
                d.index + 1,
                d.index,
            );
            body.push_str(d.shrunk.as_deref().unwrap_or(&d.source));
            std::fs::write(&path, body).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    let mut out = String::new();
    if stream {
        out.push_str(&report.stream);
    }
    let _ = write!(out, "seed {}: {}", cfg.seed, report.summary());
    if report.clean() {
        Ok(out)
    } else {
        print!("{out}");
        let wrote = match &repro_dir {
            Some(dir) => format!("; repro modules written under {dir}/"),
            None => String::new(),
        };
        Err(format!(
            "fuzz: {} soundness divergence(s){wrote}",
            report.divergences.len()
        ))
    }
}

/// `localias watch FILE` — an edit→report loop over one module.
///
/// Holds a [`IncrementalSession`], re-analyzing the file whenever its
/// mtime or length changes. Each analysis prints one line: the
/// per-mode error counts and what the incremental engine did (how many
/// function×mode slots were re-checked vs served from the function
/// cache). `--verify` additionally re-checks from scratch each time and
/// fails loudly if the incremental reports ever diverge — the
/// byte-identity contract, enforced live. `--iterations N` exits after
/// N analyses (the first, cold one included), which is how scripts and
/// tests drive the loop; without it the command polls until killed.
fn cmd_watch(args: &[String]) -> Result<String, String> {
    const USAGE: &str = "usage: localias watch <file.mc> [--iterations N] \
         [--poll-ms MS] [--intra-jobs N] [--verify] [--quiet]";
    let mut path: Option<String> = None;
    let mut iterations: Option<u64> = None;
    let mut poll_ms: u64 = 200;
    let mut intra_jobs: usize = 1;
    let mut verify = false;
    let mut quiet = false;
    let mut it = args.iter();
    let parse_num = |flag: &str, val: Option<&String>| -> Result<u64, String> {
        let val = val.ok_or_else(|| format!("{flag} requires a number"))?;
        val.parse()
            .map_err(|_| format!("bad count `{val}` for {flag}"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iterations" => iterations = Some(parse_num(a, it.next())?),
            "--poll-ms" => poll_ms = parse_num(a, it.next())?.max(1),
            "--intra-jobs" => intra_jobs = parse_num(a, it.next())? as usize,
            "--verify" => verify = true,
            "--quiet" => quiet = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`\n{USAGE}")),
        }
    }
    let path = path.ok_or(USAGE)?;
    let name = std::path::Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("module")
        .to_string();

    let fingerprint = |p: &str| -> Option<(std::time::SystemTime, u64)> {
        let meta = std::fs::metadata(p).ok()?;
        Some((meta.modified().ok()?, meta.len()))
    };

    let mut session = IncrementalSession::new(&name, intra_jobs);
    let max_iters = iterations.unwrap_or(u64::MAX);
    let mut done = 0u64;
    let mut last_fp = fingerprint(&path);
    while done < max_iters {
        if done > 0 {
            // Block until the file visibly changes (mtime or length).
            loop {
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
                let cur = fingerprint(&path);
                if cur != last_fp {
                    last_fp = cur;
                    break;
                }
            }
        }
        done += 1;
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let t0 = std::time::Instant::now();
        let out = match session.analyze(&src) {
            Ok(out) => out,
            Err(e) => {
                // A half-saved file is normal in a watch loop: report and
                // keep polling (the session state is untouched).
                println!("[{done}] parse error: {e}");
                continue;
            }
        };
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let s = &out.stats;
        let label = if s.module_hit {
            "no-op"
        } else if s.cold {
            "cold"
        } else if s.full_fallback {
            "full"
        } else {
            "incr"
        };
        let counts: Vec<String> = MODES
            .iter()
            .zip(&out.reports)
            .map(|(m, r)| format!("{m:?} {}", r.error_count()))
            .collect();
        if s.module_hit {
            println!(
                "[{done}] {label}: {} — source unchanged, {ms:.1} ms",
                counts.join(", ")
            );
        } else {
            println!(
                "[{done}] {label}: {} — rechecked {}/{} ({} hits), {ms:.1} ms",
                counts.join(", "),
                s.rechecked,
                s.slots,
                s.hits,
            );
        }
        if !quiet {
            for (mode, report) in MODES.iter().zip(&out.reports) {
                for e in &report.errors {
                    println!("    [{mode:?}] {e}");
                }
            }
        }
        if verify {
            let m = parse_module(&name, &src).map_err(|e| format!("{path}: {e}"))?;
            let want = MODES.map(|mode| check_locks(&m, mode));
            if out.reports != want {
                return Err(format!(
                    "watch: iteration {done}: incremental reports diverge from \
                     from-scratch checking — this is a bug"
                ));
            }
            if !quiet {
                println!("    verified: byte-identical to from-scratch checking");
            }
        }
    }
    Ok(String::new())
}

fn cmd_corpus(args: &[String]) -> Result<String, String> {
    let dir = args.first().ok_or("missing output directory")?;
    let seed = match args.get(1) {
        Some(s) => s.parse().map_err(|_| format!("bad seed `{s}`"))?,
        None => localias_corpus::DEFAULT_SEED,
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let corpus = localias_corpus::generate(seed);
    for m in &corpus {
        let path = format!("{dir}/{}.mc", m.name);
        std::fs::write(&path, &m.source).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(format!("wrote {} modules to {dir}\n", corpus.len()))
}

fn cmd_experiment(args: &[String]) -> Result<String, String> {
    let opts = localias_bench::CliOpts::parse(args.iter().cloned())?;
    localias_bench::init_obs(&opts);
    let seed = opts.seed_or_default();

    let stream = match opts.modules {
        Some(n) => localias_bench::CorpusStream::new(seed, n),
        None => localias_bench::CorpusStream::paper(seed),
    };
    let range = match opts.partition {
        Some((index, count)) => stream.partition(index, count),
        None => 0..stream.len(),
    };
    let (results, mut bench) = localias_bench::measure_stream_with_cache(
        &stream,
        range,
        opts.jobs,
        opts.intra_jobs,
        opts.alias,
        &opts.cache,
    );
    if let Some((index, count)) = opts.partition {
        // Partition artifacts carry their per-module rows so bench-merge
        // can reassemble the full sweep without re-analyzing anything.
        bench.partition = Some(localias_bench::PartitionInfo {
            index,
            count,
            total: stream.len(),
        });
        bench.results = Some(results.clone());
    }
    let report = localias_bench::finish_obs(&opts)?;
    bench.profile = report.trace;
    bench.hist = report.hists;
    let (mut clean, mut real, mut full, mut partial) = (0, 0, 0, 0);
    for r in &results {
        if r.no_confine == 0 {
            clean += 1;
        } else if r.no_confine == r.all_strong {
            real += 1;
        } else if r.confine == r.all_strong {
            full += 1;
        } else {
            partial += 1;
        }
    }

    let mut out = String::new();
    match opts.partition {
        Some((index, count)) => {
            let _ = writeln!(
                out,
                "{} modules — partition {index}/{count} of {} (seed {seed}):",
                results.len(),
                stream.len()
            );
        }
        None => {
            let _ = writeln!(out, "{} modules (seed {seed}):", results.len());
        }
    }
    let _ = writeln!(out, "  error-free without confine:        {clean}");
    let _ = writeln!(out, "  errors unrelated to weak updates:  {real}");
    let _ = writeln!(out, "  fully recovered by confine:        {full}");
    let _ = writeln!(out, "  partially recovered (Figure 7):    {partial}");
    if bench.potential > 0 {
        let _ = writeln!(
            out,
            "  spurious errors: {} of {} eliminated ({:.0}%)",
            bench.eliminated,
            bench.potential,
            100.0 * bench.eliminated as f64 / bench.potential as f64
        );
    }
    let _ = writeln!(
        out,
        "  analyzed in {:.2?} on {} thread{} ({:.0} modules/s)",
        bench.wall,
        bench.threads,
        if bench.threads == 1 { "" } else { "s" },
        bench.modules_per_sec()
    );
    if let Some(c) = &bench.cache {
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses (dir {}, load {:.2?}, store {:.2?})",
            c.hits, c.misses, c.dir, c.load, c.store
        );
    }
    if let Some(path) = opts.bench_out {
        std::fs::write(&path, bench.to_json()).map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "  wrote {path}");
    }
    if let Some(path) = &opts.trace_out {
        let _ = writeln!(out, "  wrote {path}");
    }
    if let Some(path) = &opts.trace_chrome {
        let _ = writeln!(out, "  wrote {path}");
    }
    Ok(out)
}

/// `localias bench-diff OLD.json NEW.json` — the perf-regression gate.
///
/// Exits 0 when no metric moved past the threshold in its worse
/// direction, 1 on any regression (so scripts can gate on it), and 2 on
/// usage or I/O errors. `--json FILE` additionally writes the
/// machine-readable `localias-bench-diff/v1` report.
fn cmd_bench_diff(args: &[String]) -> Result<String, String> {
    const USAGE: &str = "usage: localias bench-diff <OLD.json> <NEW.json> \
         [--threshold PCT] [--json FILE]";
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = localias_bench::DEFAULT_THRESHOLD_PCT;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let val = it
                    .next()
                    .ok_or(format!("--threshold requires a percent\n{USAGE}"))?;
                threshold = val
                    .trim_end_matches('%')
                    .parse()
                    .map_err(|_| format!("bad threshold `{val}`\n{USAGE}"))?;
            }
            "--json" => {
                json_out = Some(
                    it.next()
                        .ok_or(format!("--json requires a file path\n{USAGE}"))?
                        .clone(),
                );
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(format!("expected exactly two artifacts\n{USAGE}"));
    };
    let old_text = std::fs::read_to_string(old_path).map_err(|e| format!("{old_path}: {e}"))?;
    let new_text = std::fs::read_to_string(new_path).map_err(|e| format!("{new_path}: {e}"))?;
    let report = localias_bench::diff_benches(&old_text, &new_text, threshold)?;
    if let Some(path) = json_out {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    print!("{}", report.render_table());
    if report.regressions().is_empty() {
        Ok(String::new())
    } else {
        // The table already names the regressed metrics; exit non-zero
        // through the shared error path with a one-line verdict.
        Err(format!(
            "bench-diff: {} metric(s) regressed past {threshold}% ({old_path} -> {new_path})",
            report.regressions().len()
        ))
    }
}

fn cmd_bench_merge(args: &[String]) -> Result<String, String> {
    let mut inputs: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" | "-o" => {
                if out_path.is_some() {
                    return Err("--out given more than once".into());
                }
                out_path = Some(it.next().ok_or("--out requires a file path")?.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => inputs.push(path.to_string()),
        }
    }
    if inputs.is_empty() {
        return Err("usage: localias bench-merge <part.json>... [--out FILE] — \
             give one --bench-out report per --partition i/N process"
            .into());
    }
    let docs = inputs
        .iter()
        .map(|path| {
            std::fs::read_to_string(path)
                .map(|text| (path.clone(), text))
                .map_err(|e| format!("{path}: {e}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let merged = localias_bench::merge_partitions(&docs)?;
    let rendered = merged.to_json();
    let mut out = String::new();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(
                out,
                "merged {} partitions ({} modules, seed {}) into {path}",
                inputs.len(),
                merged.modules,
                merged.seed
            );
        }
        None => out.push_str(&rendered),
    }
    Ok(out)
}

/// `localias tracecheck FILE [--chrome OUT.json]` — validates a
/// `localias-trace/v1|v2` JSON-lines file; `--chrome` additionally
/// converts it to a Chrome trace-event file (load via
/// `chrome://tracing` or Perfetto).
fn cmd_tracecheck(args: &[String]) -> Result<String, String> {
    const USAGE: &str = "usage: localias tracecheck <trace.jsonl> [--chrome OUT.json]";
    let mut path: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => {
                chrome_out = Some(
                    it.next()
                        .ok_or(format!("--chrome requires a file path\n{USAGE}"))?
                        .clone(),
                );
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`\n{USAGE}")),
            p if path.is_none() => path = Some(p.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`\n{USAGE}")),
        }
    }
    let path = path.ok_or(format!("missing trace file\n{USAGE}"))?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let summary = localias_obs::validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: valid {} ({} span path{}, {} histogram{}, {} counter{})",
        localias_obs::SCHEMA,
        summary.spans,
        if summary.spans == 1 { "" } else { "s" },
        summary.hists.len(),
        if summary.hists.len() == 1 { "" } else { "s" },
        summary.counters.len(),
        if summary.counters.len() == 1 { "" } else { "s" },
    );
    for h in &summary.hists {
        let _ = writeln!(
            out,
            "  {} = {} samples, p50 {}, p99 {}",
            h.name,
            h.count,
            localias_obs::fmt_ns(h.percentile(50)),
            localias_obs::fmt_ns(h.percentile(99)),
        );
    }
    for (name, value) in &summary.counters {
        let _ = writeln!(out, "  {name} = {value}");
    }
    if let Some(chrome_path) = chrome_out {
        let chrome =
            localias_obs::chrome_trace(&summary.span_rows, &summary.counters, &summary.hists);
        localias_bench::json::parse(&chrome)
            .map_err(|e| format!("generated chrome trace is not valid JSON: {e}"))?;
        std::fs::write(&chrome_path, chrome).map_err(|e| format!("{chrome_path}: {e}"))?;
        let _ = writeln!(out, "  wrote {chrome_path}");
    }
    Ok(out)
}
