//! Programmatic AST construction.
//!
//! [`Builder`] allocates [`NodeId`]s and provides concise constructors for
//! every AST form; the driver-corpus generator and many tests build
//! programs with it instead of formatting and re-parsing source text.
//!
//! # Example
//!
//! ```
//! use localias_ast::builder::Builder;
//! use localias_ast::TypeExpr;
//!
//! let mut b = Builder::new("demo");
//! b.global("locks", TypeExpr::array(TypeExpr::Lock, 8));
//! let body = {
//!     let locks = b.var("locks");
//!     let i = b.var("i");
//!     let elem = b.index(locks, i);
//!     let arg = b.addr_of(elem);
//!     let call = b.call("spin_lock", vec![arg]);
//!     let lock = b.expr_stmt(call);
//!     b.block(vec![lock])
//! };
//! b.fun("f", vec![("i", TypeExpr::Int)], TypeExpr::Void, body);
//! let m = b.finish();
//! assert!(m.function("f").is_some());
//! ```

use crate::ast::*;
use crate::intern::Interner;
use crate::span::Span;

/// An AST builder that owns the node-id allocator for one module.
#[derive(Debug)]
pub struct Builder {
    name: String,
    items: Vec<Item>,
    next_id: u32,
    /// Per-module symbol arena, mirroring the parser's (see
    /// [`crate::intern`]): repeated names share one allocation.
    interner: Interner,
}

impl Builder {
    /// Starts building a module called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            name: name.into(),
            items: Vec::new(),
            next_id: 0,
            interner: Interner::new(),
        }
    }

    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn ident(&mut self, name: impl AsRef<str>) -> Ident {
        Ident {
            name: self.interner.intern(name.as_ref()),
            span: Span::DUMMY,
        }
    }

    fn expr(&mut self, kind: ExprKind) -> Expr {
        Expr {
            id: self.id(),
            kind,
            span: Span::DUMMY,
        }
    }

    fn stmt(&mut self, kind: StmtKind) -> Stmt {
        Stmt {
            id: self.id(),
            kind,
            span: Span::DUMMY,
        }
    }

    // ---- Expressions -----------------------------------------------------

    /// Integer literal `n`.
    pub fn int(&mut self, n: i64) -> Expr {
        self.expr(ExprKind::Int(n))
    }

    /// Variable reference `x`.
    pub fn var(&mut self, name: impl AsRef<str>) -> Expr {
        let id = self.ident(name);
        self.expr(ExprKind::Var(id))
    }

    /// Dereference `*e`.
    pub fn deref(&mut self, e: Expr) -> Expr {
        self.expr(ExprKind::Unary(UnOp::Deref, Box::new(e)))
    }

    /// Address-of `&e`.
    pub fn addr_of(&mut self, e: Expr) -> Expr {
        self.expr(ExprKind::Unary(UnOp::AddrOf, Box::new(e)))
    }

    /// Binary operation `a op b`.
    pub fn binary(&mut self, op: BinOp, a: Expr, b: Expr) -> Expr {
        self.expr(ExprKind::Binary(op, Box::new(a), Box::new(b)))
    }

    /// Assignment `a = b`.
    pub fn assign(&mut self, a: Expr, b: Expr) -> Expr {
        self.expr(ExprKind::Assign(Box::new(a), Box::new(b)))
    }

    /// Call `f(args)`.
    pub fn call(&mut self, f: impl AsRef<str>, args: Vec<Expr>) -> Expr {
        let id = self.ident(f);
        self.expr(ExprKind::Call(id, args))
    }

    /// Index `a[i]`.
    pub fn index(&mut self, a: Expr, i: Expr) -> Expr {
        self.expr(ExprKind::Index(Box::new(a), Box::new(i)))
    }

    /// Field access `a.f`.
    pub fn field(&mut self, a: Expr, f: impl AsRef<str>) -> Expr {
        let id = self.ident(f);
        self.expr(ExprKind::Field(Box::new(a), id))
    }

    /// Pointer field access `a->f`.
    pub fn arrow(&mut self, a: Expr, f: impl AsRef<str>) -> Expr {
        let id = self.ident(f);
        self.expr(ExprKind::Arrow(Box::new(a), id))
    }

    /// Allocation `new e`.
    pub fn new_expr(&mut self, e: Expr) -> Expr {
        self.expr(ExprKind::New(Box::new(e)))
    }

    /// Cast `(ty) e`.
    pub fn cast(&mut self, ty: TypeExpr, e: Expr) -> Expr {
        self.expr(ExprKind::Cast(ty, Box::new(e)))
    }

    // ---- Statements ------------------------------------------------------

    /// Expression statement `e;`.
    pub fn expr_stmt(&mut self, e: Expr) -> Stmt {
        self.stmt(StmtKind::Expr(e))
    }

    /// Declaration `ty name = init;` with [`BindingKind::Let`].
    pub fn decl(&mut self, name: impl AsRef<str>, ty: TypeExpr, init: Option<Expr>) -> Stmt {
        let name = self.ident(name);
        self.stmt(StmtKind::Decl {
            binding: BindingKind::Let,
            ty,
            name,
            init,
        })
    }

    /// Restrict-qualified declaration `restrict ty name = init;`.
    pub fn restrict_decl(&mut self, name: impl AsRef<str>, ty: TypeExpr, init: Expr) -> Stmt {
        let name = self.ident(name);
        self.stmt(StmtKind::Decl {
            binding: BindingKind::Restrict,
            ty,
            name,
            init: Some(init),
        })
    }

    /// Scoped restrict `restrict name = init { body }`.
    pub fn restrict_stmt(&mut self, name: impl AsRef<str>, init: Expr, body: Block) -> Stmt {
        let name = self.ident(name);
        self.stmt(StmtKind::Restrict { name, init, body })
    }

    /// Confine `confine (expr) { body }`.
    pub fn confine_stmt(&mut self, expr: Expr, body: Block) -> Stmt {
        self.stmt(StmtKind::Confine { expr, body })
    }

    /// Conditional `if (cond) { then } else { els }`.
    pub fn if_stmt(&mut self, cond: Expr, then_blk: Block, else_blk: Option<Block>) -> Stmt {
        self.stmt(StmtKind::If {
            cond,
            then_blk,
            else_blk,
        })
    }

    /// Loop `while (cond) { body }`.
    pub fn while_stmt(&mut self, cond: Expr, body: Block) -> Stmt {
        self.stmt(StmtKind::While {
            cond,
            body,
            step: None,
        })
    }

    /// Stepped loop `for (; cond; step) { body }`.
    pub fn for_stmt(&mut self, cond: Expr, step: Expr, body: Block) -> Stmt {
        self.stmt(StmtKind::While {
            cond,
            body,
            step: Some(step),
        })
    }

    /// `return e?;`
    pub fn ret(&mut self, e: Option<Expr>) -> Stmt {
        self.stmt(StmtKind::Return(e))
    }

    /// Nested block statement.
    pub fn block_stmt(&mut self, b: Block) -> Stmt {
        self.stmt(StmtKind::Block(b))
    }

    /// A block of statements.
    pub fn block(&mut self, stmts: Vec<Stmt>) -> Block {
        Block {
            id: self.id(),
            stmts,
            span: Span::DUMMY,
        }
    }

    // ---- Items -----------------------------------------------------------

    /// Adds a global variable.
    pub fn global(&mut self, name: impl AsRef<str>, ty: TypeExpr) {
        let g = Global {
            id: self.id(),
            name: self.ident(name),
            ty,
            span: Span::DUMMY,
        };
        self.items.push(Item {
            kind: ItemKind::Global(g),
        });
    }

    /// Adds a struct definition.
    pub fn struct_def(&mut self, name: impl AsRef<str>, fields: Vec<(&str, TypeExpr)>) {
        let name = self.ident(name);
        let s = StructDef {
            id: self.id(),
            name,
            fields: fields
                .into_iter()
                .map(|(n, t)| {
                    (
                        Ident {
                            name: self.interner.intern(n),
                            span: Span::DUMMY,
                        },
                        t,
                    )
                })
                .collect(),
            span: Span::DUMMY,
        };
        self.items.push(Item {
            kind: ItemKind::Struct(s),
        });
    }

    /// Adds a function definition with non-restrict parameters.
    pub fn fun(
        &mut self,
        name: impl AsRef<str>,
        params: Vec<(&str, TypeExpr)>,
        ret: TypeExpr,
        body: Block,
    ) {
        let params = params
            .into_iter()
            .map(|(n, t)| Param {
                name: self.ident(n),
                ty: t,
                restrict: false,
            })
            .collect();
        self.fun_with_params(name, params, ret, body);
    }

    /// Adds a function definition with explicit [`Param`]s (allows
    /// `restrict`-qualified parameters).
    pub fn fun_with_params(
        &mut self,
        name: impl AsRef<str>,
        params: Vec<Param>,
        ret: TypeExpr,
        body: Block,
    ) {
        let name = self.ident(name);
        let f = FunDef {
            id: self.id(),
            name,
            params,
            ret,
            body,
            span: Span::DUMMY,
        };
        self.items.push(Item {
            kind: ItemKind::Fun(f),
        });
    }

    /// Adds an extern declaration.
    pub fn extern_fun(
        &mut self,
        name: impl AsRef<str>,
        params: Vec<(&str, TypeExpr)>,
        ret: TypeExpr,
    ) {
        let name = self.ident(name);
        let e = ExternDef {
            id: self.id(),
            name,
            params: params
                .into_iter()
                .map(|(n, t)| Param {
                    name: Ident {
                        name: self.interner.intern(n),
                        span: Span::DUMMY,
                    },
                    ty: t,
                    restrict: false,
                })
                .collect(),
            ret,
            span: Span::DUMMY,
        };
        self.items.push(Item {
            kind: ItemKind::Extern(e),
        });
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        Module {
            name: self.name,
            items: self.items,
            node_count: self.next_id,
            spans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::print_module;

    #[test]
    fn built_module_prints_and_reparses() {
        let mut b = Builder::new("built");
        b.global("locks", TypeExpr::array(TypeExpr::Lock, 8));
        b.extern_fun("work", vec![], TypeExpr::Void);
        let body = {
            let arg1 = b.var("l");
            let lock = b.call("spin_lock", vec![arg1]);
            let lock = b.expr_stmt(lock);
            let w = b.call("work", vec![]);
            let w = b.expr_stmt(w);
            let arg2 = b.var("l");
            let unlock = b.call("spin_unlock", vec![arg2]);
            let unlock = b.expr_stmt(unlock);
            b.block(vec![lock, w, unlock])
        };
        b.fun_with_params(
            "do_with_lock",
            vec![Param {
                name: Ident::synthetic("l"),
                ty: TypeExpr::ptr(TypeExpr::Lock),
                restrict: true,
            }],
            TypeExpr::Void,
            body,
        );
        let m = b.finish();
        let src = print_module(&m);
        let reparsed = crate::parser::parse_module("built", &src).unwrap();
        assert!(reparsed.function("do_with_lock").unwrap().params[0].restrict);
    }

    #[test]
    fn ids_unique_across_builder() {
        let mut b = Builder::new("m");
        let e1 = b.int(1);
        let e2 = b.var("x");
        let e3 = b.assign(e2, e1);
        let s = b.expr_stmt(e3);
        let blk = b.block(vec![s]);
        b.fun("f", vec![("x", TypeExpr::Int)], TypeExpr::Void, blk);
        let m = b.finish();
        assert!(m.node_count >= 5);
    }
}
