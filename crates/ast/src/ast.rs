//! The Mini-C abstract syntax tree.
//!
//! Every expression, statement and block carries a stable [`NodeId`];
//! downstream analyses (aliasing, effects, restrict/confine inference, the
//! flow-sensitive lock checker) key their facts on these ids, so a single
//! parse can feed every analysis without re-walking source text.

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// A dense, per-module identifier for an AST node.
///
/// Ids are allocated contiguously from 0 by the parser or
/// [`crate::builder::Builder`]; [`Module::node_count`] bounds them, so
/// analyses can use plain vectors as side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// A placeholder id used transiently during construction.
    pub const DUMMY: NodeId = NodeId(u32::MAX);

    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An identifier occurrence with its source span.
///
/// The name is an interned [`Symbol`]: every occurrence of one name in a
/// module shares a single allocation (see [`crate::intern`]), which is
/// most of the AST memory diet — identifier text used to be duplicated
/// per occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The name.
    pub name: Symbol,
    /// Where it occurred.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a dummy span (for synthesized nodes).
    pub fn synthetic(name: impl Into<Symbol>) -> Self {
        Ident {
            name: name.into(),
            span: Span::DUMMY,
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Syntactic types.
///
/// These are the *declared* types of Mini-C; the analyses map them onto the
/// paper's `τ ::= int | ref ρ(τ)` analysis types (locks and struct fields
/// become locations; arrays collapse to a single element location, exactly
/// the imprecision the paper's Figure 1 example relies on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `lock` — the Linux `spinlock_t` analogue tracked by the experiment.
    Lock,
    /// `void` — only valid as a function return type.
    Void,
    /// `T*`
    Ptr(Box<TypeExpr>),
    /// `T[n]`
    Array(Box<TypeExpr>, usize),
    /// `struct S`
    Struct(Symbol),
}

impl TypeExpr {
    /// Convenience constructor for `T*`.
    pub fn ptr(inner: TypeExpr) -> TypeExpr {
        TypeExpr::Ptr(Box::new(inner))
    }

    /// Convenience constructor for `T[n]`.
    pub fn array(elem: TypeExpr, n: usize) -> TypeExpr {
        TypeExpr::Array(Box::new(elem), n)
    }

    /// Returns `true` if this is a pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, TypeExpr::Ptr(_))
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Int => write!(f, "int"),
            TypeExpr::Lock => write!(f, "lock"),
            TypeExpr::Void => write!(f, "void"),
            TypeExpr::Ptr(t) => write!(f, "{t}*"),
            TypeExpr::Array(t, n) => write!(f, "{t}[{n}]"),
            TypeExpr::Struct(s) => write!(f, "struct {s}"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `*e` — pointer dereference.
    Deref,
    /// `&e` — address-of.
    AddrOf,
    /// `-e`
    Neg,
    /// `!e`
    Not,
}

impl UnOp {
    /// The operator's spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Deref => "*",
            UnOp::AddrOf => "&",
            UnOp::Neg => "-",
            UnOp::Not => "!",
        }
    }
}

/// Binary operators (all non-assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The operator's spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Stable node id.
    pub id: NodeId,
    /// The expression's form.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The forms of Mini-C expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal `n`.
    Int(i64),
    /// Variable reference `x`.
    Var(Ident),
    /// Unary operation; [`UnOp::Deref`] and [`UnOp::AddrOf`] are the
    /// pointer-relevant cases.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment `e1 = e2` (the paper's `e1 := e2`).
    Assign(Box<Expr>, Box<Expr>),
    /// Direct call `f(args)`. Mini-C has no function pointers.
    Call(Ident, Vec<Expr>),
    /// Array index `e1[e2]`.
    Index(Box<Expr>, Box<Expr>),
    /// Field access `e.f`.
    Field(Box<Expr>, Ident),
    /// Pointer field access `e->f` (kept distinct from `(*e).f` for
    /// faithful pretty-printing; the analyses treat them identically).
    Arrow(Box<Expr>, Ident),
    /// Heap allocation `new e`, initialized to the value of `e`
    /// (the core calculus's `new e`).
    New(Box<Expr>),
    /// Type cast `(T) e`. Casts launder aliasing through an opaque
    /// conversion; the corpus uses them to model the "type cast" failures
    /// of the paper's Figure 7 discussion.
    Cast(TypeExpr, Box<Expr>),
}

impl Expr {
    /// Returns `true` if the expression is *syntactically pure enough to be
    /// confined*: composed only of identifiers, field accesses, pointer
    /// dereferences, array indexing with pure indices, and address-of.
    ///
    /// This is the §6.1 syntactic restriction ("we are interested only in
    /// `e1`s that are composed of identifiers, field accesses, and pointer
    /// dereferences"); full referential transparency is checked separately
    /// by the effect analysis.
    pub fn is_confinable_shape(&self) -> bool {
        match &self.kind {
            ExprKind::Var(_) | ExprKind::Int(_) => true,
            ExprKind::Unary(UnOp::Deref | UnOp::AddrOf, e) => e.is_confinable_shape(),
            ExprKind::Field(e, _) | ExprKind::Arrow(e, _) => e.is_confinable_shape(),
            ExprKind::Index(e, i) => e.is_confinable_shape() && i.is_confinable_shape(),
            _ => false,
        }
    }

    /// Structural equality *ignoring node ids and spans* — the "syntactic
    /// match" used by the §7 block heuristic to group `change_type`
    /// arguments.
    pub fn syntactically_equal(&self, other: &Expr) -> bool {
        match (&self.kind, &other.kind) {
            (ExprKind::Int(a), ExprKind::Int(b)) => a == b,
            (ExprKind::Var(a), ExprKind::Var(b)) => a.name == b.name,
            (ExprKind::Unary(op1, a), ExprKind::Unary(op2, b)) => {
                op1 == op2 && a.syntactically_equal(b)
            }
            (ExprKind::Binary(op1, a1, a2), ExprKind::Binary(op2, b1, b2)) => {
                op1 == op2 && a1.syntactically_equal(b1) && a2.syntactically_equal(b2)
            }
            (ExprKind::Assign(a1, a2), ExprKind::Assign(b1, b2)) => {
                a1.syntactically_equal(b1) && a2.syntactically_equal(b2)
            }
            (ExprKind::Call(f, xs), ExprKind::Call(g, ys)) => {
                f.name == g.name
                    && xs.len() == ys.len()
                    && xs.iter().zip(ys).all(|(x, y)| x.syntactically_equal(y))
            }
            (ExprKind::Index(a1, a2), ExprKind::Index(b1, b2)) => {
                a1.syntactically_equal(b1) && a2.syntactically_equal(b2)
            }
            (ExprKind::Field(a, f), ExprKind::Field(b, g))
            | (ExprKind::Arrow(a, f), ExprKind::Arrow(b, g)) => {
                f.name == g.name && a.syntactically_equal(b)
            }
            (ExprKind::New(a), ExprKind::New(b)) => a.syntactically_equal(b),
            (ExprKind::Cast(t, a), ExprKind::Cast(u, b)) => t == u && a.syntactically_equal(b),
            _ => false,
        }
    }
}

/// How a local pointer binding was introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingKind {
    /// An ordinary `let` — a plain C declaration.
    Let,
    /// A `restrict`-qualified declaration: the new name is the sole access
    /// path to its referent for the remainder of the enclosing block.
    Restrict,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Stable node id.
    pub id: NodeId,
    /// The statement's form.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// The forms of Mini-C statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// An expression statement `e;`.
    Expr(Expr),
    /// A local declaration `T x = e;` (or `restrict T x = e;`).
    ///
    /// Its scope is the remainder of the enclosing block — the `let x = e1
    /// in e2` of the core calculus with `e2` left implicit. These are the
    /// candidates that §5 restrict inference may promote to `Restrict`.
    Decl {
        /// Binding discipline (plain `let` or `restrict`).
        binding: BindingKind,
        /// Declared type.
        ty: TypeExpr,
        /// The bound name.
        name: Ident,
        /// Initializer, if any.
        init: Option<Expr>,
    },
    /// The paper's scoped form `restrict x = e { ... }`: `x` is bound to
    /// `e` and restricted exactly within the body block.
    Restrict {
        /// The restricted name.
        name: Ident,
        /// The initializer whose referent is restricted.
        init: Expr,
        /// The scope of the restriction.
        body: Block,
    },
    /// The §6 construct `confine (e) { ... }`: aliases of the location `e`
    /// refers to are restricted within the body, with `e` itself serving as
    /// the name.
    Confine {
        /// The confined expression.
        expr: Expr,
        /// The scope of the confinement.
        body: Block,
    },
    /// `if (cond) { ... } else { ... }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while (cond) { ... }` — or a desugared `for` loop, in which case
    /// `step` runs after the body *and on `continue`* (C semantics).
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// The `for` loop's step expression, if any.
        step: Option<Expr>,
    },
    /// `return;` or `return e;`.
    Return(Option<Expr>),
    /// `break;` — exits the innermost loop.
    Break,
    /// `continue;` — jumps to the innermost loop's next iteration.
    Continue,
    /// A nested block `{ ... }`.
    Block(Block),
}

/// A brace-delimited sequence of statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Stable node id.
    pub id: NodeId,
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: Ident,
    /// Declared type.
    pub ty: TypeExpr,
    /// `true` for `T *restrict p` — the C99-style parameter annotation the
    /// paper's `do_with_lock` example uses.
    pub restrict: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDef {
    /// Stable node id.
    pub id: NodeId,
    /// Function name.
    pub name: Ident,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: TypeExpr,
    /// Body.
    pub body: Block,
    /// Source location of the whole definition.
    pub span: Span,
}

/// An `extern` function declaration (body unknown to the analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternDef {
    /// Stable node id.
    pub id: NodeId,
    /// Function name.
    pub name: Ident,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Stable node id.
    pub id: NodeId,
    /// Struct name.
    pub name: Ident,
    /// Fields in declaration order.
    pub fields: Vec<(Ident, TypeExpr)>,
    /// Source location.
    pub span: Span,
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Stable node id.
    pub id: NodeId,
    /// Variable name.
    pub name: Ident,
    /// Declared type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The item's form.
    pub kind: ItemKind,
}

/// The forms of top-level items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A struct definition.
    Struct(StructDef),
    /// A global variable.
    Global(Global),
    /// A function definition.
    Fun(FunDef),
    /// An extern function declaration.
    Extern(ExternDef),
}

/// A parsed translation unit (one "driver module" in experiment terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name (e.g. the synthetic driver's name).
    pub name: String,
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// One past the largest allocated [`NodeId`]; side tables can be sized
    /// with this.
    pub node_count: u32,
    /// Span of each node, indexed by [`NodeId`] (empty for synthesized
    /// modules). Populate with [`crate::visit::collect_spans`].
    pub spans: Vec<Span>,
}

impl Module {
    /// The source span of `id`, or [`Span::DUMMY`] when unknown.
    pub fn span_of(&self, id: NodeId) -> Span {
        self.spans.get(id.index()).copied().unwrap_or(Span::DUMMY)
    }

    /// Iterates over the function definitions in the module.
    pub fn functions(&self) -> impl Iterator<Item = &FunDef> {
        self.items.iter().filter_map(|i| match &i.kind {
            ItemKind::Fun(f) => Some(f),
            _ => None,
        })
    }

    /// Looks up a function definition by name.
    pub fn function(&self, name: &str) -> Option<&FunDef> {
        self.functions().find(|f| f.name.name == name)
    }

    /// Iterates over the global variables in the module.
    pub fn globals(&self) -> impl Iterator<Item = &Global> {
        self.items.iter().filter_map(|i| match &i.kind {
            ItemKind::Global(g) => Some(g),
            _ => None,
        })
    }

    /// Iterates over the struct definitions in the module.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|i| match &i.kind {
            ItemKind::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Iterates over extern declarations in the module.
    pub fn externs(&self) -> impl Iterator<Item = &ExternDef> {
        self.items.iter().filter_map(|i| match &i.kind {
            ItemKind::Extern(e) => Some(e),
            _ => None,
        })
    }

    /// Looks up a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs().find(|s| s.name.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr {
            id: NodeId(0),
            kind: ExprKind::Var(Ident::synthetic(name)),
            span: Span::DUMMY,
        }
    }

    #[test]
    fn confinable_shapes() {
        let x = var("x");
        assert!(x.is_confinable_shape());

        let deref = Expr {
            id: NodeId(1),
            kind: ExprKind::Unary(UnOp::Deref, Box::new(var("p"))),
            span: Span::DUMMY,
        };
        assert!(deref.is_confinable_shape());

        let idx = Expr {
            id: NodeId(2),
            kind: ExprKind::Index(Box::new(var("locks")), Box::new(var("i"))),
            span: Span::DUMMY,
        };
        let addr = Expr {
            id: NodeId(3),
            kind: ExprKind::Unary(UnOp::AddrOf, Box::new(idx)),
            span: Span::DUMMY,
        };
        assert!(addr.is_confinable_shape(), "&locks[i] must be confinable");

        let call = Expr {
            id: NodeId(4),
            kind: ExprKind::Call(Ident::synthetic("f"), vec![]),
            span: Span::DUMMY,
        };
        assert!(!call.is_confinable_shape(), "calls may not terminate");

        let assign = Expr {
            id: NodeId(5),
            kind: ExprKind::Assign(Box::new(var("a")), Box::new(var("b"))),
            span: Span::DUMMY,
        };
        assert!(!assign.is_confinable_shape());
    }

    #[test]
    fn syntactic_equality_ignores_ids() {
        let a = Expr {
            id: NodeId(1),
            kind: ExprKind::Index(Box::new(var("locks")), Box::new(var("i"))),
            span: Span::new(0, 5),
        };
        let b = Expr {
            id: NodeId(99),
            kind: ExprKind::Index(Box::new(var("locks")), Box::new(var("i"))),
            span: Span::new(40, 45),
        };
        assert!(a.syntactically_equal(&b));

        let c = Expr {
            id: NodeId(7),
            kind: ExprKind::Index(Box::new(var("locks")), Box::new(var("j"))),
            span: Span::DUMMY,
        };
        assert!(!a.syntactically_equal(&c));
    }

    #[test]
    fn type_display() {
        assert_eq!(TypeExpr::ptr(TypeExpr::Lock).to_string(), "lock*");
        assert_eq!(TypeExpr::array(TypeExpr::Lock, 8).to_string(), "lock[8]");
        assert_eq!(TypeExpr::Struct("dev".into()).to_string(), "struct dev");
    }
}
