#![warn(missing_docs)]

//! Mini-C frontend for the `localias` analyses.
//!
//! This crate implements a small C-like language — *Mini-C* — that is a
//! strict superset of the core imperative calculus of
//! *Checking and Inferring Local Non-Aliasing* (Aiken, Foster, Kodumal &
//! Terauchi, PLDI 2003). It provides:
//!
//! * a hand-written [`lexer`] and recursive-descent [`parser`],
//! * the abstract syntax tree ([`ast`]) with stable [`NodeId`]s that the
//!   downstream analyses key their facts on,
//! * a [`pretty`] printer that round-trips through the parser,
//! * a [`visit`] walker, and
//! * a programmatic [`builder`] used by the driver corpus generator and
//!   by tests.
//!
//! Mini-C extends the paper's calculus
//! (`e ::= x | n | new e | *e | e := e | let x = e in e | restrict x = e in e`)
//! with functions, statement blocks, `if`/`while`/`for`, arrays, structs,
//! the `confine (e) { ... }` construct of §6, and the locking intrinsics
//! (`spin_lock`, `spin_unlock`, `change_type`) used by the Section 7
//! experiment.
//!
//! # Example
//!
//! ```
//! use localias_ast::parse_module;
//!
//! let m = parse_module(
//!     "example",
//!     r#"
//!     lock locks[8];
//!     void do_with_lock(lock *l) {
//!         spin_lock(l);
//!         spin_unlock(l);
//!     }
//!     "#,
//! )?;
//! assert_eq!(m.items.len(), 2);
//! # Ok::<(), localias_ast::ParseError>(())
//! ```

pub mod ast;
pub mod builder;
pub mod fp;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{
    BinOp, BindingKind, Block, Expr, ExprKind, FunDef, Global, Ident, Item, ItemKind, Module,
    NodeId, Param, Stmt, StmtKind, StructDef, TypeExpr, UnOp,
};
pub use intern::{Interner, Symbol};
pub use lexer::{LexError, Lexer};
pub use parser::{parse_expr, parse_module, ParseError, Parser};
pub use span::Span;
pub use token::{Token, TokenKind};

/// Names of the built-in locking intrinsics recognized by the analyses.
///
/// `spin_lock` / `spin_unlock` are the Linux kernel primitives the paper's
/// experiment tracks; `change_type` is CQual's generic state-changing
/// statement of which the former two are instances.
pub mod intrinsics {
    /// Acquire a spin lock: `spin_lock(e)`.
    pub const SPIN_LOCK: &str = "spin_lock";
    /// Release a spin lock: `spin_unlock(e)`.
    pub const SPIN_UNLOCK: &str = "spin_unlock";
    /// Generic qualifier state change: `change_type(e)`.
    pub const CHANGE_TYPE: &str = "change_type";

    /// Returns `true` if `name` is one of the state-changing intrinsics.
    ///
    /// These are the call sites the Section 7 experiment counts and the
    /// sites whose arguments confine inference tries to confine.
    pub fn is_change_type(name: &str) -> bool {
        name == SPIN_LOCK || name == SPIN_UNLOCK || name == CHANGE_TYPE
    }
}
