//! Pretty-printing Mini-C ASTs back to parseable source.
//!
//! The printer is total and round-trips: for any well-formed module `m`,
//! `parse_module(print(m))` succeeds and is structurally equal to `m`
//! modulo node ids and spans. The corpus generator relies on this to emit
//! its synthetic drivers as source text.
//!
//! # Stability guarantee
//!
//! The output is a *canonical form*: printing is deterministic (a pure
//! function of the AST — no hash-map iteration, environment, or locale
//! dependence), and it is a fixpoint under re-parsing:
//!
//! ```text
//! print(parse(print(m))) == print(m)        for every well-formed m
//! ```
//!
//! Comments, whitespace, redundant parentheses, and the `while`-with-step
//! vs. `for` surface distinction all normalize away. The incremental
//! analysis cache (`localias-bench`) fingerprints modules by this
//! canonical form, so the guarantee is load-bearing: a violation would
//! split or conflate cache keys. It is pinned per construct by the tests
//! below and over the whole 589-module corpus by
//! `crates/bench/tests/pretty_stability.rs`.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole module as source text.
pub fn print_module(m: &Module) -> String {
    let mut p = Printer::new();
    for item in &m.items {
        p.item(item);
    }
    p.out
}

/// Renders a single top-level item as source text.
///
/// [`print_module`] is exactly the concatenation of `print_item` over the
/// module's items (pinned by a test below), so a per-item fingerprint of
/// the canonical form composes with the module-level one: a module's
/// canonical text changes iff some item's canonical text changes.
pub fn print_item(item: &Item) -> String {
    let mut p = Printer::new();
    p.item(item);
    p.out
}

/// Renders a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e);
    p.out
}

/// Renders a single statement at indentation level zero.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn open(&mut self, head: &str) {
        self.line(&format!("{head} {{"));
        self.indent += 1;
    }

    fn close(&mut self, tail: &str) {
        self.indent -= 1;
        self.line(&format!("}}{tail}"));
    }

    fn item(&mut self, item: &Item) {
        match &item.kind {
            ItemKind::Struct(s) => {
                self.open(&format!("struct {}", s.name));
                for (name, ty) in &s.fields {
                    self.line(&Self::decl_str(ty, &name.name));
                }
                self.close(";");
            }
            ItemKind::Global(g) => {
                self.line(&Self::decl_str(&g.ty, &g.name.name));
            }
            ItemKind::Extern(e) => {
                let params = Self::params_str(&e.params);
                self.line(&format!("extern {} {}({});", e.ret, e.name, params));
            }
            ItemKind::Fun(f) => {
                let params = Self::params_str(&f.params);
                self.open(&format!("{} {}({})", f.ret, f.name, params));
                for s in &f.body.stmts {
                    self.stmt(s);
                }
                self.close("");
            }
        }
    }

    fn params_str(params: &[Param]) -> String {
        params
            .iter()
            .map(|p| {
                if p.restrict {
                    format!("{} restrict {}", p.ty, p.name)
                } else {
                    format!("{} {}", p.ty, p.name)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Formats `T x;` handling the `T[n]` → `T x[n];` declarator shuffle.
    fn decl_str(ty: &TypeExpr, name: &str) -> String {
        match ty {
            TypeExpr::Array(elem, n) => format!("{elem} {name}[{n}];"),
            _ => format!("{ty} {name};"),
        }
    }

    fn decl_init_str(ty: &TypeExpr, name: &str, init: Option<&Expr>) -> String {
        let mut p = Printer::new();
        let lhs = match ty {
            TypeExpr::Array(elem, n) => format!("{elem} {name}[{n}]"),
            _ => format!("{ty} {name}"),
        };
        match init {
            Some(e) => {
                p.expr(e);
                format!("{lhs} = {};", p.out)
            }
            None => format!("{lhs};"),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                let mut p = Printer::new();
                p.expr(e);
                self.line(&format!("{};", p.out));
            }
            StmtKind::Decl {
                binding,
                ty,
                name,
                init,
            } => {
                let prefix = match binding {
                    BindingKind::Let => "",
                    BindingKind::Restrict => "restrict ",
                };
                let rest = Self::decl_init_str(ty, &name.name, init.as_ref());
                self.line(&format!("{prefix}{rest}"));
            }
            StmtKind::Restrict { name, init, body } => {
                let mut p = Printer::new();
                p.expr(init);
                self.open(&format!("restrict {} = {}", name, p.out));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close("");
            }
            StmtKind::Confine { expr, body } => {
                let mut p = Printer::new();
                p.expr(expr);
                self.open(&format!("confine ({})", p.out));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close("");
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let mut p = Printer::new();
                p.expr(cond);
                self.open(&format!("if ({})", p.out));
                for s in &then_blk.stmts {
                    self.stmt(s);
                }
                if let Some(else_blk) = else_blk {
                    self.indent -= 1;
                    self.line("} else {");
                    self.indent += 1;
                    for s in &else_blk.stmts {
                        self.stmt(s);
                    }
                }
                self.close("");
            }
            StmtKind::While { cond, body, step } => {
                let mut p = Printer::new();
                p.expr(cond);
                let head = match step {
                    // A stepped loop prints as a `for` so the step keeps
                    // its continue-safe position on re-parse.
                    Some(step) => {
                        let mut q = Printer::new();
                        q.expr(step);
                        format!("for (; {}; {})", p.out, q.out)
                    }
                    None => format!("while ({})", p.out),
                };
                self.open(&head);
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close("");
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Return(e) => match e {
                Some(e) => {
                    let mut p = Printer::new();
                    p.expr(e);
                    self.line(&format!("return {};", p.out));
                }
                None => self.line("return;"),
            },
            StmtKind::Block(b) => {
                self.open("");
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.close("");
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        // Fully parenthesized output keeps the printer simple and
        // guarantees re-parse fidelity; readability is secondary.
        match &e.kind {
            ExprKind::Int(n) => {
                let _ = write!(self.out, "{n}");
            }
            ExprKind::Var(x) => self.out.push_str(&x.name),
            ExprKind::Unary(op, inner) => {
                self.out.push_str(op.symbol());
                self.out.push('(');
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::Binary(op, a, b) => {
                self.out.push('(');
                self.expr(a);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr(b);
                self.out.push(')');
            }
            ExprKind::Assign(a, b) => {
                self.expr(a);
                self.out.push_str(" = ");
                self.expr(b);
            }
            ExprKind::Call(f, args) => {
                self.out.push_str(&f.name);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Index(a, i) => {
                self.expr(a);
                self.out.push('[');
                self.expr(i);
                self.out.push(']');
            }
            ExprKind::Field(a, f) => {
                self.expr(a);
                let _ = write!(self.out, ".{f}");
            }
            ExprKind::Arrow(a, f) => {
                self.expr(a);
                let _ = write!(self.out, "->{f}");
            }
            ExprKind::New(inner) => {
                self.out.push_str("new (");
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::Cast(ty, inner) => {
                let _ = write!(self.out, "({ty}) (");
                self.expr(inner);
                self.out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    /// Structural equality of modules ignoring ids and spans: compare
    /// through the printer itself (prints are id/span-free).
    fn roundtrip(src: &str) {
        let m1 = parse_module("m", src).unwrap();
        let printed1 = print_module(&m1);
        let m2 = parse_module("m", &printed1).unwrap();
        let printed2 = print_module(&m2);
        assert_eq!(printed1, printed2, "print∘parse must be idempotent");
    }

    #[test]
    fn roundtrip_figure1() {
        roundtrip(
            r#"
            lock locks[8];
            extern void work();
            void do_with_lock(lock *restrict l) {
                spin_lock(l);
                work();
                spin_unlock(l);
            }
            void foo(int i) { do_with_lock(&locks[i]); }
            "#,
        );
    }

    #[test]
    fn roundtrip_constructs() {
        roundtrip(
            r#"
            struct dev { lock mu; int n; };
            struct dev devs[4];
            int counter;
            void f(struct dev *d, int i) {
                restrict int *p = &counter;
                restrict q = &devs[i].n {
                    *q = *q + 1;
                }
                confine (&d->mu) {
                    spin_lock(&d->mu);
                    spin_unlock(&d->mu);
                }
                if (i == 0) { d->n = 1; } else { d->n = 2; }
                while (i < 10) { i = i + 1; if (i == 5) { break; } continue; }
                int *r = new (i);
                *r = (int) (i);
                return;
            }
            "#,
        );
    }

    /// The canonical-form fixpoint on the surface forms that do not
    /// print back the way they were written: `for` loops (a stepped
    /// `while` prints as `for`), comments, and redundant parentheses.
    #[test]
    fn canonicalization_reaches_a_fixpoint() {
        let src = r#"
        // leading comment
        int g;
        void f(int i) {
            for (; i < 10; i = i + 1) { g = ((g) + (i)); }
            while (g > 0) { g = g - 1; }
        }
        "#;
        let printed = print_module(&parse_module("m", src).unwrap());
        let reparsed = print_module(&parse_module("m", &printed).unwrap());
        assert_eq!(printed, reparsed, "print∘parse must fix the canonical form");
        assert!(!printed.contains("//"), "comments must normalize away");
        assert!(
            printed.contains("for (; (i < 10); i = (i + 1))"),
            "{printed}"
        );
    }

    /// `print_module` must remain the concatenation of `print_item` —
    /// the incremental recheck fingerprints functions per item and
    /// relies on the composition to agree with the module-level cache.
    #[test]
    fn module_print_is_item_print_concatenated() {
        let src = r#"
        struct dev { lock mu; int n; };
        lock locks[8];
        extern void work();
        void f(struct dev *d) { spin_lock(&d->mu); work(); spin_unlock(&d->mu); }
        void g(int i) { f(&devs[i]); }
        "#;
        let m = parse_module("m", src).unwrap();
        let concat: String = m.items.iter().map(print_item).collect();
        assert_eq!(print_module(&m), concat);
    }

    #[test]
    fn expr_printing() {
        use crate::parser::parse_expr;
        let e = parse_expr("&locks[i]").unwrap();
        assert_eq!(print_expr(&e), "&(locks[i])");
        let e = parse_expr("a->f.g").unwrap();
        assert_eq!(print_expr(&e), "a->f.g");
    }
}
