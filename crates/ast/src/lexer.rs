//! A hand-written lexer for Mini-C.
//!
//! Supports `//` line comments and `/* ... */` block comments.

use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::error::Error;
use std::fmt;

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// Location of the offending input.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.msg)
    }
}

impl Error for LexError {}

/// A streaming lexer over a source string.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the entire input, appending a final [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns the first [`LexError`] encountered (unterminated comment,
    /// bad character, or out-of-range integer literal).
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    msg: "unterminated block comment".to_string(),
                                    span: Span::new(start, self.pos as u32),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes a single token (skipping leading whitespace and comments).
    ///
    /// # Errors
    ///
    /// See [`Lexer::tokenize`].
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let lo = self.pos as u32;
        let Some(b) = self.bump() else {
            return Ok(Token::new(TokenKind::Eof, Span::new(lo, lo)));
        };
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'*' => TokenKind::Star,
            b'+' => TokenKind::Plus,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.pos += 1;
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    TokenKind::AndAnd
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    TokenKind::OrOr
                } else {
                    return Err(LexError {
                        msg: "expected `||`".to_string(),
                        span: Span::new(lo, self.pos as u32),
                    });
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::EqEq
                } else {
                    TokenKind::Eq
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::NotEq
                } else {
                    TokenKind::Not
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'0'..=b'9' => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = &self.src[lo as usize..self.pos];
                let n: i64 = text.parse().map_err(|_| LexError {
                    msg: format!("integer literal `{text}` out of range"),
                    span: Span::new(lo, self.pos as u32),
                })?;
                TokenKind::Int(n)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while matches!(
                    self.peek(),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    self.pos += 1;
                }
                let text = &self.src[lo as usize..self.pos];
                TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character `{}`", other as char),
                    span: Span::new(lo, self.pos as u32),
                })
            }
        };
        Ok(Token::new(kind, Span::new(lo, self.pos as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("( ) { } [ ] ; , . -> * & + - / % = == != < <= > >= ! && ||"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Semi,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Arrow,
                TokenKind::Star,
                TokenKind::Amp,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eq,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Not,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("int lockx lock restrict confine foo_1"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("lockx".into()),
                TokenKind::KwLock,
                TokenKind::KwRestrict,
                TokenKind::KwConfine,
                TokenKind::Ident("foo_1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integers() {
        assert_eq!(
            kinds("0 42 123456"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(123456),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\n over lines */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = Lexer::new("/* oops").tokenize().unwrap_err();
        assert!(err.msg.contains("unterminated"));
    }

    #[test]
    fn bad_character_errors() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        assert!(err.msg.contains("unexpected character"));
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("a->b a - >"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_cover_source() {
        let toks = Lexer::new("foo  bar").tokenize().unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(5, 8));
    }

    #[test]
    fn overflowing_integer_errors() {
        let err = Lexer::new("999999999999999999999999999")
            .tokenize()
            .unwrap_err();
        assert!(err.msg.contains("out of range"));
    }
}
