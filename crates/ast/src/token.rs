//! Tokens produced by the Mini-C lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token: a [`TokenKind`] plus its source [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The kinds of Mini-C tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier such as `foo`.
    Ident(String),
    /// An integer literal such as `42`.
    Int(i64),

    // Keywords.
    /// `int`
    KwInt,
    /// `lock`
    KwLock,
    /// `void`
    KwVoid,
    /// `struct`
    KwStruct,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `restrict`
    KwRestrict,
    /// `confine`
    KwConfine,
    /// `new`
    KwNew,
    /// `extern`
    KwExtern,
    /// `let` (explicit core-calculus binding; equivalent to a declaration)
    KwLet,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `s`, if `s` is a keyword.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "int" => TokenKind::KwInt,
            "lock" => TokenKind::KwLock,
            "void" => TokenKind::KwVoid,
            "struct" => TokenKind::KwStruct,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "restrict" => TokenKind::KwRestrict,
            "confine" => TokenKind::KwConfine,
            "new" => TokenKind::KwNew,
            "extern" => TokenKind::KwExtern,
            "let" => TokenKind::KwLet,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            _ => return None,
        })
    }

    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.literal()),
        }
    }

    /// The literal spelling of punctuation/keyword tokens.
    fn literal(&self) -> &'static str {
        match self {
            TokenKind::KwInt => "int",
            TokenKind::KwLock => "lock",
            TokenKind::KwVoid => "void",
            TokenKind::KwStruct => "struct",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwWhile => "while",
            TokenKind::KwFor => "for",
            TokenKind::KwReturn => "return",
            TokenKind::KwRestrict => "restrict",
            TokenKind::KwConfine => "confine",
            TokenKind::KwNew => "new",
            TokenKind::KwExtern => "extern",
            TokenKind::KwLet => "let",
            TokenKind::KwBreak => "break",
            TokenKind::KwContinue => "continue",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Arrow => "->",
            TokenKind::Star => "*",
            TokenKind::Amp => "&",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Eq => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Not => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Eof => unreachable!(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("int"), Some(TokenKind::KwInt));
        assert_eq!(TokenKind::keyword("restrict"), Some(TokenKind::KwRestrict));
        assert_eq!(TokenKind::keyword("confine"), Some(TokenKind::KwConfine));
        assert_eq!(TokenKind::keyword("banana"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        for k in [
            TokenKind::Ident("x".into()),
            TokenKind::Int(3),
            TokenKind::Arrow,
            TokenKind::Eof,
            TokenKind::KwConfine,
        ] {
            assert!(!k.describe().is_empty());
        }
    }
}
