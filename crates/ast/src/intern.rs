//! Identifier interning — the AST memory diet.
//!
//! Every identifier occurrence used to own its own `String` (24 bytes of
//! header plus a heap allocation per *occurrence*). A corpus module
//! mentions the same handful of names — globals, locks, helper
//! functions, loop variables — hundreds of times, so the per-module AST
//! footprint was dominated by duplicated identifier bytes. A [`Symbol`]
//! is a shared `Arc<str>` handle: the parser routes every identifier
//! through a per-parse [`Interner`], so all occurrences of one name in a
//! module share a single allocation and a clone is a reference-count
//! bump. When the module's AST drops, its symbol arena drops with it —
//! nothing global grows with corpus size, which is what keeps peak RSS
//! flat across a 100× streamed sweep.
//!
//! The interner tracks how many bytes its arena holds and how many a
//! dedup hit avoided; [`stats`] exposes the process-wide totals that the
//! bench harness surfaces as the `mem.arena_bytes` /
//! `mem.arena_saved_bytes` gauges.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An interned identifier: a cheap-to-clone shared string handle.
///
/// Dereferences to `str` and compares against `str`/`String` directly,
/// so call sites read exactly like they did when this was a `String`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates an *uninterned* symbol (synthesized nodes, tests). Use an
    /// [`Interner`] when building many nodes from source text.
    pub fn new(s: impl AsRef<str>) -> Symbol {
        Symbol(Arc::from(s.as_ref()))
    }

    /// The symbol's text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol(Arc::from(s))
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        s.clone()
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.as_str().to_string()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.as_str()
    }
}

/// Process-wide arena accounting, flushed when an [`Interner`] drops.
static ARENA_BYTES: AtomicU64 = AtomicU64::new(0);
static ARENA_SAVED_BYTES: AtomicU64 = AtomicU64::new(0);
static ARENA_SYMBOLS: AtomicU64 = AtomicU64::new(0);

/// Cumulative interning totals since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Bytes of identifier text held in interner arenas (cumulative over
    /// every interner ever dropped — the allocation the diet still pays).
    pub arena_bytes: u64,
    /// Bytes a dedup hit avoided allocating (the diet's saving).
    pub saved_bytes: u64,
    /// Distinct symbols interned.
    pub symbols: u64,
}

/// Snapshot of the process-wide interning totals.
pub fn stats() -> InternStats {
    InternStats {
        arena_bytes: ARENA_BYTES.load(Ordering::Relaxed),
        saved_bytes: ARENA_SAVED_BYTES.load(Ordering::Relaxed),
        symbols: ARENA_SYMBOLS.load(Ordering::Relaxed),
    }
}

/// A per-parse symbol arena: deduplicates identifier text so every
/// occurrence of a name in one module shares a single allocation.
///
/// Deliberately *not* global: a process sweeping 100k modules must not
/// accumulate 100k modules' worth of distinct names. Each parse owns its
/// interner; its accounting is flushed to the process totals on drop.
#[derive(Debug, Default)]
pub struct Interner {
    set: HashSet<Arc<str>>,
    bytes: u64,
    saved: u64,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`: returns the shared handle, allocating only on first
    /// sight of the text.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(existing) = self.set.get(s) {
            self.saved += s.len() as u64;
            return Symbol(existing.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        self.bytes += s.len() as u64;
        self.set.insert(arc.clone());
        Symbol(arc)
    }

    /// Distinct symbols held.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

impl Drop for Interner {
    fn drop(&mut self) {
        if self.bytes > 0 || self.saved > 0 {
            ARENA_BYTES.fetch_add(self.bytes, Ordering::Relaxed);
            ARENA_SAVED_BYTES.fetch_add(self.saved, Ordering::Relaxed);
            ARENA_SYMBOLS.fetch_add(self.set.len() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_one_allocation() {
        let mut i = Interner::new();
        let a = i.intern("spin_lock");
        let b = i.intern("spin_lock");
        assert!(Arc::ptr_eq(&a.0, &b.0), "occurrences share the arena");
        assert_eq!(i.len(), 1);
        let c = i.intern("spin_unlock");
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn symbol_compares_like_a_string() {
        let s = Symbol::new("gmu");
        assert_eq!(s, "gmu");
        assert_eq!("gmu", s);
        assert_eq!(s, String::from("gmu"));
        assert_eq!(String::from("gmu"), s);
        assert_ne!(s, "gp");
        assert_eq!(s.to_string(), "gmu");
        assert_eq!(format!("{s:?}"), "\"gmu\"");
        assert_eq!(&s[1..], "mu");
    }

    #[test]
    fn drop_flushes_accounting() {
        let before = stats();
        {
            let mut i = Interner::new();
            let _ = i.intern("abcd");
            let _ = i.intern("abcd");
            let _ = i.intern("xy");
        }
        let after = stats();
        assert_eq!(after.arena_bytes - before.arena_bytes, 6, "4 + 2 bytes");
        assert_eq!(after.saved_bytes - before.saved_bytes, 4, "one dedup hit");
        assert_eq!(after.symbols - before.symbols, 2);
    }

    #[test]
    fn symbol_is_two_words() {
        assert_eq!(
            std::mem::size_of::<Symbol>(),
            2 * std::mem::size_of::<usize>(),
            "a Symbol must stay a thin shared handle"
        );
    }
}
