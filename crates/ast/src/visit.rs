//! A read-only visitor over the Mini-C AST.
//!
//! Implement [`Visitor`] and override the hooks you care about; each hook's
//! default implementation recurses via the corresponding `walk_*` function.
//! Overriding a hook and still wanting recursion means calling `walk_*`
//! yourself — the same protocol as `syn`/`rustc` visitors.

use crate::ast::ItemKind;
use crate::ast::*;
use crate::intern::Symbol;

/// A read-only AST visitor.
pub trait Visitor: Sized {
    /// Called for every expression.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }

    /// Called for every statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }

    /// Called for every block.
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }

    /// Called for every function definition.
    fn visit_fun(&mut self, f: &FunDef) {
        walk_fun(self, f);
    }

    /// Called for every top-level item.
    fn visit_item(&mut self, i: &Item) {
        walk_item(self, i);
    }
}

/// Recurses into an expression's children.
pub fn walk_expr<V: Visitor>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Int(_) | ExprKind::Var(_) => {}
        ExprKind::Unary(_, inner) | ExprKind::New(inner) | ExprKind::Cast(_, inner) => {
            v.visit_expr(inner)
        }
        ExprKind::Binary(_, a, b) | ExprKind::Assign(a, b) | ExprKind::Index(a, b) => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Field(inner, _) | ExprKind::Arrow(inner, _) => v.visit_expr(inner),
    }
}

/// Recurses into a statement's children.
pub fn walk_stmt<V: Visitor>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                v.visit_expr(e);
            }
        }
        StmtKind::Restrict { init, body, .. } => {
            v.visit_expr(init);
            v.visit_block(body);
        }
        StmtKind::Confine { expr, body } => {
            v.visit_expr(expr);
            v.visit_block(body);
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            v.visit_expr(cond);
            v.visit_block(then_blk);
            if let Some(b) = else_blk {
                v.visit_block(b);
            }
        }
        StmtKind::While { cond, body, step } => {
            v.visit_expr(cond);
            v.visit_block(body);
            if let Some(step) = step {
                v.visit_expr(step);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => v.visit_block(b),
    }
}

/// Recurses into a block's statements.
pub fn walk_block<V: Visitor>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

/// Recurses into a function's body.
pub fn walk_fun<V: Visitor>(v: &mut V, f: &FunDef) {
    v.visit_block(&f.body);
}

/// Recurses into an item's children.
pub fn walk_item<V: Visitor>(v: &mut V, i: &Item) {
    if let ItemKind::Fun(f) = &i.kind {
        v.visit_fun(f);
    }
}

/// Visits every item of `m`.
pub fn walk_module<V: Visitor>(v: &mut V, m: &Module) {
    for i in &m.items {
        v.visit_item(i);
    }
}

/// Builds the per-node span table for a module (indexed by [`NodeId`]).
pub fn collect_spans(m: &Module) -> Vec<crate::span::Span> {
    struct Spans(Vec<crate::span::Span>);
    impl Spans {
        fn put(&mut self, id: NodeId, span: crate::span::Span) {
            let i = id.index();
            if i < self.0.len() {
                self.0[i] = span;
            }
        }
    }
    impl Visitor for Spans {
        fn visit_expr(&mut self, e: &Expr) {
            self.put(e.id, e.span);
            walk_expr(self, e);
        }
        fn visit_stmt(&mut self, s: &Stmt) {
            self.put(s.id, s.span);
            walk_stmt(self, s);
        }
        fn visit_block(&mut self, b: &Block) {
            self.put(b.id, b.span);
            walk_block(self, b);
        }
        fn visit_item(&mut self, i: &Item) {
            match &i.kind {
                ItemKind::Struct(s) => self.put(s.id, s.span),
                ItemKind::Global(g) => self.put(g.id, g.span),
                ItemKind::Extern(e) => self.put(e.id, e.span),
                ItemKind::Fun(f) => self.put(f.id, f.span),
            }
            walk_item(self, i);
        }
    }
    let mut v = Spans(vec![crate::span::Span::DUMMY; m.node_count as usize]);
    walk_module(&mut v, m);
    v.0
}

/// Collects all call sites `(callee name, expr id)` in a module.
///
/// A convenience used by several analyses and by the experiment harness to
/// enumerate `spin_lock`/`spin_unlock` sites.
pub fn call_sites(m: &Module) -> Vec<(Symbol, NodeId)> {
    struct Calls(Vec<(Symbol, NodeId)>);
    impl Visitor for Calls {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call(name, _) = &e.kind {
                self.0.push((name.name.clone(), e.id));
            }
            walk_expr(self, e);
        }
    }
    let mut c = Calls(Vec::new());
    walk_module(&mut c, m);
    c.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    #[test]
    fn call_sites_found() {
        let m = parse_module(
            "m",
            "extern void work(); void f(lock *l) { spin_lock(l); work(); spin_unlock(l); }",
        )
        .unwrap();
        let calls = call_sites(&m);
        let names: Vec<_> = calls.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["spin_lock", "work", "spin_unlock"]);
    }

    #[test]
    fn visitor_reaches_nested_expressions() {
        let m = parse_module(
            "m",
            "void f(int **pp, int i) { if (i < 3) { *(*pp) = i; } else { while (i) { i = i - 1; } } }",
        )
        .unwrap();
        struct CountDerefs(usize);
        impl Visitor for CountDerefs {
            fn visit_expr(&mut self, e: &Expr) {
                if matches!(e.kind, ExprKind::Unary(UnOp::Deref, _)) {
                    self.0 += 1;
                }
                walk_expr(self, e);
            }
        }
        let mut v = CountDerefs(0);
        walk_module(&mut v, &m);
        assert_eq!(v.0, 2);
    }
}
