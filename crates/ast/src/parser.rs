//! A recursive-descent parser for Mini-C.
//!
//! The grammar is a small, unambiguous subset of C extended with the
//! paper's constructs:
//!
//! ```text
//! module   := item*
//! item     := struct ";"-def | extern | global | function
//! stmt     := decl | "restrict" x "=" expr block | "confine" "(" expr ")" block
//!           | "if" | "while" | "for" | "return" | block | expr ";"
//! ```
//!
//! `for` loops are desugared to `while` during parsing. Casts are
//! unambiguous because Mini-C type expressions always begin with a type
//! keyword (`int`, `lock`, `void`, `struct`).

use crate::ast::*;
use crate::intern::Interner;
use crate::lexer::{LexError, Lexer};
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::error::Error;
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// Location of the offending token.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.msg)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            span: e.span,
        }
    }
}

/// Parses a complete module from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Example
///
/// ```
/// let m = localias_ast::parse_module("m", "int g; void f() { g = 1; }")?;
/// assert!(m.function("f").is_some());
/// # Ok::<(), localias_ast::ParseError>(())
/// ```
pub fn parse_module(name: &str, src: &str) -> Result<Module, ParseError> {
    Parser::new(src)?.module(name)
}

/// Parses a single expression (useful in tests and the REPL-ish CLI).
///
/// # Errors
///
/// Returns a [`ParseError`] if `src` is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

/// The maximum nesting depth (blocks + expressions) the parser accepts.
/// Deeper inputs get a parse error instead of a stack overflow — the
/// bound is conservative because every expression level costs a full
/// precedence-chain of stack frames.
pub const MAX_NESTING: usize = 64;

/// The parser state: a token buffer plus a node-id allocator.
#[derive(Debug)]
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    next_id: u32,
    depth: usize,
    /// Per-parse symbol arena: every occurrence of one identifier in the
    /// module shares a single allocation (see [`crate::intern`]).
    interner: Interner,
}

impl Parser {
    /// Lexes `src` and readies a parser over it.
    ///
    /// # Errors
    ///
    /// Propagates lexing failures.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: Lexer::new(src).tokenize()?,
            pos: 0,
            next_id: 0,
            depth: 0,
            interner: Interner::new(),
        })
    }

    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {}, found {}", kind, self.peek())))
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError {
            msg,
            span: self.span(),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.err(format!("nesting deeper than {MAX_NESTING} levels")));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                let name = self.interner.intern(&name);
                Ok(Ident { name, span })
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwLock | TokenKind::KwVoid | TokenKind::KwStruct
        )
    }

    /// Parses a base type plus pointer stars: `int**`, `struct dev*`, ...
    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        let mut ty = match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                TypeExpr::Int
            }
            TokenKind::KwLock => {
                self.bump();
                TypeExpr::Lock
            }
            TokenKind::KwVoid => {
                self.bump();
                TypeExpr::Void
            }
            TokenKind::KwStruct => {
                self.bump();
                let name = self.ident()?;
                TypeExpr::Struct(name.name)
            }
            other => return Err(self.err(format!("expected a type, found {other}"))),
        };
        while self.eat(&TokenKind::Star) {
            ty = TypeExpr::ptr(ty);
        }
        Ok(ty)
    }

    /// Parses a whole module.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error.
    pub fn module(&mut self, name: &str) -> Result<Module, ParseError> {
        let mut items = Vec::new();
        while self.peek() != &TokenKind::Eof {
            items.push(self.item()?);
        }
        let mut m = Module {
            name: name.to_string(),
            items,
            node_count: self.next_id,
            spans: Vec::new(),
        };
        m.spans = crate::visit::collect_spans(&m);
        Ok(m)
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if self.peek() == &TokenKind::KwStruct && matches!(self.peek2(), TokenKind::Ident(_)) {
            // Could be a struct definition (`struct S { ... }`) or a
            // global/function of struct type (`struct S g;`). Look past the
            // name for `{`.
            let save = self.pos;
            self.bump();
            let _name = self.ident()?;
            let is_def = self.peek() == &TokenKind::LBrace;
            self.pos = save;
            if is_def {
                return Ok(Item {
                    kind: ItemKind::Struct(self.struct_def()?),
                });
            }
        }
        if self.peek() == &TokenKind::KwExtern {
            return Ok(Item {
                kind: ItemKind::Extern(self.extern_def()?),
            });
        }
        // Global or function: type declarator then `(` or `;`/`[`.
        let lo = self.span();
        let ty = self.type_expr()?;
        let name = self.ident()?;
        if self.peek() == &TokenKind::LParen {
            let fun = self.fun_rest(lo, ty, name)?;
            Ok(Item {
                kind: ItemKind::Fun(fun),
            })
        } else {
            let ty = self.array_suffix(ty)?;
            self.expect(&TokenKind::Semi)?;
            Ok(Item {
                kind: ItemKind::Global(Global {
                    id: self.id(),
                    name,
                    ty,
                    span: lo.to(self.prev_span()),
                }),
            })
        }
    }

    fn array_suffix(&mut self, ty: TypeExpr) -> Result<TypeExpr, ParseError> {
        if self.eat(&TokenKind::LBracket) {
            let n = match self.peek().clone() {
                TokenKind::Int(n) if n >= 0 => {
                    self.bump();
                    n as usize
                }
                other => return Err(self.err(format!("expected array length, found {other}"))),
            };
            self.expect(&TokenKind::RBracket)?;
            Ok(TypeExpr::array(ty, n))
        } else {
            Ok(ty)
        }
    }

    fn struct_def(&mut self) -> Result<StructDef, ParseError> {
        let lo = self.span();
        self.expect(&TokenKind::KwStruct)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            let ty = self.type_expr()?;
            let fname = self.ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(&TokenKind::Semi)?;
            fields.push((fname, ty));
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(StructDef {
            id: self.id(),
            name,
            fields,
            span: lo.to(self.prev_span()),
        })
    }

    fn extern_def(&mut self) -> Result<ExternDef, ParseError> {
        let lo = self.span();
        self.expect(&TokenKind::KwExtern)?;
        let ret = self.type_expr()?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let params = self.params()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Semi)?;
        Ok(ExternDef {
            id: self.id(),
            name,
            params,
            ret,
            span: lo.to(self.prev_span()),
        })
    }

    fn params(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = Vec::new();
        if self.peek() == &TokenKind::RParen {
            return Ok(params);
        }
        if self.peek() == &TokenKind::KwVoid && self.peek2() == &TokenKind::RParen {
            self.bump(); // C-style `f(void)`
            return Ok(params);
        }
        loop {
            // `restrict` may appear after the pointer stars, C99-style:
            // `lock *restrict l`. `type_expr` consumes the stars.
            let ty = self.type_expr()?;
            let restrict = self.eat(&TokenKind::KwRestrict);
            let name = self.ident()?;
            params.push(Param { name, ty, restrict });
            if !self.eat(&TokenKind::Comma) {
                return Ok(params);
            }
        }
    }

    fn fun_rest(&mut self, lo: Span, ret: TypeExpr, name: Ident) -> Result<FunDef, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let params = self.params()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(FunDef {
            id: self.id(),
            name,
            params,
            ret,
            body,
            span: lo.to(self.prev_span()),
        })
    }

    /// Parses a brace-delimited block.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error.
    pub fn block(&mut self) -> Result<Block, ParseError> {
        self.enter()?;
        let lo = self.span();
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        self.leave();
        Ok(Block {
            id: self.id(),
            stmts,
            span: lo.to(self.prev_span()),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.span();
        match self.peek().clone() {
            TokenKind::KwRestrict => {
                self.bump();
                if self.at_type_start() {
                    // `restrict T x = e;` — a restrict-qualified declaration.
                    self.decl_rest(lo, BindingKind::Restrict)
                } else {
                    // `restrict x = e { ... }` — the paper's scoped form.
                    let name = self.ident()?;
                    self.expect(&TokenKind::Eq)?;
                    let init = self.expr()?;
                    let body = self.block()?;
                    Ok(Stmt {
                        id: self.id(),
                        kind: StmtKind::Restrict { name, init, body },
                        span: lo.to(self.prev_span()),
                    })
                }
            }
            TokenKind::KwConfine => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let expr = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt {
                    id: self.id(),
                    kind: StmtKind::Confine { expr, body },
                    span: lo.to(self.prev_span()),
                })
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt {
                    id: self.id(),
                    kind: StmtKind::While {
                        cond,
                        body,
                        step: None,
                    },
                    span: lo.to(self.prev_span()),
                })
            }
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                self.bump();
                let e = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.id(),
                    kind: StmtKind::Return(e),
                    span: lo.to(self.prev_span()),
                })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.id(),
                    kind: StmtKind::Break,
                    span: lo.to(self.prev_span()),
                })
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.id(),
                    kind: StmtKind::Continue,
                    span: lo.to(self.prev_span()),
                })
            }
            TokenKind::LBrace => {
                let b = self.block()?;
                Ok(Stmt {
                    id: self.id(),
                    kind: StmtKind::Block(b),
                    span: lo.to(self.prev_span()),
                })
            }
            TokenKind::KwLet => Err(self.err(
                "`let` is reserved; write a typed declaration such as `int *x = e;`".to_string(),
            )),
            _ if self.at_type_start() => self.decl_rest(lo, BindingKind::Let),
            _ => {
                let e = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.id(),
                    kind: StmtKind::Expr(e),
                    span: lo.to(self.prev_span()),
                })
            }
        }
    }

    fn decl_rest(&mut self, lo: Span, binding: BindingKind) -> Result<Stmt, ParseError> {
        let ty = self.type_expr()?;
        let name = self.ident()?;
        let ty = self.array_suffix(ty)?;
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt {
            id: self.id(),
            kind: StmtKind::Decl {
                binding,
                ty,
                name,
                init,
            },
            span: lo.to(self.prev_span()),
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.span();
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat(&TokenKind::KwElse) {
            if self.peek() == &TokenKind::KwIf {
                // `else if` — wrap the nested if in a synthetic block.
                let nested = self.if_stmt()?;
                let span = nested.span;
                Some(Block {
                    id: self.id(),
                    stmts: vec![nested],
                    span,
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt {
            id: self.id(),
            kind: StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            span: lo.to(self.prev_span()),
        })
    }

    /// Desugars `for (init; cond; step) body` into
    /// `{ init; while (cond) { body...; step; } }`.
    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.span();
        self.expect(&TokenKind::KwFor)?;
        self.expect(&TokenKind::LParen)?;
        let init: Option<Stmt> = if self.peek() == &TokenKind::Semi {
            self.bump();
            None
        } else if self.at_type_start() {
            let dlo = self.span();
            Some(self.decl_rest(dlo, BindingKind::Let)?)
        } else {
            let e = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            let span = e.span;
            Some(Stmt {
                id: self.id(),
                kind: StmtKind::Expr(e),
                span,
            })
        };
        let cond = if self.peek() == &TokenKind::Semi {
            let span = self.span();
            Expr {
                id: self.id(),
                kind: ExprKind::Int(1),
                span,
            }
        } else {
            self.expr()?
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        let span = lo.to(self.prev_span());
        let while_stmt = Stmt {
            id: self.id(),
            kind: StmtKind::While { cond, body, step },
            span,
        };
        // The block wrapper exists only to scope the init declaration; an
        // init-less `for` must stay a bare loop so the pretty printer's
        // `for (; cond; step)` rendering re-parses to the same tree
        // (the canonical-form fixpoint the analysis cache keys on).
        let Some(init) = init else {
            return Ok(while_stmt);
        };
        let blk = Block {
            id: self.id(),
            stmts: vec![init, while_stmt],
            span,
        };
        Ok(Stmt {
            id: self.id(),
            kind: StmtKind::Block(blk),
            span,
        })
    }

    /// Parses an expression (lowest precedence: assignment).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error.
    pub fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign()
    }

    fn assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or_expr()?;
        if self.eat(&TokenKind::Eq) {
            let rhs = self.assign()?; // right-associative
            let span = lhs.span.to(rhs.span);
            Ok(Expr {
                id: self.id(),
                kind: ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                span,
            })
        } else {
            Ok(lhs)
        }
    }

    fn binary_level<F>(&mut self, ops: &[(TokenKind, BinOp)], next: F) -> Result<Expr, ParseError>
    where
        F: Fn(&mut Self) -> Result<Expr, ParseError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.to(rhs.span);
                    lhs = Expr {
                        id: self.id(),
                        kind: ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)),
                        span,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::OrOr, BinOp::Or)], Self::and_expr)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::AndAnd, BinOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::NotEq, BinOp::Ne)],
            Self::relational,
        )
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Gt, BinOp::Gt),
                (TokenKind::Ge, BinOp::Ge),
            ],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
            Self::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.unary_inner();
        self.leave();
        result
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        let lo = self.span();
        let op = match self.peek() {
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Amp => Some(UnOp::AddrOf),
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::KwNew => {
                self.bump();
                let e = self.unary()?;
                let span = lo.to(e.span);
                return Ok(Expr {
                    id: self.id(),
                    kind: ExprKind::New(Box::new(e)),
                    span,
                });
            }
            TokenKind::LParen
                if matches!(
                    self.peek2(),
                    TokenKind::KwInt | TokenKind::KwLock | TokenKind::KwVoid | TokenKind::KwStruct
                ) =>
            {
                // Cast: `( type ) unary`.
                self.bump();
                let ty = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                let e = self.unary()?;
                let span = lo.to(e.span);
                return Ok(Expr {
                    id: self.id(),
                    kind: ExprKind::Cast(ty, Box::new(e)),
                    span,
                });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            let span = lo.to(e.span);
            Ok(Expr {
                id: self.id(),
                kind: ExprKind::Unary(op, Box::new(e)),
                span,
            })
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        id: self.id(),
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        span,
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    let span = e.span.to(f.span);
                    e = Expr {
                        id: self.id(),
                        kind: ExprKind::Field(Box::new(e), f),
                        span,
                    };
                }
                TokenKind::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    let span = e.span.to(f.span);
                    e = Expr {
                        id: self.id(),
                        kind: ExprKind::Arrow(Box::new(e), f),
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let lo = self.span();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr {
                    id: self.id(),
                    kind: ExprKind::Int(n),
                    span: lo,
                })
            }
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr {
                        id: self.id(),
                        kind: ExprKind::Call(name, args),
                        span: lo.to(self.prev_span()),
                    })
                } else {
                    let span = name.span;
                    Ok(Expr {
                        id: self.id(),
                        kind: ExprKind::Var(name),
                        span,
                    })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_program_parses() {
        let src = r#"
            lock locks[8];
            extern void work();
            void do_with_lock(lock *restrict l) {
                spin_lock(l);
                work();
                spin_unlock(l);
            }
            void foo(int i) {
                do_with_lock(&locks[i]);
            }
        "#;
        let m = parse_module("fig1", src).unwrap();
        assert_eq!(m.items.len(), 4);
        let f = m.function("do_with_lock").unwrap();
        assert!(f.params[0].restrict, "parameter must be restrict-qualified");
        assert_eq!(f.params[0].ty, TypeExpr::ptr(TypeExpr::Lock));
        assert_eq!(f.body.stmts.len(), 3);
        let g = m.globals().next().unwrap();
        assert_eq!(g.ty, TypeExpr::array(TypeExpr::Lock, 8));
    }

    #[test]
    fn restrict_scoped_statement() {
        let src = r#"
            void f(lock *q) {
                restrict p = q {
                    spin_lock(p);
                    spin_unlock(p);
                }
            }
        "#;
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::Restrict { name, body, .. } => {
                assert_eq!(name.name, "p");
                assert_eq!(body.stmts.len(), 2);
            }
            other => panic!("expected restrict stmt, got {other:?}"),
        }
    }

    #[test]
    fn restrict_declaration() {
        let src = "void f(int *q) { restrict int *p = q; *p = 3; }";
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::Decl { binding, name, .. } => {
                assert_eq!(*binding, BindingKind::Restrict);
                assert_eq!(name.name, "p");
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn confine_statement() {
        let src = r#"
            lock locks[4];
            extern void work();
            void f(int i) {
                confine (&locks[i]) {
                    spin_lock(&locks[i]);
                    work();
                    spin_unlock(&locks[i]);
                }
            }
        "#;
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::Confine { expr, body } => {
                assert!(expr.is_confinable_shape());
                assert_eq!(body.stmts.len(), 3);
            }
            other => panic!("expected confine stmt, got {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let e = parse_expr("a = b == c + d * 2").unwrap();
        // a = (b == (c + (d * 2)))
        match e.kind {
            ExprKind::Assign(_, rhs) => match rhs.kind {
                ExprKind::Binary(BinOp::Eq, _, inner) => match inner.kind {
                    ExprKind::Binary(BinOp::Add, _, mul) => {
                        assert!(matches!(mul.kind, ExprKind::Binary(BinOp::Mul, _, _)))
                    }
                    other => panic!("expected add, got {other:?}"),
                },
                other => panic!("expected eq, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = parse_expr("a = b = c").unwrap();
        match e.kind {
            ExprKind::Assign(lhs, rhs) => {
                assert!(matches!(lhs.kind, ExprKind::Var(_)));
                assert!(matches!(rhs.kind, ExprKind::Assign(_, _)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn casts_parse() {
        let e = parse_expr("(lock*) p").unwrap();
        match e.kind {
            ExprKind::Cast(ty, inner) => {
                assert_eq!(ty, TypeExpr::ptr(TypeExpr::Lock));
                assert!(matches!(inner.kind, ExprKind::Var(_)));
            }
            other => panic!("expected cast, got {other:?}"),
        }
        // A parenthesized expression is not a cast.
        let e = parse_expr("(p)").unwrap();
        assert!(matches!(e.kind, ExprKind::Var(_)));
    }

    #[test]
    fn new_expression() {
        let e = parse_expr("new 0").unwrap();
        assert!(matches!(e.kind, ExprKind::New(_)));
        let e = parse_expr("new new 1").unwrap();
        match e.kind {
            ExprKind::New(inner) => assert!(matches!(inner.kind, ExprKind::New(_))),
            other => panic!("expected nested new, got {other:?}"),
        }
    }

    #[test]
    fn for_desugars_to_while() {
        let src = "void f() { for (int i = 0; i < 10; i = i + 1) { g(i); } }";
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::Block(b) => {
                assert!(matches!(b.stmts[0].kind, StmtKind::Decl { .. }));
                match &b.stmts[1].kind {
                    StmtKind::While { body, step, .. } => {
                        // The step lives on the loop, not in the body,
                        // so `continue` still runs it (C semantics).
                        assert_eq!(body.stmts.len(), 1);
                        assert!(step.is_some());
                    }
                    other => panic!("expected while, got {other:?}"),
                }
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let src = "void f(int a) { if (a == 1) { g(); } else if (a == 2) { h(); } else { k(); } }";
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::If { else_blk, .. } => {
                let else_blk = else_blk.as_ref().unwrap();
                assert!(matches!(else_blk.stmts[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn structs_and_arrow() {
        let src = r#"
            struct dev { lock mu; int count; };
            void f(struct dev *d) {
                spin_lock(&d->mu);
                d->count = d->count + 1;
                spin_unlock(&d->mu);
            }
        "#;
        let m = parse_module("m", src).unwrap();
        let s = m.struct_def("dev").unwrap();
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].1, TypeExpr::Lock);
    }

    #[test]
    fn node_ids_are_dense_and_unique() {
        use crate::visit::{walk_module, Visitor};
        let src = "int g; void f(int x) { int *p = new x; *p = g; }";
        let m = parse_module("m", src).unwrap();
        struct Collect(Vec<u32>);
        impl Visitor for Collect {
            fn visit_expr(&mut self, e: &Expr) {
                self.0.push(e.id.0);
                crate::visit::walk_expr(self, e);
            }
            fn visit_stmt(&mut self, s: &Stmt) {
                self.0.push(s.id.0);
                crate::visit::walk_stmt(self, s);
            }
            fn visit_block(&mut self, b: &Block) {
                self.0.push(b.id.0);
                crate::visit::walk_block(self, b);
            }
        }
        let mut c = Collect(Vec::new());
        walk_module(&mut c, &m);
        let mut ids = c.0.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.0.len(), "node ids must be unique");
        assert!(ids.iter().all(|&i| i < m.node_count));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_module("m", "void f( {").is_err());
        assert!(parse_module("m", "int ;").is_err());
        assert!(parse_expr("a +").is_err());
        assert!(parse_expr("").is_err());
        let err = parse_module("m", "void f() { let x = 1; }").unwrap_err();
        assert!(err.msg.contains("reserved"));
    }

    #[test]
    fn break_and_continue() {
        let src = r#"
            void f(int n) {
                while (1) {
                    if (n == 0) { break; }
                    if (n == 7) { continue; }
                    n = n - 1;
                }
            }
        "#;
        let m = parse_module("m", src).unwrap();
        let f = m.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::While { body, .. } => {
                let then_of = |i: usize| match &body.stmts[i].kind {
                    StmtKind::If { then_blk, .. } => &then_blk.stmts[0].kind,
                    other => panic!("expected if, got {other:?}"),
                };
                assert!(matches!(then_of(0), StmtKind::Break));
                assert!(matches!(then_of(1), StmtKind::Continue));
            }
            other => panic!("expected while, got {other:?}"),
        }
        // Outside a loop these still parse; the checker treats them as
        // terminating the path.
        assert!(parse_module("m", "void g() { break; }").is_ok());
    }

    #[test]
    fn extern_and_void_params() {
        let m = parse_module("m", "extern int get(void); void f(void) { get(); }").unwrap();
        assert_eq!(m.externs().count(), 1);
        assert_eq!(m.function("f").unwrap().params.len(), 0);
    }
}
