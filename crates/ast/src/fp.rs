//! The shared 128-bit FNV-1a fingerprint core.
//!
//! Every content-addressed key in the pipeline — the module-level result
//! cache in `localias-bench` and the function-granular incremental
//! recheck in `localias-cqual` — hashes canonical source text with this
//! one core, so the two layers agree byte-for-byte on what "unchanged"
//! means. Keys are *domain-separated*: each keying domain prefixes its
//! own domain string (which embeds [`ANALYSIS_VERSION`]), so a key of
//! one kind can never collide with a key of another, and bumping the
//! version invalidates every cached result at once.
//!
//! The core lives in `localias-ast` (the root of the crate graph) rather
//! than in `localias-bench` because `localias-cqual` sits *below* bench
//! in the dependency order; bench re-exports these items so its public
//! API is unchanged.

/// Bumped whenever any analysis stage changes observable results, so
/// stale caches — the on-disk module store *and* in-memory function
/// caches — can never serve wrong answers. Mixed into every fingerprint
/// domain across the pipeline.
///
/// v2: the checker moved to the frozen-analysis, call-graph-scheduled
/// pipeline and the store grew the generic `"v"` payload.
///
/// v3: havoc (calls into recursive cycles) became total — untouched
/// locations drop to Top and the clobber propagates through summaries —
/// fixing a soundness hole where a cycle's lock effects were invisible
/// to callers (found by `localias fuzz`; see DESIGN.md §12).
pub const ANALYSIS_VERSION: u32 = 3;

/// FNV-1a 128-bit offset basis.
pub const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;

/// FNV-1a 128-bit prime.
pub const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Folds `bytes` into a running FNV-1a hash state.
pub fn fnv1a(mut h: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One-shot domain-separated fingerprint: hashes the domain prefix, then
/// the payload. Distinct domains partition the key space; two calls
/// collide only if both domain and payload agree.
pub fn fingerprint(domain: &str, payload: &str) -> u128 {
    fnv1a(fnv1a(FNV_OFFSET, domain.as_bytes()), payload.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_domains_and_payloads() {
        assert_eq!(fingerprint("d;", "x"), fingerprint("d;", "x"));
        assert_ne!(fingerprint("d;", "x"), fingerprint("e;", "x"));
        assert_ne!(fingerprint("d;", "x"), fingerprint("d;", "y"));
        // FNV-1a streams bytes with no implicit boundary, so the split
        // point between domain and payload is invisible to the hash:
        assert_eq!(fingerprint("ab", "c"), fingerprint("a", "bc"));
        // Separation therefore rests on the call-site convention that
        // domains are fixed `;`-terminated literals of which none is a
        // prefix of another — under it, differing domains diverge before
        // the payload can compensate at a matching offset.
        assert_ne!(fingerprint("raw;v2;", "x"), fingerprint("item;v2;", "x"));
    }

    #[test]
    fn core_matches_the_historical_cache_constants() {
        // These literals are frozen: the on-disk store from earlier
        // releases was keyed with them, and changing either would
        // silently invalidate (or worse, mis-hit) existing caches.
        assert_eq!(FNV_OFFSET, 0x6c62272e07bb014262b821756295c58d);
        assert_eq!(FNV_PRIME, 0x0000000001000000000000000000013b);
        assert_eq!(fnv1a(FNV_OFFSET, b""), FNV_OFFSET);
    }
}
