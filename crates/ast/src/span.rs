//! Byte-offset source spans and line/column resolution.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a source string.
///
/// Spans are attached to every token and AST node so diagnostics from the
/// analyses can point back at source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Inclusive start byte offset.
    pub lo: u32,
    /// Exclusive end byte offset.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering bytes `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "span lo {lo} exceeds hi {hi}");
        Span { lo, hi }
    }

    /// A zero-width span used for synthesized nodes (e.g. from [`crate::builder`]).
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Returns `true` if the span is zero-width.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    /// Extracts the spanned slice of `src`, or `""` when out of bounds.
    pub fn snippet(self, src: &str) -> &str {
        src.get(self.lo as usize..self.hi as usize).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// Maps byte offsets to 1-based line/column pairs for one source file.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the start of each line.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Returns the 1-based `(line, column)` of byte offset `pos`.
    pub fn location(&self, pos: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = pos - self.line_starts[line] + 1;
        (line as u32 + 1, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_to_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn span_snippet() {
        let src = "hello world";
        assert_eq!(Span::new(0, 5).snippet(src), "hello");
        assert_eq!(Span::new(6, 11).snippet(src), "world");
        assert_eq!(Span::new(6, 99).snippet(src), "");
    }

    #[test]
    #[should_panic(expected = "span lo")]
    fn span_rejects_inverted() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn linemap_locations() {
        let src = "ab\ncd\n\nxyz";
        let lm = LineMap::new(src);
        assert_eq!(lm.location(0), (1, 1));
        assert_eq!(lm.location(1), (1, 2));
        assert_eq!(lm.location(3), (2, 1));
        assert_eq!(lm.location(6), (3, 1));
        assert_eq!(lm.location(7), (4, 1));
        assert_eq!(lm.location(9), (4, 3));
    }

    #[test]
    fn dummy_is_empty() {
        assert!(Span::DUMMY.is_empty());
        assert_eq!(Span::DUMMY.len(), 0);
    }
}
