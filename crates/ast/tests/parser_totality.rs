//! Totality fuzzing: the lexer and parser must never panic — any input is
//! either parsed or rejected with a located error.

use localias_ast::{parse_module, Lexer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(src in "\\PC*") {
        let _ = Lexer::new(&src).tokenize();
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(src in "\\PC*") {
        let _ = parse_module("fuzz", &src);
    }

    #[test]
    fn parser_never_panics_on_c_like_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("int"), Just("lock"), Just("void"), Just("struct"),
                Just("restrict"), Just("confine"), Just("if"), Just("else"),
                Just("while"), Just("for"), Just("return"), Just("new"),
                Just("break"), Just("continue"), Just("extern"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("["),
                Just("]"), Just(";"), Just(","), Just("*"), Just("&"),
                Just("="), Just("=="), Just("->"), Just("."), Just("+"),
                Just("x"), Just("y"), Just("f"), Just("0"), Just("42"),
            ],
            0..64,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_module("soup", &src);
    }

    #[test]
    fn error_spans_are_in_bounds(src in "\\PC{0,200}") {
        if let Err(e) = parse_module("fuzz", &src) {
            prop_assert!(e.span.lo as usize <= src.len() + 1, "{e}");
            prop_assert!(e.span.lo <= e.span.hi, "{e}");
        }
    }
}

/// Builds `void f() { int x = ((((1)))); }` with `n` parens.
fn nested_parens(n: usize) -> String {
    let mut src = String::from("void f() { int x = ");
    for _ in 0..n {
        src.push('(');
    }
    src.push('1');
    for _ in 0..n {
        src.push(')');
    }
    src.push_str("; }");
    src
}

/// Builds `void f() { {{...g();...}} }` with `n` nested blocks.
fn nested_blocks(n: usize) -> String {
    let mut src = String::from("void f() { ");
    for _ in 0..n {
        src.push('{');
    }
    src.push_str("g();");
    for _ in 0..n {
        src.push('}');
    }
    src.push_str(" }");
    src
}

#[test]
fn moderate_nesting_parses() {
    assert!(parse_module("deep", &nested_parens(60)).is_ok());
    assert!(parse_module("deep", &nested_blocks(60)).is_ok());
}

#[test]
fn excessive_nesting_is_rejected_not_crashed() {
    // Past the limit the parser must return an error — not overflow the
    // stack.
    let err = parse_module("deep", &nested_parens(5000)).unwrap_err();
    assert!(err.msg.contains("nesting"), "{err}");
    let err = parse_module("deep", &nested_blocks(5000)).unwrap_err();
    assert!(err.msg.contains("nesting"), "{err}");
}
