//! Totality fuzzing: the lexer and parser must never panic — any input is
//! either parsed or rejected with a located error.
//!
//! Inputs are driven by the in-repo deterministic PRNG (`localias-prng`)
//! rather than proptest, so the suite runs in fully offline builds; every
//! case is reproducible from the fixed seeds.

use localias_ast::{parse_module, Lexer};
use localias_prng::Rng64;

/// A random string of printable characters (ASCII plus a sprinkle of
/// multibyte code points, to shake out byte-vs-char span bugs).
fn random_text(rng: &mut Rng64, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    let mut s = String::new();
    for _ in 0..len {
        let c = match rng.gen_range(0..10u32) {
            0..=6 => char::from(rng.gen_range(0x20..0x7Fu32) as u8),
            7 => '\n',
            8 => ['λ', 'π', '∈', '→', 'ß', '中'][rng.gen_range(0..6usize)],
            _ => char::from(rng.gen_range(0x09..0x0Eu32) as u8),
        };
        s.push(c);
    }
    s
}

#[test]
fn lexer_never_panics() {
    let mut rng = Rng64::seed_from_u64(0x1e5);
    for _ in 0..256 {
        let src = random_text(&mut rng, 300);
        let _ = Lexer::new(&src).tokenize();
    }
}

#[test]
fn parser_never_panics_on_arbitrary_text() {
    let mut rng = Rng64::seed_from_u64(0x9a9);
    for _ in 0..256 {
        let src = random_text(&mut rng, 300);
        let _ = parse_module("fuzz", &src);
    }
}

#[test]
fn parser_never_panics_on_c_like_soup() {
    const TOKENS: [&str; 34] = [
        "int", "lock", "void", "struct", "restrict", "confine", "if", "else", "while", "for",
        "return", "new", "break", "continue", "extern", "(", ")", "{", "}", "[", "]", ";", ",",
        "*", "&", "=", "==", "->", ".", "+", "x", "y", "f", "42",
    ];
    let mut rng = Rng64::seed_from_u64(0x50f7);
    for _ in 0..256 {
        let n = rng.gen_range(0..64usize);
        let soup: Vec<&str> = (0..n)
            .map(|_| TOKENS[rng.gen_range(0..TOKENS.len())])
            .collect();
        let src = soup.join(" ");
        let _ = parse_module("soup", &src);
    }
}

#[test]
fn error_spans_are_in_bounds() {
    let mut rng = Rng64::seed_from_u64(0x5ba5);
    for _ in 0..256 {
        let src = random_text(&mut rng, 200);
        if let Err(e) = parse_module("fuzz", &src) {
            assert!(e.span.lo as usize <= src.len() + 1, "{e}\n{src:?}");
            assert!(e.span.lo <= e.span.hi, "{e}\n{src:?}");
        }
    }
}

/// Builds `void f() { int x = ((((1)))); }` with `n` parens.
fn nested_parens(n: usize) -> String {
    let mut src = String::from("void f() { int x = ");
    for _ in 0..n {
        src.push('(');
    }
    src.push('1');
    for _ in 0..n {
        src.push(')');
    }
    src.push_str("; }");
    src
}

/// Builds `void f() { {{...g();...}} }` with `n` nested blocks.
fn nested_blocks(n: usize) -> String {
    let mut src = String::from("void f() { ");
    for _ in 0..n {
        src.push('{');
    }
    src.push_str("g();");
    for _ in 0..n {
        src.push('}');
    }
    src.push_str(" }");
    src
}

#[test]
fn moderate_nesting_parses() {
    assert!(parse_module("deep", &nested_parens(60)).is_ok());
    assert!(parse_module("deep", &nested_blocks(60)).is_ok());
}

#[test]
fn excessive_nesting_is_rejected_not_crashed() {
    // Past the limit the parser must return an error — not overflow the
    // stack.
    let err = parse_module("deep", &nested_parens(5000)).unwrap_err();
    assert!(err.msg.contains("nesting"), "{err}");
    let err = parse_module("deep", &nested_blocks(5000)).unwrap_err();
    assert!(err.msg.contains("nesting"), "{err}");
}
