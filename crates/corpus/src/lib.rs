#![warn(missing_docs)]

//! A deterministic synthetic corpus of 589 "Linux device driver" modules
//! for the Section 7 experiment of *Checking and Inferring Local
//! Non-Aliasing* (PLDI 2003).
//!
//! We cannot ship the 2.4.9 kernel sources the paper analyzed; instead,
//! [`generate`] composes each module from locking idioms with *known*
//! per-mode error signatures (verified against the real analyses in this
//! crate's tests), calibrated so the population reproduces the paper's
//! aggregate results exactly:
//!
//! * 352 clean / 85 genuine-bug / 138 fully-recovered / 14 partially
//!   recovered modules,
//! * 3,277 potential and 3,116 achieved eliminations (95%),
//! * the Figure 7 table row-for-row (under the paper's module names),
//! * a Figure 6-shaped skew of per-module eliminations.
//!
//! See `DESIGN.md` §2 for why this substitution preserves the behaviour
//! the paper measures.

pub mod fuzzgen;
pub mod gen;
pub mod idiom;
pub mod mega;
pub mod plan;
pub mod synth;

pub use fuzzgen::{fuzz_module, FuzzModule};
pub use gen::{generate, partition_range, CorpusStream, GeneratedModule, DEFAULT_SEED};
pub use idiom::{Expected, Idiom};
pub use mega::{mega_edit, mega_module, MegaEdit, MegaEditKind, DEFAULT_MEGA_FUNS};
pub use plan::{Category, FIGURE7, TOTAL_ELIMINATED, TOTAL_MODULES, TOTAL_POTENTIAL};
pub use synth::random_module_source;
