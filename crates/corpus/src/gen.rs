//! Deterministic corpus generation.
//!
//! [`CorpusStream`] produces synthetic driver modules *per index*: module
//! `i` of a seed is generated from its own RNG stream (seeded by mixing
//! the corpus seed with the module's slot), so any module is reproducible
//! without materializing modules `0..i`. [`generate`] — the eager API the
//! paper experiment uses — is just the 589-module stream collected, so
//! the streamed and eager corpora are byte-identical by construction.
//!
//! The 589 slots follow the Section 7 population [`crate::plan`]: each
//! slot is assembled from the idiom catalogue, given a realistic driver
//! name, padded with clean filler, and carries its *expected* per-mode
//! error triple (the sum of its idioms' signatures). Corpora larger than
//! 589 modules tile the plan: slot `589·t + k` of tile `t` re-runs the
//! plan with fresh RNG streams (and `_t{t}`-suffixed Figure 7 names), so
//! a 50k-module corpus keeps the paper's category proportions while every
//! module remains individually addressable.

use crate::idiom::{self, Expected, Idiom};
use crate::plan::{
    decompose_partial, real_bug_counts, recovered_quotas, Category, CLEAN_MODULES, FIGURE7,
    REAL_BUG_MODULES, RECOVERED_MODULES, RECOVERED_WITH_BUGS, TOTAL_MODULES,
};
use localias_ast::{parse_module, Module};
use localias_prng::Rng64;
use std::ops::Range;

/// The default corpus seed (the paper's publication date).
pub const DEFAULT_SEED: u64 = 20030609;

/// One generated driver module.
#[derive(Debug, Clone)]
pub struct GeneratedModule {
    /// Module name (e.g. `net_wavelan_cs`).
    pub name: String,
    /// Which population slice it belongs to.
    pub category: Category,
    /// The error triple the composition predicts.
    pub expect: Expected,
    /// Mini-C source text.
    pub source: String,
}

impl GeneratedModule {
    /// Parses the module's source.
    ///
    /// # Panics
    ///
    /// Panics if the generated source does not parse — a generator bug.
    pub fn parse(&self) -> Module {
        parse_module(&self.name, &self.source)
            .unwrap_or_else(|e| panic!("generated module {} must parse: {e}", self.name))
    }
}

const SUBSYSTEMS: [&str; 8] = [
    "net", "scsi", "usb", "sound", "char", "block", "video", "isdn",
];

const STEMS: [&str; 40] = [
    "eepro",
    "tulip",
    "rtl",
    "ne2k",
    "lance",
    "sym53c",
    "aha",
    "qlogic",
    "fdomain",
    "ultrastor",
    "uhci",
    "ohci",
    "acm",
    "serial",
    "printer",
    "sbawe",
    "opl3",
    "wavefront",
    "cmpci",
    "maestro",
    "vt",
    "ftape",
    "istallion",
    "riscom",
    "floppy",
    "loop",
    "nbd",
    "rd",
    "matrox",
    "aty",
    "tdfx",
    "cirrus",
    "hisax",
    "avmb",
    "icn",
    "pcbit",
    "ray_cs",
    "airo",
    "smc",
    "depca",
];

fn module_name(rng: &mut Rng64, idx: usize) -> String {
    let sub = SUBSYSTEMS[rng.gen_range(0..SUBSYSTEMS.len())];
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    format!("{sub}_{stem}{idx}")
}

/// A small pool of clean filler idioms to make modules look like real
/// drivers rather than minimal reproducers.
fn filler(rng: &mut Rng64, tag: &str, n: usize) -> Vec<Idiom> {
    let mut out = Vec::new();
    for k in 0..n {
        let sub = format!("{tag}_f{k}");
        let idiom = match rng.gen_range(0..7u32) {
            0 => idiom::clean_scalar_pair(&sub),
            1 => idiom::clean_restrict_helper(&sub),
            2 => idiom::clean_math(&sub),
            3 => idiom::clean_restrict_decl(&sub),
            4 => idiom::clean_irq_early_return(&sub),
            5 => idiom::clean_helper_chain(&sub),
            _ => idiom::clean_branchy(&sub),
        };
        out.push(idiom);
    }
    out
}

fn genuine_bugs(rng: &mut Rng64, tag: &str, n: usize) -> Vec<Idiom> {
    (0..n)
        .map(|k| {
            let sub = format!("{tag}_b{k}");
            if rng.gen_bool(0.5) {
                idiom::double_acquire(&sub)
            } else {
                idiom::unbalanced_branch(&sub)
            }
        })
        .collect()
}

fn assemble(name: &str, category: Category, idioms: Vec<Idiom>) -> GeneratedModule {
    let mut source = format!("// synthetic driver module: {name}\n");
    let mut expect = Expected::default();
    for i in idioms {
        source.push_str(&i.source);
        expect = expect + i.expect;
    }
    GeneratedModule {
        name: name.to_string(),
        category,
        expect,
        source,
    }
}

/// SplitMix64 finalizer: decorrelates per-slot RNG streams so module `i`
/// of seed `s` shares no state with module `j` or with seed `s+1`.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG stream id used for the corpus-order permutation (distinct from
/// every per-module stream, which use the module slot as their id).
const PERM_STREAM: u64 = u64::MAX;

/// What the plan says slot `k` (of a 589-slot tile) contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotSpec {
    Clean,
    RealBugs { bugs: usize },
    Recovered { quota: usize, with_bugs: bool },
    Partial { row: usize },
}

/// A seeded, per-index-deterministic corpus.
///
/// The stream fixes a seed and a total module count up front; after that,
/// [`module_at`](CorpusStream::module_at) generates any position in
/// `O(one module)` — the only per-corpus state is the `4`-byte-per-module
/// order permutation, never the modules themselves. This is what lets the
/// bench harness sweep a 100k-module corpus with a bounded in-flight set,
/// and lets `--partition i/N` processes agree on the corpus without
/// exchanging anything but `(seed, total)`.
///
/// # Example
///
/// ```
/// use localias_corpus::{generate, CorpusStream, DEFAULT_SEED};
/// let stream = CorpusStream::paper(DEFAULT_SEED);
/// let eager = generate(DEFAULT_SEED);
/// // Module 17 is reproducible without touching modules 0..17:
/// assert_eq!(stream.module_at(17).source, eager[17].source);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusStream {
    seed: u64,
    /// Stream-position → plan-slot permutation ("directory order").
    perm: Vec<u32>,
    bug_counts: Vec<usize>,
    quotas: Vec<usize>,
}

impl CorpusStream {
    /// A stream of `total` modules for `seed`. Corpus sizes beyond 589
    /// tile the paper plan (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero or exceeds `u32::MAX` modules.
    pub fn new(seed: u64, total: usize) -> CorpusStream {
        assert!(total > 0, "corpus must have at least one module");
        assert!(total <= u32::MAX as usize, "corpus too large");
        // Interleave categories the way a directory listing would: a
        // seeded Fisher–Yates permutation of the slot indices. O(total)
        // index metadata is fine — it's the module ASTs that must never
        // be materialized all at once.
        let mut perm: Vec<u32> = (0..total as u32).collect();
        let mut rng = Rng64::seed_from_u64(mix(seed, PERM_STREAM));
        rng.shuffle(&mut perm);
        CorpusStream {
            seed,
            perm,
            bug_counts: real_bug_counts(),
            quotas: recovered_quotas(),
        }
    }

    /// The paper's 589-module corpus as a stream.
    pub fn paper(seed: u64) -> CorpusStream {
        CorpusStream::new(seed, TOTAL_MODULES)
    }

    /// The corpus seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of modules in the corpus.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `false`: a stream always has at least one module.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Resolves plan slot `slot` to its tile and spec index within the
    /// 589-slot plan. A final short tile of size `s` spreads its `s`
    /// slots proportionally over the plan so every category stays
    /// represented.
    fn tile_spec(&self, slot: usize) -> (usize, usize) {
        let tile = slot / TOTAL_MODULES;
        let local = slot % TOTAL_MODULES;
        let tile_size = (self.len() - tile * TOTAL_MODULES).min(TOTAL_MODULES);
        (tile, local * TOTAL_MODULES / tile_size)
    }

    fn slot_spec(&self, spec: usize) -> SlotSpec {
        debug_assert!(spec < TOTAL_MODULES);
        if spec < CLEAN_MODULES {
            SlotSpec::Clean
        } else if spec < CLEAN_MODULES + REAL_BUG_MODULES {
            SlotSpec::RealBugs {
                bugs: self.bug_counts[spec - CLEAN_MODULES],
            }
        } else if spec < CLEAN_MODULES + REAL_BUG_MODULES + RECOVERED_MODULES {
            let k = spec - CLEAN_MODULES - REAL_BUG_MODULES;
            SlotSpec::Recovered {
                quota: self.quotas[k],
                with_bugs: k < RECOVERED_WITH_BUGS,
            }
        } else {
            SlotSpec::Partial {
                row: spec - CLEAN_MODULES - REAL_BUG_MODULES - RECOVERED_MODULES,
            }
        }
    }

    /// Generates the module at stream `position` (directory order). Cost
    /// is one module, independent of `position` and of the corpus size.
    pub fn module_at(&self, position: usize) -> GeneratedModule {
        let slot = self.perm[position] as usize;
        let (tile, spec) = self.tile_spec(slot);
        let mut rng = Rng64::seed_from_u64(mix(self.seed, slot as u64));
        match self.slot_spec(spec) {
            SlotSpec::Clean => {
                let name = module_name(&mut rng, slot);
                let n = rng.gen_range(2..=5);
                let idioms = filler(&mut rng, &name, n);
                assemble(&name, Category::Clean, idioms)
            }
            SlotSpec::RealBugs { bugs } => {
                let name = module_name(&mut rng, slot);
                let mut idioms = genuine_bugs(&mut rng, &name, bugs);
                let n = rng.gen_range(1..=3);
                idioms.extend(filler(&mut rng, &name, n));
                assemble(&name, Category::RealBugs, idioms)
            }
            SlotSpec::Recovered { quota, with_bugs } => {
                let name = module_name(&mut rng, slot);
                let mut idioms = idiom::weak_update_idioms(&name, quota);
                if with_bugs {
                    let b = rng.gen_range(1..=3);
                    idioms.extend(genuine_bugs(&mut rng, &name, b));
                }
                let n = rng.gen_range(1..=3);
                idioms.extend(filler(&mut rng, &name, n));
                assemble(&name, Category::Recovered, idioms)
            }
            SlotSpec::Partial { row } => {
                let (paper_name, nc, cf, as_) = FIGURE7[row];
                let mix = decompose_partial(nc, cf, as_);
                // Tile 0 carries the paper's exact Figure 7 names; later
                // tiles suffix them to stay unique.
                let name = if tile == 0 {
                    paper_name.to_string()
                } else {
                    format!("{paper_name}_t{tile}")
                };
                let mut idioms = idiom::weak_update_idioms(&name, mix.weak_quota);
                for k in 0..mix.casts {
                    idioms.push(idiom::cast_pair(&format!("{name}_c{k}")));
                }
                for k in 0..mix.crosses {
                    idioms.push(idiom::cross_elements(&format!("{name}_x{k}")));
                }
                idioms.extend(genuine_bugs(&mut rng, &name, mix.bugs));
                let n = rng.gen_range(1..=2);
                idioms.extend(filler(&mut rng, &name, n));
                assemble(&name, Category::Partial, idioms)
            }
        }
    }

    /// Iterates the whole corpus in stream order.
    pub fn iter(&self) -> impl Iterator<Item = GeneratedModule> + '_ {
        self.range(0..self.len())
    }

    /// Iterates the stream positions in `range`.
    ///
    /// # Panics
    ///
    /// Panics (inside the iterator) if the range reaches past the end.
    pub fn range(&self, range: Range<usize>) -> impl Iterator<Item = GeneratedModule> + '_ {
        range.map(move |p| self.module_at(p))
    }

    /// The stream positions partition `index` of `count` covers:
    /// contiguous, disjoint, and jointly exhaustive ranges, balanced to
    /// within one module.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    pub fn partition(&self, index: usize, count: usize) -> Range<usize> {
        partition_range(self.len(), index, count)
    }
}

/// Splits `0..total` into `count` contiguous near-equal ranges and
/// returns the `index`-th: `[index·total/count, (index+1)·total/count)`.
///
/// # Panics
///
/// Panics if `count` is zero or `index >= count`.
pub fn partition_range(total: usize, index: usize, count: usize) -> Range<usize> {
    assert!(count > 0, "partition count must be nonzero");
    assert!(index < count, "partition index {index} out of {count}");
    (index * total / count)..((index + 1) * total / count)
}

/// Generates the 589-module corpus for `seed` eagerly: exactly
/// [`CorpusStream::paper`] collected, so the eager and streamed corpora
/// are byte-identical by construction.
///
/// # Example
///
/// ```
/// use localias_corpus::{generate, DEFAULT_SEED};
/// let corpus = generate(DEFAULT_SEED);
/// assert_eq!(corpus.len(), 589);
/// // Deterministic:
/// assert_eq!(generate(DEFAULT_SEED)[17].source, corpus[17].source);
/// ```
pub fn generate(seed: u64) -> Vec<GeneratedModule> {
    let corpus: Vec<GeneratedModule> = CorpusStream::paper(seed).iter().collect();
    assert_eq!(corpus.len(), TOTAL_MODULES);
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PARTIAL_MODULES, TOTAL_ELIMINATED, TOTAL_POTENTIAL};

    #[test]
    fn corpus_has_the_papers_population() {
        let corpus = generate(DEFAULT_SEED);
        assert_eq!(corpus.len(), TOTAL_MODULES);
        let count = |c: Category| corpus.iter().filter(|m| m.category == c).count();
        assert_eq!(count(Category::Clean), 352);
        assert_eq!(count(Category::RealBugs), 85);
        assert_eq!(count(Category::Recovered), 138);
        assert_eq!(count(Category::Partial), 14);
    }

    #[test]
    fn expected_totals_match_the_paper() {
        let corpus = generate(DEFAULT_SEED);
        let potential: usize = corpus.iter().map(|m| m.expect.potential()).sum();
        let eliminated: usize = corpus.iter().map(|m| m.expect.eliminated()).sum();
        assert_eq!(potential, TOTAL_POTENTIAL);
        assert_eq!(eliminated, TOTAL_ELIMINATED);
    }

    #[test]
    fn expected_categories_are_consistent() {
        for m in generate(DEFAULT_SEED) {
            let e = m.expect;
            match m.category {
                Category::Clean => assert_eq!((e.no_confine, e.confine, e.all_strong), (0, 0, 0)),
                Category::RealBugs => {
                    assert!(e.no_confine > 0);
                    assert_eq!(e.no_confine, e.all_strong);
                    assert_eq!(e.confine, e.all_strong);
                }
                Category::Recovered => {
                    assert!(e.no_confine > e.all_strong, "{}: {e}", m.name);
                    assert_eq!(e.confine, e.all_strong, "{}: {e}", m.name);
                }
                Category::Partial => {
                    assert!(e.confine > e.all_strong, "{}: {e}", m.name);
                    assert!(e.no_confine > e.confine, "{}: {e}", m.name);
                }
            }
        }
    }

    #[test]
    fn figure7_modules_present_with_exact_targets() {
        let corpus = generate(DEFAULT_SEED);
        for &(name, nc, cf, as_) in &FIGURE7 {
            let m = corpus
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(
                (m.expect.no_confine, m.expect.confine, m.expect.all_strong),
                (nc, cf, as_),
                "{name}"
            );
        }
    }

    #[test]
    fn all_modules_parse() {
        for m in generate(DEFAULT_SEED) {
            let parsed = m.parse();
            assert!(!parsed.items.is_empty(), "{} is empty", m.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
        }
        let c = generate(43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.source != y.source));
    }

    #[test]
    fn streamed_equals_eager_per_index() {
        let eager = generate(DEFAULT_SEED);
        let stream = CorpusStream::paper(DEFAULT_SEED);
        assert_eq!(stream.len(), eager.len());
        // Random access, out of order, must agree byte-for-byte with the
        // eager corpus — per-index determinism.
        for &p in &[588usize, 0, 17, 300, 101] {
            let m = stream.module_at(p);
            assert_eq!(m.name, eager[p].name);
            assert_eq!(m.source, eager[p].source);
            assert_eq!(m.category, eager[p].category);
        }
    }

    #[test]
    fn partitions_cover_the_stream_exactly() {
        let stream = CorpusStream::new(7, 100);
        for count in [1usize, 2, 3, 7] {
            let mut positions = Vec::new();
            for i in 0..count {
                let r = stream.partition(i, count);
                positions.extend(r.clone());
                // Balanced to within one module.
                assert!(r.len() >= 100 / count && r.len() <= 100 / count + 1);
            }
            assert_eq!(positions, (0..100).collect::<Vec<_>>(), "count={count}");
        }
    }

    #[test]
    fn partitioned_stream_reassembles_the_corpus() {
        let stream = CorpusStream::paper(DEFAULT_SEED);
        let eager = generate(DEFAULT_SEED);
        let mut reassembled = Vec::new();
        for i in 0..3 {
            reassembled.extend(stream.range(stream.partition(i, 3)));
        }
        assert_eq!(reassembled.len(), eager.len());
        for (x, y) in reassembled.iter().zip(&eager) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn scaled_corpus_tiles_the_plan() {
        // 2 full tiles + a short third: categories stay proportional and
        // names stay unique.
        let total = 2 * TOTAL_MODULES + 200;
        let stream = CorpusStream::new(DEFAULT_SEED, total);
        assert_eq!(stream.len(), total);
        let mut names = std::collections::HashSet::new();
        let mut counts = [0usize; 4];
        for m in stream.iter() {
            assert!(names.insert(m.name.clone()), "duplicate name {}", m.name);
            counts[match m.category {
                Category::Clean => 0,
                Category::RealBugs => 1,
                Category::Recovered => 2,
                Category::Partial => 3,
            }] += 1;
        }
        // Each full tile contributes the paper's exact populations; the
        // short tile contributes proportionally.
        assert!(counts[0] >= 2 * 352 && counts[0] <= 2 * 352 + 200);
        assert!(counts[1] >= 2 * 85);
        assert!(counts[2] >= 2 * 138);
        assert!(counts[3] >= 2 * PARTIAL_MODULES);
        // The short tile still reaches every category.
        let tile2: Vec<Category> = (2 * TOTAL_MODULES..total)
            .map(|slot| {
                let (_, spec) = stream.tile_spec(slot);
                stream.slot_spec(spec)
            })
            .map(|s| match s {
                SlotSpec::Clean => Category::Clean,
                SlotSpec::RealBugs { .. } => Category::RealBugs,
                SlotSpec::Recovered { .. } => Category::Recovered,
                SlotSpec::Partial { .. } => Category::Partial,
            })
            .collect();
        for c in [
            Category::Clean,
            Category::RealBugs,
            Category::Recovered,
            Category::Partial,
        ] {
            assert!(tile2.contains(&c), "{c:?} missing from short tile");
        }
        // Scaled modules parse too (sample).
        for p in [0usize, TOTAL_MODULES, total - 1] {
            let m = stream.module_at(p);
            assert!(!m.parse().items.is_empty());
        }
    }

    /// The critical calibration check: for a sample of modules across all
    /// categories, the *measured* error counts under all three modes must
    /// equal the composition's prediction. (The full 589-module sweep is
    /// the experiment itself — `localias-bench`'s `summary` binary.)
    #[test]
    fn measured_counts_match_expectations_on_a_sample() {
        use localias_cqual::{check_locks, Mode};
        let corpus = generate(DEFAULT_SEED);
        let mut checked = [0usize; 4];
        for m in &corpus {
            let slot = match m.category {
                Category::Clean => 0,
                Category::RealBugs => 1,
                Category::Recovered => 2,
                Category::Partial => 3,
            };
            if checked[slot] >= 4 {
                continue;
            }
            checked[slot] += 1;
            let parsed = m.parse();
            let nc = check_locks(&parsed, Mode::NoConfine).error_count();
            let cf = check_locks(&parsed, Mode::Confine).error_count();
            let as_ = check_locks(&parsed, Mode::AllStrong).error_count();
            assert_eq!(
                (nc, cf, as_),
                (m.expect.no_confine, m.expect.confine, m.expect.all_strong),
                "{} ({:?}):\n{}",
                m.name,
                m.category,
                m.source
            );
        }
        assert_eq!(checked, [4, 4, 4, 4]);
    }
}
