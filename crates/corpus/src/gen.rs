//! Deterministic corpus generation.
//!
//! [`generate`] produces the 589 synthetic driver modules of the Section
//! 7 experiment: each module is assembled from the idiom catalogue
//! according to the population [`crate::plan`], given a realistic driver
//! name, padded with clean filler, and carries its *expected* per-mode
//! error triple (the sum of its idioms' signatures). Generation is fully
//! deterministic in the seed.

use crate::idiom::{self, Expected, Idiom};
use crate::plan::{
    decompose_partial, real_bug_counts, recovered_quotas, Category, CLEAN_MODULES, FIGURE7,
    RECOVERED_WITH_BUGS, TOTAL_MODULES,
};
use localias_ast::{parse_module, Module};
use localias_prng::Rng64;

/// The default corpus seed (the paper's publication date).
pub const DEFAULT_SEED: u64 = 20030609;

/// One generated driver module.
#[derive(Debug, Clone)]
pub struct GeneratedModule {
    /// Module name (e.g. `net_wavelan_cs`).
    pub name: String,
    /// Which population slice it belongs to.
    pub category: Category,
    /// The error triple the composition predicts.
    pub expect: Expected,
    /// Mini-C source text.
    pub source: String,
}

impl GeneratedModule {
    /// Parses the module's source.
    ///
    /// # Panics
    ///
    /// Panics if the generated source does not parse — a generator bug.
    pub fn parse(&self) -> Module {
        parse_module(&self.name, &self.source)
            .unwrap_or_else(|e| panic!("generated module {} must parse: {e}", self.name))
    }
}

const SUBSYSTEMS: [&str; 8] = [
    "net", "scsi", "usb", "sound", "char", "block", "video", "isdn",
];

const STEMS: [&str; 40] = [
    "eepro",
    "tulip",
    "rtl",
    "ne2k",
    "lance",
    "sym53c",
    "aha",
    "qlogic",
    "fdomain",
    "ultrastor",
    "uhci",
    "ohci",
    "acm",
    "serial",
    "printer",
    "sbawe",
    "opl3",
    "wavefront",
    "cmpci",
    "maestro",
    "vt",
    "ftape",
    "istallion",
    "riscom",
    "floppy",
    "loop",
    "nbd",
    "rd",
    "matrox",
    "aty",
    "tdfx",
    "cirrus",
    "hisax",
    "avmb",
    "icn",
    "pcbit",
    "ray_cs",
    "airo",
    "smc",
    "depca",
];

fn module_name(rng: &mut Rng64, idx: usize) -> String {
    let sub = SUBSYSTEMS[rng.gen_range(0..SUBSYSTEMS.len())];
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    format!("{sub}_{stem}{idx}")
}

/// A small pool of clean filler idioms to make modules look like real
/// drivers rather than minimal reproducers.
fn filler(rng: &mut Rng64, tag: &str, n: usize) -> Vec<Idiom> {
    let mut out = Vec::new();
    for k in 0..n {
        let sub = format!("{tag}_f{k}");
        let idiom = match rng.gen_range(0..7u32) {
            0 => idiom::clean_scalar_pair(&sub),
            1 => idiom::clean_restrict_helper(&sub),
            2 => idiom::clean_math(&sub),
            3 => idiom::clean_restrict_decl(&sub),
            4 => idiom::clean_irq_early_return(&sub),
            5 => idiom::clean_helper_chain(&sub),
            _ => idiom::clean_branchy(&sub),
        };
        out.push(idiom);
    }
    out
}

fn genuine_bugs(rng: &mut Rng64, tag: &str, n: usize) -> Vec<Idiom> {
    (0..n)
        .map(|k| {
            let sub = format!("{tag}_b{k}");
            if rng.gen_bool(0.5) {
                idiom::double_acquire(&sub)
            } else {
                idiom::unbalanced_branch(&sub)
            }
        })
        .collect()
}

fn assemble(name: &str, category: Category, idioms: Vec<Idiom>) -> GeneratedModule {
    let mut source = format!("// synthetic driver module: {name}\n");
    let mut expect = Expected::default();
    for i in idioms {
        source.push_str(&i.source);
        expect = expect + i.expect;
    }
    GeneratedModule {
        name: name.to_string(),
        category,
        expect,
        source,
    }
}

/// Generates the 589-module corpus for `seed`.
///
/// # Example
///
/// ```
/// use localias_corpus::{generate, DEFAULT_SEED};
/// let corpus = generate(DEFAULT_SEED);
/// assert_eq!(corpus.len(), 589);
/// // Deterministic:
/// assert_eq!(generate(DEFAULT_SEED)[17].source, corpus[17].source);
/// ```
pub fn generate(seed: u64) -> Vec<GeneratedModule> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut modules = Vec::with_capacity(TOTAL_MODULES);
    let mut idx = 0;

    // Clean modules.
    for _ in 0..CLEAN_MODULES {
        let name = module_name(&mut rng, idx);
        idx += 1;
        let n = rng.gen_range(2..=5);
        let idioms = filler(&mut rng, &name, n);
        modules.push(assemble(&name, Category::Clean, idioms));
    }

    // Real-bug modules.
    for bugs in real_bug_counts() {
        let name = module_name(&mut rng, idx);
        idx += 1;
        let mut idioms = genuine_bugs(&mut rng, &name, bugs);
        let n = rng.gen_range(1..=3);
        idioms.extend(filler(&mut rng, &name, n));
        modules.push(assemble(&name, Category::RealBugs, idioms));
    }

    // Fully recovered modules.
    let quotas = recovered_quotas();
    for (k, quota) in quotas.into_iter().enumerate() {
        let name = module_name(&mut rng, idx);
        idx += 1;
        let mut idioms = idiom::weak_update_idioms(&name, quota);
        if k < RECOVERED_WITH_BUGS {
            let b = rng.gen_range(1..=3);
            idioms.extend(genuine_bugs(&mut rng, &name, b));
        }
        let n = rng.gen_range(1..=3);
        idioms.extend(filler(&mut rng, &name, n));
        modules.push(assemble(&name, Category::Recovered, idioms));
    }

    // Figure 7 (partially recovered) modules, under their paper names.
    for &(paper_name, nc, cf, as_) in &FIGURE7 {
        let mix = decompose_partial(nc, cf, as_);
        let name = paper_name.to_string();
        let mut idioms = idiom::weak_update_idioms(&name, mix.weak_quota);
        for k in 0..mix.casts {
            idioms.push(idiom::cast_pair(&format!("{name}_c{k}")));
        }
        for k in 0..mix.crosses {
            idioms.push(idiom::cross_elements(&format!("{name}_x{k}")));
        }
        idioms.extend(genuine_bugs(&mut rng, &name, mix.bugs));
        let n = rng.gen_range(1..=2);
        idioms.extend(filler(&mut rng, &name, n));
        modules.push(assemble(&name, Category::Partial, idioms));
    }

    // Interleave categories the way a directory listing would.
    rng.shuffle(&mut modules);
    assert_eq!(modules.len(), TOTAL_MODULES);
    modules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{TOTAL_ELIMINATED, TOTAL_POTENTIAL};

    #[test]
    fn corpus_has_the_papers_population() {
        let corpus = generate(DEFAULT_SEED);
        assert_eq!(corpus.len(), TOTAL_MODULES);
        let count = |c: Category| corpus.iter().filter(|m| m.category == c).count();
        assert_eq!(count(Category::Clean), 352);
        assert_eq!(count(Category::RealBugs), 85);
        assert_eq!(count(Category::Recovered), 138);
        assert_eq!(count(Category::Partial), 14);
    }

    #[test]
    fn expected_totals_match_the_paper() {
        let corpus = generate(DEFAULT_SEED);
        let potential: usize = corpus.iter().map(|m| m.expect.potential()).sum();
        let eliminated: usize = corpus.iter().map(|m| m.expect.eliminated()).sum();
        assert_eq!(potential, TOTAL_POTENTIAL);
        assert_eq!(eliminated, TOTAL_ELIMINATED);
    }

    #[test]
    fn expected_categories_are_consistent() {
        for m in generate(DEFAULT_SEED) {
            let e = m.expect;
            match m.category {
                Category::Clean => assert_eq!((e.no_confine, e.confine, e.all_strong), (0, 0, 0)),
                Category::RealBugs => {
                    assert!(e.no_confine > 0);
                    assert_eq!(e.no_confine, e.all_strong);
                    assert_eq!(e.confine, e.all_strong);
                }
                Category::Recovered => {
                    assert!(e.no_confine > e.all_strong, "{}: {e}", m.name);
                    assert_eq!(e.confine, e.all_strong, "{}: {e}", m.name);
                }
                Category::Partial => {
                    assert!(e.confine > e.all_strong, "{}: {e}", m.name);
                    assert!(e.no_confine > e.confine, "{}: {e}", m.name);
                }
            }
        }
    }

    #[test]
    fn figure7_modules_present_with_exact_targets() {
        let corpus = generate(DEFAULT_SEED);
        for &(name, nc, cf, as_) in &FIGURE7 {
            let m = corpus
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(
                (m.expect.no_confine, m.expect.confine, m.expect.all_strong),
                (nc, cf, as_),
                "{name}"
            );
        }
    }

    #[test]
    fn all_modules_parse() {
        for m in generate(DEFAULT_SEED) {
            let parsed = m.parse();
            assert!(!parsed.items.is_empty(), "{} is empty", m.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.source, y.source);
        }
        let c = generate(43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.source != y.source));
    }

    /// The critical calibration check: for a sample of modules across all
    /// categories, the *measured* error counts under all three modes must
    /// equal the composition's prediction. (The full 589-module sweep is
    /// the experiment itself — `localias-bench`'s `summary` binary.)
    #[test]
    fn measured_counts_match_expectations_on_a_sample() {
        use localias_cqual::{check_locks, Mode};
        let corpus = generate(DEFAULT_SEED);
        let mut checked = [0usize; 4];
        for m in &corpus {
            let slot = match m.category {
                Category::Clean => 0,
                Category::RealBugs => 1,
                Category::Recovered => 2,
                Category::Partial => 3,
            };
            if checked[slot] >= 4 {
                continue;
            }
            checked[slot] += 1;
            let parsed = m.parse();
            let nc = check_locks(&parsed, Mode::NoConfine).error_count();
            let cf = check_locks(&parsed, Mode::Confine).error_count();
            let as_ = check_locks(&parsed, Mode::AllStrong).error_count();
            assert_eq!(
                (nc, cf, as_),
                (m.expect.no_confine, m.expect.confine, m.expect.all_strong),
                "{} ({:?}):\n{}",
                m.name,
                m.category,
                m.source
            );
        }
        assert_eq!(checked, [4, 4, 4, 4]);
    }
}
