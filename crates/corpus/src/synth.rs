//! Random well-formed Mini-C programs, for property tests, fuzzing and
//! precision comparisons.
//!
//! The generator is a seeded grammar walk that only references names in
//! scope; programs parse, type-check (modulo intentional pointer-heavy
//! shapes) and exercise every analysis feature: globals, pointers, heap
//! allocation, lock arrays, loops with `break`/`continue`, `restrict` and
//! `confine` scopes.

use localias_prng::Rng64;

/// Stateful random program generator: emits statements that only mention
/// names in scope.
struct GenCtx {
    rng: Rng64,
    /// Names of `int` locals in scope (per nesting frame).
    ints: Vec<Vec<String>>,
    /// Names of `int*` locals in scope.
    ptrs: Vec<Vec<String>>,
    next_var: usize,
    depth: usize,
}

impl GenCtx {
    fn new(seed: u64) -> Self {
        GenCtx {
            rng: Rng64::seed_from_u64(seed),
            ints: vec![vec!["gi".into()]],
            ptrs: vec![vec!["gp".into()]],
            next_var: 0,
            depth: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next_var += 1;
        format!("{prefix}{}", self.next_var)
    }

    fn pick<'a>(&mut self, frames: &'a [Vec<String>]) -> Option<&'a String> {
        let all: Vec<&String> = frames.iter().flatten().collect();
        if all.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..all.len());
        Some(all[i])
    }

    fn int_expr(&mut self) -> String {
        match self.rng.gen_range(0..4u32) {
            0 => format!("{}", self.rng.gen_range(0..100)),
            1 => {
                let ints = self.ints.clone();
                self.pick(&ints).cloned().unwrap_or_else(|| "0".into())
            }
            2 => {
                let ptrs = self.ptrs.clone();
                match self.pick(&ptrs) {
                    Some(p) => format!("(*{p})"),
                    None => "1".into(),
                }
            }
            _ => {
                let a = self.rng.gen_range(0..10);
                let b = self.rng.gen_range(1..10);
                format!("({a} + {b})")
            }
        }
    }

    fn ptr_expr(&mut self) -> String {
        match self.rng.gen_range(0..4u32) {
            0 => "(&gi)".into(),
            1 => "(&garr[i])".into(),
            2 => {
                let ptrs = self.ptrs.clone();
                self.pick(&ptrs).cloned().unwrap_or_else(|| "gp".into())
            }
            _ => format!("new ({})", self.int_expr()),
        }
    }

    fn lock_expr(&mut self) -> String {
        if self.rng.gen_bool(0.5) {
            "&gmu".into()
        } else {
            "&glocks[i]".into()
        }
    }

    fn stmt(&mut self, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match self.rng.gen_range(0..10u32) {
            0 => {
                let e = self.int_expr();
                out.push_str(&format!("{pad}gi = {e};\n"));
            }
            1 => {
                let ptrs = self.ptrs.clone();
                if let Some(p) = self.pick(&ptrs).cloned() {
                    let e = self.int_expr();
                    out.push_str(&format!("{pad}*{p} = {e};\n"));
                }
            }
            2 => {
                let name = self.fresh("p");
                let init = self.ptr_expr();
                out.push_str(&format!("{pad}int *{name} = {init};\n"));
                self.ptrs.last_mut().unwrap().push(name);
            }
            3 => {
                let name = self.fresh("n");
                let init = self.int_expr();
                out.push_str(&format!("{pad}int {name} = {init};\n"));
                self.ints.last_mut().unwrap().push(name);
            }
            4 if self.depth < 2 => {
                let cond = self.int_expr();
                out.push_str(&format!("{pad}if ({cond} < 5) {{\n"));
                self.scoped(out, indent + 1, 2);
                out.push_str(&format!("{pad}}} else {{\n"));
                self.scoped(out, indent + 1, 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            5 if self.depth < 2 => {
                out.push_str(&format!("{pad}while (gi < 3) {{\n"));
                self.scoped(out, indent + 1, 2);
                match self.rng.gen_range(0..4u32) {
                    0 => out.push_str(&format!("{pad}    if (gi == 2) {{ break; }}\n")),
                    1 => out.push_str(&format!(
                        "{pad}    gi = gi + 1;\n{pad}    if (gi == 1) {{ continue; }}\n"
                    )),
                    _ => {}
                }
                out.push_str(&format!("{pad}gi = gi + 1;\n{pad}}}\n"));
            }
            6 if self.depth < 2 => {
                let name = self.fresh("r");
                let init = self.ptr_expr();
                out.push_str(&format!("{pad}restrict {name} = {init} {{\n"));
                self.ptrs.push(vec![name.clone()]);
                self.ints.push(Vec::new());
                self.depth += 1;
                let n = self.rng.gen_range(1..=2);
                for _ in 0..n {
                    self.stmt(out, indent + 1);
                }
                self.depth -= 1;
                self.ptrs.pop();
                self.ints.pop();
                out.push_str(&format!("{pad}}}\n"));
            }
            7 if self.depth < 2 => {
                let lk = self.lock_expr();
                out.push_str(&format!("{pad}confine ({lk}) {{\n"));
                out.push_str(&format!("{pad}    spin_lock({lk});\n"));
                self.scoped(out, indent + 1, 1);
                out.push_str(&format!("{pad}    spin_unlock({lk});\n{pad}}}\n"));
            }
            8 => {
                let lk = self.lock_expr();
                out.push_str(&format!("{pad}spin_lock({lk});\n"));
                out.push_str(&format!("{pad}work();\n"));
                out.push_str(&format!("{pad}spin_unlock({lk});\n"));
            }
            _ => {
                out.push_str(&format!("{pad}work();\n"));
            }
        }
    }

    fn scoped(&mut self, out: &mut String, indent: usize, n: usize) {
        self.ptrs.push(Vec::new());
        self.ints.push(Vec::new());
        self.depth += 1;
        for _ in 0..n {
            self.stmt(out, indent);
        }
        self.depth -= 1;
        self.ptrs.pop();
        self.ints.pop();
    }
}

/// Generates a random well-formed module.
pub fn random_module_source(seed: u64, stmts: usize) -> String {
    let mut ctx = GenCtx::new(seed);
    let mut body = String::new();
    for _ in 0..stmts {
        ctx.stmt(&mut body, 1);
    }
    format!(
        r#"
int gi;
int *gp;
int garr[4];
lock gmu;
lock glocks[4];
extern void work();
void f(int i) {{
{body}}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_modules_parse() {
        for seed in 0..50u64 {
            let src = random_module_source(seed, 10);
            localias_ast::parse_module("synth", &src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_module_source(7, 8), random_module_source(7, 8));
        assert_ne!(random_module_source(7, 8), random_module_source(8, 8));
    }

    #[test]
    fn statement_count_scales_output() {
        let small = random_module_source(1, 1);
        let large = random_module_source(1, 30);
        assert!(large.len() > small.len());
    }
}
