//! Locking idioms with known per-mode error signatures.
//!
//! Every idiom is a self-contained set of top-level items (its own
//! globals and functions, name-spaced by a tag), and contributes an exact
//! `(no-confine, confine-inference, all-strong)` error triple. Module
//! totals are therefore the sum of their idioms' triples — the property
//! the Section 7 calibration relies on. Each signature below is verified
//! against the real analyses by this crate's tests.

use std::fmt;

/// Expected lock type errors for one module (or idiom) under the three
/// analysis modes of the Section 7 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Expected {
    /// Without confine inference (weak updates on shared locations).
    pub no_confine: usize,
    /// With confine inference.
    pub confine: usize,
    /// Assuming every update is strong (the upper bound on recovery).
    pub all_strong: usize,
}

impl std::ops::Add for Expected {
    type Output = Expected;

    /// Componentwise sum — module totals are the sums of their idioms.
    fn add(self, other: Expected) -> Expected {
        Expected {
            no_confine: self.no_confine + other.no_confine,
            confine: self.confine + other.confine,
            all_strong: self.all_strong + other.all_strong,
        }
    }
}

impl Expected {
    /// Spurious errors confine inference can potentially eliminate.
    pub fn potential(self) -> usize {
        self.no_confine - self.all_strong
    }

    /// Spurious errors confine inference actually eliminates.
    pub fn eliminated(self) -> usize {
        self.no_confine - self.confine
    }
}

impl fmt::Display for Expected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.no_confine, self.confine, self.all_strong
        )
    }
}

/// One generated idiom: source items plus its expected signature.
#[derive(Debug, Clone)]
pub struct Idiom {
    /// Top-level Mini-C items (globals, structs, functions).
    pub source: String,
    /// Expected error triple.
    pub expect: Expected,
}

fn idiom(source: String, no_confine: usize, confine: usize, all_strong: usize) -> Idiom {
    Idiom {
        source,
        expect: Expected {
            no_confine,
            confine,
            all_strong,
        },
    }
}

// ---- Clean idioms (0/0/0) ---------------------------------------------------

/// A driver routine guarding shared state with a single static lock —
/// a single-object location, strongly updatable without any confine.
pub fn clean_scalar_pair(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
int {tag}_count;
extern void {tag}_io();
void {tag}_update() {{
    spin_lock(&{tag}_mu);
    {tag}_count = {tag}_count + 1;
    {tag}_io();
    spin_unlock(&{tag}_mu);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// The paper's Figure 1 pattern with a `restrict`-qualified parameter:
/// the callee works on a single-object copy of whatever lock it is given.
pub fn clean_restrict_helper(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_work();
void {tag}_with(lock *restrict l) {{
    spin_lock(l);
    {tag}_work();
    spin_unlock(l);
}}
void {tag}_entry(int i) {{
    {tag}_with(&{tag}_locks[i]);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// Lock-free bookkeeping code (buffers, counters, checksums).
pub fn clean_math(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
int {tag}_buf[16];
int {tag}_len;
int {tag}_sum(int n) {{
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {{
        acc = acc + {tag}_buf[i];
    }}
    return acc;
}}
void {tag}_reset(int n) {{
    for (int i = 0; i < n; i = i + 1) {{
        {tag}_buf[i] = 0;
    }}
    {tag}_len = 0;
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// A device struct with a scalar lock guarding its state — balanced
/// branches under the lock.
pub fn clean_branchy(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_state_mu;
int {tag}_state;
extern void {tag}_tx();
extern void {tag}_rx();
void {tag}_irq(int kind) {{
    spin_lock(&{tag}_state_mu);
    if (kind == 1) {{
        {tag}_tx();
        {tag}_state = 1;
    }} else {{
        {tag}_rx();
        {tag}_state = 2;
    }}
    spin_unlock(&{tag}_state_mu);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// A hand-annotated driver using the C99-style `restrict` declaration:
/// already clean without inference.
pub fn clean_restrict_decl(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_poll();
void {tag}_service(int i) {{
    restrict lock *l = &{tag}_locks[i];
    spin_lock(l);
    {tag}_poll();
    spin_unlock(l);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// An interrupt-handler shape: early return on a spurious interrupt, the
/// main path does guarded work — all under a scalar lock, all balanced.
pub fn clean_irq_early_return(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_irq_mu;
int {tag}_pending;
extern int {tag}_spurious();
extern void {tag}_ack();
void {tag}_isr() {{
    spin_lock(&{tag}_irq_mu);
    if ({tag}_spurious()) {{
        spin_unlock(&{tag}_irq_mu);
        return;
    }}
    {tag}_pending = {tag}_pending + 1;
    {tag}_ack();
    spin_unlock(&{tag}_irq_mu);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// A two-level helper chain: the leaf takes a `restrict` lock parameter,
/// the middle helper forwards it, the entry point passes an array element.
pub fn clean_helper_chain(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_body();
void {tag}_leaf(lock *restrict l) {{
    spin_lock(l);
    {tag}_body();
    spin_unlock(l);
}}
void {tag}_mid(lock *restrict l, int times) {{
    for (int k = 0; k < times; k = k + 1) {{
        {tag}_leaf(l);
    }}
}}
void {tag}_entry(int i) {{
    {tag}_mid(&{tag}_locks[i], 2);
}}
"#
        ),
        0,
        0,
        0,
    )
}

// ---- Weak-update idioms (recoverable by confine) ----------------------------

/// `k` sequential lock/unlock pairs on one element of a per-device lock
/// array, in one function. Weak updates verify only the very first
/// acquire; confine inference recovers everything.
///
/// Signature: `(2k-1, 0, 0)`.
pub fn straight_pairs(tag: &str, k: usize) -> Idiom {
    assert!(k >= 1);
    let mut body = String::new();
    for step in 0..k {
        body.push_str(&format!(
            "    spin_lock(&{tag}_locks[i]);\n    {tag}_step{step}();\n    spin_unlock(&{tag}_locks[i]);\n"
        ));
    }
    let mut externs = String::new();
    for step in 0..k {
        externs.push_str(&format!("extern void {tag}_step{step}();\n"));
    }
    idiom(
        format!(
            r#"
lock {tag}_locks[16];
{externs}void {tag}_service(int i) {{
{body}}}
"#
        ),
        2 * k - 1,
        0,
        0,
    )
}

/// A lock/unlock pair inside a loop over the device array. The loop-head
/// join drives the weak state to ⊤, failing both sites; confine inference
/// recovers both.
///
/// Signature: `(2, 0, 0)`.
pub fn loop_pair(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[16];
extern void {tag}_flush();
void {tag}_flush_all(int n) {{
    for (int i = 0; i < n; i = i + 1) {{
        spin_lock(&{tag}_locks[i]);
        {tag}_flush();
        spin_unlock(&{tag}_locks[i]);
    }}
}}
"#
        ),
        2,
        0,
        0,
    )
}

/// `k` pairs through a device-struct field (`&d->mu`), field-based
/// aliasing conflating all instances.
///
/// Signature: `(2k-1, 0, 0)`.
pub fn struct_pairs(tag: &str, k: usize) -> Idiom {
    assert!(k >= 1);
    let mut body = String::new();
    for step in 0..k {
        body.push_str(&format!(
            "    spin_lock(&d->mu);\n    d->n = d->n + {step};\n    spin_unlock(&d->mu);\n"
        ));
    }
    idiom(
        format!(
            r#"
struct {tag}_dev {{ lock mu; int n; }};
struct {tag}_dev {tag}_devs[8];
void {tag}_touch(int i) {{
    struct {tag}_dev *d = &{tag}_devs[i];
{body}}}
"#
        ),
        2 * k - 1,
        0,
        0,
    )
}

/// A device-scan loop with an early `break` on the first hit — each
/// iteration locks one device struct's lock, through field-based
/// aliasing. Weak updates fail the loop-carried state; confine inference
/// covers the whole body including the break path.
///
/// Signature: `(3, 0, 0)`.
pub fn scan_loop(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
struct {tag}_dev {{ lock mu; int id; }};
struct {tag}_dev {tag}_devs[8];
extern void {tag}_claim();
void {tag}_find(int want, int n) {{
    for (int i = 0; i < n; i = i + 1) {{
        struct {tag}_dev *d = &{tag}_devs[i];
        spin_lock(&d->mu);
        if (d->id == want) {{
            {tag}_claim();
            spin_unlock(&d->mu);
            break;
        }}
        spin_unlock(&d->mu);
    }}
}}
"#
        ),
        3,
        0,
        0,
    )
}

// ---- Confine-resistant idioms (Figure 7 failure modes) ----------------------

/// The lock pointer is laundered through an incompatible cast before the
/// pair; the may-alias analysis loses track (taint) and confine inference
/// cannot verify the candidate. All-strong still verifies both sites.
///
/// Signature: `(1, 1, 0)`.
pub fn cast_pair(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
int {tag}_cookie;
extern void {tag}_dma();
void {tag}_start(int i) {{
    {tag}_cookie = (int) (&{tag}_locks[i]);
    spin_lock(&{tag}_locks[i]);
    {tag}_dma();
    spin_unlock(&{tag}_locks[i]);
}}
"#
        ),
        1,
        1,
        0,
    )
}

/// Hand-over-hand acquisition of two elements of the same array: the two
/// names share one abstract location. The inner section (`j`) is still
/// confinable — its scope contains no stale-alias access — but the outer
/// one is not, and even all-strong updates cannot tell the elements
/// apart, so two sites stay unverifiable in every recovery mode.
///
/// Signature: `(3, 2, 2)`.
pub fn cross_elements(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_move();
void {tag}_transfer(int i, int j) {{
    spin_lock(&{tag}_locks[i]);
    spin_lock(&{tag}_locks[j]);
    {tag}_move();
    spin_unlock(&{tag}_locks[j]);
    spin_unlock(&{tag}_locks[i]);
}}
"#
        ),
        3,
        2,
        2,
    )
}

// ---- Genuine bugs (1/1/1) ----------------------------------------------------

/// A real double acquire on a scalar lock — reported in every mode.
pub fn double_acquire(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
extern void {tag}_cfg();
void {tag}_init() {{
    spin_lock(&{tag}_mu);
    {tag}_cfg();
    spin_lock(&{tag}_mu);
    spin_unlock(&{tag}_mu);
}}
"#
        ),
        1,
        1,
        1,
    )
}

/// A lock acquired on only one path before an unconditional release — the
/// classic forgotten-else bug.
pub fn unbalanced_branch(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
extern void {tag}_slow();
void {tag}_maybe(int c) {{
    if (c) {{
        spin_lock(&{tag}_mu);
        {tag}_slow();
    }}
    spin_unlock(&{tag}_mu);
}}
"#
        ),
        1,
        1,
        1,
    )
}

// ---- Adversarial idioms (the differential fuzzer's catalog) -----------------
//
// These shapes stress the places where static lock state and dynamic
// lock state can drift apart: multiple locks per object, conditional
// acquire/release correlation, interrupt re-entry, interprocedural
// handoff, aliased release, and recursion. Each still carries an exact
// verified triple so it can also ride in calibrated corpora, but its
// first job is feeding `localias fuzz`, where the interpreter decides
// the ground truth independently of these numbers.

/// A reader/writer lock modeled as a two-lock struct: the write side
/// takes both, the read side only the reader gate. Balanced on every
/// path and dynamically silent; field-based aliasing makes the struct's
/// lock fields weakly-updatable, so three release sites need confine
/// inference to verify.
///
/// Signature: `(3, 0, 0)`.
pub fn rwlock_pair(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
struct {tag}_rw {{ lock r; lock w; }};
struct {tag}_rw {tag}_gate;
int {tag}_shared;
extern void {tag}_publish();
int {tag}_read() {{
    spin_lock(&{tag}_gate.r);
    int v = {tag}_shared;
    spin_unlock(&{tag}_gate.r);
    return v;
}}
void {tag}_write(int v) {{
    spin_lock(&{tag}_gate.r);
    spin_lock(&{tag}_gate.w);
    {tag}_shared = v;
    {tag}_publish();
    spin_unlock(&{tag}_gate.w);
    spin_unlock(&{tag}_gate.r);
}}
"#
        ),
        3,
        0,
        0,
    )
}

/// A broken rwlock downgrade: the writer releases the write lock, then
/// the "downgrade" path releases it *again* before dropping the reader
/// gate. A genuine conditional double release — reported in every mode
/// (plus two weak-update release sites confine inference recovers), and
/// dynamically faulting whenever the downgrade path runs.
///
/// Signature: `(3, 1, 1)`.
pub fn rwlock_bad_downgrade(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
struct {tag}_rw {{ lock r; lock w; }};
struct {tag}_rw {tag}_gate;
int {tag}_shared;
void {tag}_write_downgrade(int d) {{
    spin_lock(&{tag}_gate.r);
    spin_lock(&{tag}_gate.w);
    {tag}_shared = d;
    spin_unlock(&{tag}_gate.w);
    if (d) {{
        spin_unlock(&{tag}_gate.w);
    }}
    spin_unlock(&{tag}_gate.r);
}}
"#
        ),
        3,
        1,
        1,
    )
}

/// The trylock idiom: acquisition guarded by a contention probe, release
/// guarded by the matching flag. Dynamically the two conditions always
/// agree, so execution is balanced; the flow-sensitive checker cannot
/// correlate the two branches and reports the release in every mode — a
/// pure false-positive probe (static noise, dynamic silence).
pub fn trylock_flagged(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
int {tag}_stat;
extern int {tag}_contended();
void {tag}_try_update(int v) {{
    int got = 0;
    if ({tag}_contended() == 0) {{
        spin_lock(&{tag}_mu);
        got = 1;
    }}
    if (got) {{
        {tag}_stat = v;
        spin_unlock(&{tag}_mu);
    }}
}}
"#
        ),
        1,
        1,
        1,
    )
}

/// Interrupt-context re-entry: an interrupt handler acquires the lock
/// its interrupted context already holds (modeled as a direct call while
/// holding). The checker sees the handler's entry requirement clash with
/// the held state at the call site; the interpreter observes the double
/// acquire (and the cascading unheld release). Under confine inference
/// the handler's pair lives in a confine scope, which hides its entry
/// requirement from the caller — one error instead of two.
///
/// Signature: `(2, 1, 2)`.
pub fn irq_reentrant_acquire(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_irq_mu;
int {tag}_events;
void {tag}_isr() {{
    spin_lock(&{tag}_irq_mu);
    {tag}_events = {tag}_events + 1;
    spin_unlock(&{tag}_irq_mu);
}}
void {tag}_top_half(int pending) {{
    spin_lock(&{tag}_irq_mu);
    {tag}_events = 0;
    if (pending) {{
        {tag}_isr();
    }}
    spin_unlock(&{tag}_irq_mu);
}}
"#
        ),
        2,
        1,
        2,
    )
}

/// Lock handoff through a struct field across a call boundary: `begin`
/// returns with the device lock held, `end` releases it. The `txn`
/// entry is balanced at run time, but `end` *alone* releases an unheld
/// lock — dynamically and statically (its entry state assumes unlocked),
/// so one error survives even all-strong updates; field-based weak
/// updates add a second, recoverable only by strong updates.
///
/// Signature: `(2, 2, 1)`.
pub fn handoff_struct_field(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
struct {tag}_dev {{ lock mu; int state; }};
struct {tag}_dev {tag}_dev0;
void {tag}_begin() {{
    spin_lock(&{tag}_dev0.mu);
    {tag}_dev0.state = 1;
}}
void {tag}_end() {{
    {tag}_dev0.state = 0;
    spin_unlock(&{tag}_dev0.mu);
}}
void {tag}_txn(int v) {{
    {tag}_begin();
    {tag}_dev0.state = v;
    {tag}_end();
}}
"#
        ),
        2,
        2,
        1,
    )
}

/// Release via an escaping alias: the lock's address escapes to a global
/// before a restrict scope acquires through the scoped name, and the
/// release after the scope goes through the stale global. The copy-out
/// at scope exit hands the held state back to the original location, so
/// the checker can verify the aliased release — clean, and balanced at
/// run time.
pub fn escaping_alias_release(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
lock *{tag}_saved;
extern void {tag}_work();
void {tag}_handoff() {{
    {tag}_saved = &{tag}_mu;
    restrict l = &{tag}_mu {{
        spin_lock(l);
        {tag}_work();
    }}
    spin_unlock({tag}_saved);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// The forgotten-error-path bug: release, then release again on the
/// error path. Reported in every mode; dynamically faults whenever the
/// error path runs.
pub fn conditional_double_release(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
extern int {tag}_commit();
void {tag}_finish() {{
    spin_lock(&{tag}_mu);
    int err = {tag}_commit();
    spin_unlock(&{tag}_mu);
    if (err == 0) {{
        spin_unlock(&{tag}_mu);
    }}
}}
"#
        ),
        1,
        1,
        1,
    )
}

/// The recursion-havoc shape that surfaced the v3 soundness fix: a
/// mutually recursive clique acquires a lock the non-recursive tail of
/// its partner then re-acquires. Before v3 the checker reported nothing
/// (havoc only topped *touched* locations, and `mu` was untouched at
/// the call site); the interpreter double-acquires on any entry with
/// `n >= 1`. See `crates/cqual/tests/fuzz_regressions.rs`.
pub fn recursive_relock(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
void {tag}_a(int n) {{
    if (n) {{
        {tag}_b(n - 1);
    }}
    spin_lock(&{tag}_mu);
    spin_unlock(&{tag}_mu);
}}
void {tag}_b(int n) {{
    {tag}_a(n);
    spin_lock(&{tag}_mu);
}}
"#
        ),
        1,
        1,
        1,
    )
}

/// Decomposes an eliminated-error quota into weak-update idioms: loop
/// pairs contribute 2, straight pairs `2k-1` (odd). Any `q ≥ 1` is
/// representable; pair counts are capped for readable functions.
pub fn weak_update_idioms(tag: &str, mut q: usize) -> Vec<Idiom> {
    let mut out = Vec::new();
    let mut n = 0usize;
    while q > 0 {
        let sub = format!("{tag}_w{n}");
        n += 1;
        if q.is_multiple_of(2) {
            out.push(loop_pair(&sub));
            q -= 2;
        } else if q >= 3 && n % 4 == 1 {
            out.push(scan_loop(&sub));
            q -= 3;
        } else {
            let k = q.div_ceil(2).min(8);
            if n.is_multiple_of(3) {
                out.push(struct_pairs(&sub, k));
            } else {
                out.push(straight_pairs(&sub, k));
            }
            q -= 2 * k - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_arithmetic() {
        let e = Expected {
            no_confine: 5,
            confine: 2,
            all_strong: 1,
        };
        assert_eq!(e.potential(), 4);
        assert_eq!(e.eliminated(), 3);
        let sum = e + Expected {
            no_confine: 1,
            confine: 1,
            all_strong: 1,
        };
        assert_eq!(sum.no_confine, 6);
        assert_eq!(e.to_string(), "5/2/1");
    }

    #[test]
    fn weak_update_decomposition_hits_quota() {
        for q in 1..=60 {
            let idioms = weak_update_idioms("t", q);
            let total: usize = idioms.iter().map(|i| i.expect.no_confine).sum();
            assert_eq!(total, q, "quota {q}");
            assert!(idioms
                .iter()
                .all(|i| i.expect.confine == 0 && i.expect.all_strong == 0));
        }
    }

    #[test]
    fn idiom_sources_parse() {
        let samples = [
            clean_scalar_pair("a"),
            clean_restrict_helper("b"),
            clean_math("c"),
            clean_branchy("d"),
            clean_restrict_decl("r"),
            clean_irq_early_return("q"),
            clean_helper_chain("h"),
            straight_pairs("e", 3),
            loop_pair("f"),
            scan_loop("s"),
            struct_pairs("g", 2),
            cast_pair("h"),
            cross_elements("i"),
            double_acquire("j"),
            unbalanced_branch("k"),
        ];
        for (n, s) in samples.iter().enumerate() {
            localias_ast::parse_module("m", &s.source)
                .unwrap_or_else(|e| panic!("idiom {n} failed to parse: {e}\n{}", s.source));
        }
    }

    #[test]
    fn adversarial_triples_match_the_real_analyses() {
        use localias_cqual::{check_locks, Mode};
        let samples = [
            ("rwlock_pair", rwlock_pair("t")),
            ("rwlock_bad_downgrade", rwlock_bad_downgrade("t")),
            ("trylock_flagged", trylock_flagged("t")),
            ("irq_reentrant_acquire", irq_reentrant_acquire("t")),
            ("handoff_struct_field", handoff_struct_field("t")),
            ("escaping_alias_release", escaping_alias_release("t")),
            (
                "conditional_double_release",
                conditional_double_release("t"),
            ),
            ("recursive_relock", recursive_relock("t")),
        ];
        for (name, s) in &samples {
            let m = localias_ast::parse_module("m", &s.source)
                .unwrap_or_else(|e| panic!("{name} failed to parse: {e}\n{}", s.source));
            let got = (
                check_locks(&m, Mode::NoConfine).error_count(),
                check_locks(&m, Mode::Confine).error_count(),
                check_locks(&m, Mode::AllStrong).error_count(),
            );
            let want = (s.expect.no_confine, s.expect.confine, s.expect.all_strong);
            assert_eq!(got, want, "{name} triple");
        }
    }
}
