//! Locking idioms with known per-mode error signatures.
//!
//! Every idiom is a self-contained set of top-level items (its own
//! globals and functions, name-spaced by a tag), and contributes an exact
//! `(no-confine, confine-inference, all-strong)` error triple. Module
//! totals are therefore the sum of their idioms' triples — the property
//! the Section 7 calibration relies on. Each signature below is verified
//! against the real analyses by this crate's tests.

use std::fmt;

/// Expected lock type errors for one module (or idiom) under the three
/// analysis modes of the Section 7 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Expected {
    /// Without confine inference (weak updates on shared locations).
    pub no_confine: usize,
    /// With confine inference.
    pub confine: usize,
    /// Assuming every update is strong (the upper bound on recovery).
    pub all_strong: usize,
}

impl std::ops::Add for Expected {
    type Output = Expected;

    /// Componentwise sum — module totals are the sums of their idioms.
    fn add(self, other: Expected) -> Expected {
        Expected {
            no_confine: self.no_confine + other.no_confine,
            confine: self.confine + other.confine,
            all_strong: self.all_strong + other.all_strong,
        }
    }
}

impl Expected {
    /// Spurious errors confine inference can potentially eliminate.
    pub fn potential(self) -> usize {
        self.no_confine - self.all_strong
    }

    /// Spurious errors confine inference actually eliminates.
    pub fn eliminated(self) -> usize {
        self.no_confine - self.confine
    }
}

impl fmt::Display for Expected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.no_confine, self.confine, self.all_strong
        )
    }
}

/// One generated idiom: source items plus its expected signature.
#[derive(Debug, Clone)]
pub struct Idiom {
    /// Top-level Mini-C items (globals, structs, functions).
    pub source: String,
    /// Expected error triple.
    pub expect: Expected,
}

fn idiom(source: String, no_confine: usize, confine: usize, all_strong: usize) -> Idiom {
    Idiom {
        source,
        expect: Expected {
            no_confine,
            confine,
            all_strong,
        },
    }
}

// ---- Clean idioms (0/0/0) ---------------------------------------------------

/// A driver routine guarding shared state with a single static lock —
/// a single-object location, strongly updatable without any confine.
pub fn clean_scalar_pair(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
int {tag}_count;
extern void {tag}_io();
void {tag}_update() {{
    spin_lock(&{tag}_mu);
    {tag}_count = {tag}_count + 1;
    {tag}_io();
    spin_unlock(&{tag}_mu);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// The paper's Figure 1 pattern with a `restrict`-qualified parameter:
/// the callee works on a single-object copy of whatever lock it is given.
pub fn clean_restrict_helper(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_work();
void {tag}_with(lock *restrict l) {{
    spin_lock(l);
    {tag}_work();
    spin_unlock(l);
}}
void {tag}_entry(int i) {{
    {tag}_with(&{tag}_locks[i]);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// Lock-free bookkeeping code (buffers, counters, checksums).
pub fn clean_math(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
int {tag}_buf[16];
int {tag}_len;
int {tag}_sum(int n) {{
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {{
        acc = acc + {tag}_buf[i];
    }}
    return acc;
}}
void {tag}_reset(int n) {{
    for (int i = 0; i < n; i = i + 1) {{
        {tag}_buf[i] = 0;
    }}
    {tag}_len = 0;
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// A device struct with a scalar lock guarding its state — balanced
/// branches under the lock.
pub fn clean_branchy(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_state_mu;
int {tag}_state;
extern void {tag}_tx();
extern void {tag}_rx();
void {tag}_irq(int kind) {{
    spin_lock(&{tag}_state_mu);
    if (kind == 1) {{
        {tag}_tx();
        {tag}_state = 1;
    }} else {{
        {tag}_rx();
        {tag}_state = 2;
    }}
    spin_unlock(&{tag}_state_mu);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// A hand-annotated driver using the C99-style `restrict` declaration:
/// already clean without inference.
pub fn clean_restrict_decl(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_poll();
void {tag}_service(int i) {{
    restrict lock *l = &{tag}_locks[i];
    spin_lock(l);
    {tag}_poll();
    spin_unlock(l);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// An interrupt-handler shape: early return on a spurious interrupt, the
/// main path does guarded work — all under a scalar lock, all balanced.
pub fn clean_irq_early_return(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_irq_mu;
int {tag}_pending;
extern int {tag}_spurious();
extern void {tag}_ack();
void {tag}_isr() {{
    spin_lock(&{tag}_irq_mu);
    if ({tag}_spurious()) {{
        spin_unlock(&{tag}_irq_mu);
        return;
    }}
    {tag}_pending = {tag}_pending + 1;
    {tag}_ack();
    spin_unlock(&{tag}_irq_mu);
}}
"#
        ),
        0,
        0,
        0,
    )
}

/// A two-level helper chain: the leaf takes a `restrict` lock parameter,
/// the middle helper forwards it, the entry point passes an array element.
pub fn clean_helper_chain(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_body();
void {tag}_leaf(lock *restrict l) {{
    spin_lock(l);
    {tag}_body();
    spin_unlock(l);
}}
void {tag}_mid(lock *restrict l, int times) {{
    for (int k = 0; k < times; k = k + 1) {{
        {tag}_leaf(l);
    }}
}}
void {tag}_entry(int i) {{
    {tag}_mid(&{tag}_locks[i], 2);
}}
"#
        ),
        0,
        0,
        0,
    )
}

// ---- Weak-update idioms (recoverable by confine) ----------------------------

/// `k` sequential lock/unlock pairs on one element of a per-device lock
/// array, in one function. Weak updates verify only the very first
/// acquire; confine inference recovers everything.
///
/// Signature: `(2k-1, 0, 0)`.
pub fn straight_pairs(tag: &str, k: usize) -> Idiom {
    assert!(k >= 1);
    let mut body = String::new();
    for step in 0..k {
        body.push_str(&format!(
            "    spin_lock(&{tag}_locks[i]);\n    {tag}_step{step}();\n    spin_unlock(&{tag}_locks[i]);\n"
        ));
    }
    let mut externs = String::new();
    for step in 0..k {
        externs.push_str(&format!("extern void {tag}_step{step}();\n"));
    }
    idiom(
        format!(
            r#"
lock {tag}_locks[16];
{externs}void {tag}_service(int i) {{
{body}}}
"#
        ),
        2 * k - 1,
        0,
        0,
    )
}

/// A lock/unlock pair inside a loop over the device array. The loop-head
/// join drives the weak state to ⊤, failing both sites; confine inference
/// recovers both.
///
/// Signature: `(2, 0, 0)`.
pub fn loop_pair(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[16];
extern void {tag}_flush();
void {tag}_flush_all(int n) {{
    for (int i = 0; i < n; i = i + 1) {{
        spin_lock(&{tag}_locks[i]);
        {tag}_flush();
        spin_unlock(&{tag}_locks[i]);
    }}
}}
"#
        ),
        2,
        0,
        0,
    )
}

/// `k` pairs through a device-struct field (`&d->mu`), field-based
/// aliasing conflating all instances.
///
/// Signature: `(2k-1, 0, 0)`.
pub fn struct_pairs(tag: &str, k: usize) -> Idiom {
    assert!(k >= 1);
    let mut body = String::new();
    for step in 0..k {
        body.push_str(&format!(
            "    spin_lock(&d->mu);\n    d->n = d->n + {step};\n    spin_unlock(&d->mu);\n"
        ));
    }
    idiom(
        format!(
            r#"
struct {tag}_dev {{ lock mu; int n; }};
struct {tag}_dev {tag}_devs[8];
void {tag}_touch(int i) {{
    struct {tag}_dev *d = &{tag}_devs[i];
{body}}}
"#
        ),
        2 * k - 1,
        0,
        0,
    )
}

/// A device-scan loop with an early `break` on the first hit — each
/// iteration locks one device struct's lock, through field-based
/// aliasing. Weak updates fail the loop-carried state; confine inference
/// covers the whole body including the break path.
///
/// Signature: `(3, 0, 0)`.
pub fn scan_loop(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
struct {tag}_dev {{ lock mu; int id; }};
struct {tag}_dev {tag}_devs[8];
extern void {tag}_claim();
void {tag}_find(int want, int n) {{
    for (int i = 0; i < n; i = i + 1) {{
        struct {tag}_dev *d = &{tag}_devs[i];
        spin_lock(&d->mu);
        if (d->id == want) {{
            {tag}_claim();
            spin_unlock(&d->mu);
            break;
        }}
        spin_unlock(&d->mu);
    }}
}}
"#
        ),
        3,
        0,
        0,
    )
}

// ---- Confine-resistant idioms (Figure 7 failure modes) ----------------------

/// The lock pointer is laundered through an incompatible cast before the
/// pair; the may-alias analysis loses track (taint) and confine inference
/// cannot verify the candidate. All-strong still verifies both sites.
///
/// Signature: `(1, 1, 0)`.
pub fn cast_pair(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
int {tag}_cookie;
extern void {tag}_dma();
void {tag}_start(int i) {{
    {tag}_cookie = (int) (&{tag}_locks[i]);
    spin_lock(&{tag}_locks[i]);
    {tag}_dma();
    spin_unlock(&{tag}_locks[i]);
}}
"#
        ),
        1,
        1,
        0,
    )
}

/// Hand-over-hand acquisition of two elements of the same array: the two
/// names share one abstract location. The inner section (`j`) is still
/// confinable — its scope contains no stale-alias access — but the outer
/// one is not, and even all-strong updates cannot tell the elements
/// apart, so two sites stay unverifiable in every recovery mode.
///
/// Signature: `(3, 2, 2)`.
pub fn cross_elements(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_locks[8];
extern void {tag}_move();
void {tag}_transfer(int i, int j) {{
    spin_lock(&{tag}_locks[i]);
    spin_lock(&{tag}_locks[j]);
    {tag}_move();
    spin_unlock(&{tag}_locks[j]);
    spin_unlock(&{tag}_locks[i]);
}}
"#
        ),
        3,
        2,
        2,
    )
}

// ---- Genuine bugs (1/1/1) ----------------------------------------------------

/// A real double acquire on a scalar lock — reported in every mode.
pub fn double_acquire(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
extern void {tag}_cfg();
void {tag}_init() {{
    spin_lock(&{tag}_mu);
    {tag}_cfg();
    spin_lock(&{tag}_mu);
    spin_unlock(&{tag}_mu);
}}
"#
        ),
        1,
        1,
        1,
    )
}

/// A lock acquired on only one path before an unconditional release — the
/// classic forgotten-else bug.
pub fn unbalanced_branch(tag: &str) -> Idiom {
    idiom(
        format!(
            r#"
lock {tag}_mu;
extern void {tag}_slow();
void {tag}_maybe(int c) {{
    if (c) {{
        spin_lock(&{tag}_mu);
        {tag}_slow();
    }}
    spin_unlock(&{tag}_mu);
}}
"#
        ),
        1,
        1,
        1,
    )
}

/// Decomposes an eliminated-error quota into weak-update idioms: loop
/// pairs contribute 2, straight pairs `2k-1` (odd). Any `q ≥ 1` is
/// representable; pair counts are capped for readable functions.
pub fn weak_update_idioms(tag: &str, mut q: usize) -> Vec<Idiom> {
    let mut out = Vec::new();
    let mut n = 0usize;
    while q > 0 {
        let sub = format!("{tag}_w{n}");
        n += 1;
        if q.is_multiple_of(2) {
            out.push(loop_pair(&sub));
            q -= 2;
        } else if q >= 3 && n % 4 == 1 {
            out.push(scan_loop(&sub));
            q -= 3;
        } else {
            let k = q.div_ceil(2).min(8);
            if n.is_multiple_of(3) {
                out.push(struct_pairs(&sub, k));
            } else {
                out.push(straight_pairs(&sub, k));
            }
            q -= 2 * k - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_arithmetic() {
        let e = Expected {
            no_confine: 5,
            confine: 2,
            all_strong: 1,
        };
        assert_eq!(e.potential(), 4);
        assert_eq!(e.eliminated(), 3);
        let sum = e + Expected {
            no_confine: 1,
            confine: 1,
            all_strong: 1,
        };
        assert_eq!(sum.no_confine, 6);
        assert_eq!(e.to_string(), "5/2/1");
    }

    #[test]
    fn weak_update_decomposition_hits_quota() {
        for q in 1..=60 {
            let idioms = weak_update_idioms("t", q);
            let total: usize = idioms.iter().map(|i| i.expect.no_confine).sum();
            assert_eq!(total, q, "quota {q}");
            assert!(idioms
                .iter()
                .all(|i| i.expect.confine == 0 && i.expect.all_strong == 0));
        }
    }

    #[test]
    fn idiom_sources_parse() {
        let samples = [
            clean_scalar_pair("a"),
            clean_restrict_helper("b"),
            clean_math("c"),
            clean_branchy("d"),
            clean_restrict_decl("r"),
            clean_irq_early_return("q"),
            clean_helper_chain("h"),
            straight_pairs("e", 3),
            loop_pair("f"),
            scan_loop("s"),
            struct_pairs("g", 2),
            cast_pair("h"),
            cross_elements("i"),
            double_acquire("j"),
            unbalanced_branch("k"),
        ];
        for (n, s) in samples.iter().enumerate() {
            localias_ast::parse_module("m", &s.source)
                .unwrap_or_else(|e| panic!("idiom {n} failed to parse: {e}\n{}", s.source));
        }
    }
}
