//! The differential fuzzer's module generator.
//!
//! Each fuzz module composes a handful of idioms from a weighted
//! catalog — the calibrated Section 7 shapes plus the adversarial lock
//! scenarios (`rwlock`/trylock, interrupt re-entry, struct-field
//! handoff, escaping-alias release, conditional double release,
//! recursion) — under per-module tags so any subset of modules
//! concatenates without name clashes.
//!
//! Generation is **seeded and index-addressed**: module `i` of seed `s`
//! is a pure function of `(s, i)`, so a fuzz run can be partitioned,
//! resumed, or replayed byte-identically (the property
//! `bench/tests/fuzz.rs` pins). Unlike the calibrated corpus in
//! [`crate::gen`], these modules carry no expected triples: the
//! interpreter decides the ground truth at run time.

use crate::idiom::{self, Idiom};
use localias_prng::Rng64;

/// One generated fuzz module.
#[derive(Debug, Clone)]
pub struct FuzzModule {
    /// Module name (`fuzz<index>`).
    pub name: String,
    /// Complete Mini-C source text.
    pub source: String,
    /// Catalog names of the composed idioms, in order (for reports).
    pub idioms: Vec<&'static str>,
}

// `straight_pairs`/`struct_pairs` take a pair count; fix representative
// sizes so every catalog entry has the same `fn(&str) -> Idiom` shape.
fn straight_pairs_3(tag: &str) -> Idiom {
    idiom::straight_pairs(tag, 3)
}

fn struct_pairs_2(tag: &str) -> Idiom {
    idiom::struct_pairs(tag, 2)
}

/// One catalog row: `(name, constructor, weight)`.
pub type CatalogEntry = (&'static str, fn(&str) -> Idiom, u32);

/// The weighted catalog. Roughly 45% clean shapes, 25% weak-update
/// noise, 30% adversarial/buggy — enough genuinely faulting executions
/// that a missed error cannot hide, with enough clean mass that
/// spurious reports move the measured FP rate.
pub const CATALOG: &[CatalogEntry] = &[
    ("clean_scalar_pair", idiom::clean_scalar_pair, 5),
    ("clean_restrict_helper", idiom::clean_restrict_helper, 3),
    ("clean_math", idiom::clean_math, 3),
    ("clean_branchy", idiom::clean_branchy, 3),
    ("clean_restrict_decl", idiom::clean_restrict_decl, 2),
    ("clean_irq_early_return", idiom::clean_irq_early_return, 2),
    ("clean_helper_chain", idiom::clean_helper_chain, 2),
    ("straight_pairs", straight_pairs_3, 3),
    ("loop_pair", idiom::loop_pair, 3),
    ("struct_pairs", struct_pairs_2, 2),
    ("scan_loop", idiom::scan_loop, 2),
    ("cast_pair", idiom::cast_pair, 2),
    ("cross_elements", idiom::cross_elements, 2),
    ("double_acquire", idiom::double_acquire, 2),
    ("unbalanced_branch", idiom::unbalanced_branch, 2),
    ("rwlock_pair", idiom::rwlock_pair, 2),
    ("rwlock_bad_downgrade", idiom::rwlock_bad_downgrade, 2),
    ("trylock_flagged", idiom::trylock_flagged, 2),
    ("irq_reentrant_acquire", idiom::irq_reentrant_acquire, 2),
    ("handoff_struct_field", idiom::handoff_struct_field, 2),
    ("escaping_alias_release", idiom::escaping_alias_release, 2),
    (
        "conditional_double_release",
        idiom::conditional_double_release,
        2,
    ),
    ("recursive_relock", idiom::recursive_relock, 2),
];

/// Splits `(seed, index)` into an independent per-module stream so
/// modules can be generated in any order or partition.
fn mix(seed: u64, index: u64) -> u64 {
    seed ^ index
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// Generates fuzz module `index` of `seed`: one to three idioms from
/// the weighted catalog, tagged `f<index>_<k>`.
pub fn fuzz_module(seed: u64, index: u64) -> FuzzModule {
    let mut rng = Rng64::seed_from_u64(mix(seed, index));
    let total: u32 = CATALOG.iter().map(|&(_, _, w)| w).sum();
    let count = rng.gen_range(1..=3usize);
    let mut source = String::new();
    let mut idioms = Vec::with_capacity(count);
    for k in 0..count {
        let mut roll = rng.gen_range(0..total);
        let &(name, ctor, _) = CATALOG
            .iter()
            .find(|&&(_, _, w)| {
                if roll < w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .expect("roll < total weight");
        let tag = format!("f{index}_{k}");
        source.push_str(&ctor(&tag).source);
        idioms.push(name);
    }
    FuzzModule {
        name: format!("fuzz{index}"),
        source,
        idioms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_index_addressed() {
        for i in [0u64, 1, 7, 9999] {
            let a = fuzz_module(42, i);
            let b = fuzz_module(42, i);
            assert_eq!(a.source, b.source);
            assert_eq!(a.idioms, b.idioms);
            assert_eq!(a.name, format!("fuzz{i}"));
        }
        // Different indices draw different compositions somewhere.
        let distinct = (0..16)
            .map(|i| fuzz_module(42, i).source)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 4, "modules should vary across indices");
    }

    #[test]
    fn every_fuzz_module_parses() {
        for i in 0..64 {
            let m = fuzz_module(7, i);
            localias_ast::parse_module(&m.name, &m.source)
                .unwrap_or_else(|e| panic!("module {i} failed to parse: {e}\n{}", m.source));
        }
    }

    #[test]
    fn catalog_reaches_every_idiom() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000 {
            for name in fuzz_module(1, i).idioms {
                seen.insert(name);
            }
        }
        assert_eq!(seen.len(), CATALOG.len(), "all catalog entries drawn");
    }
}
