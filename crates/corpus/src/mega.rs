//! The synthesized "mega-module": one module, hundreds of functions, a
//! wide call DAG.
//!
//! The §7 corpus stresses the *cross-module* sweep (`--jobs` fans out
//! across 589 small modules); this generator stresses the *intra-module*
//! pipeline instead. [`mega_module`] emits a single module shaped like a
//! large driver core:
//!
//! * a wide **leaf layer** of worker functions — lock-free compute
//!   kernels, scalar-lock critical sections (clean under every mode),
//!   and per-device lock-array pairs (the `(1,0,0)` confinable idiom);
//! * a **mid layer** of services, each owning a disjoint set of
//!   array-lock leaves (so no path acquires one device array twice) and
//!   sharing the harmless leaves freely;
//! * a small **top layer** of entry points fanning out over the mids.
//!
//! The call graph is a three-level DAG with no recursion, so the wave
//! schedule is three wide waves — the shape where `--intra-jobs`
//! parallelism pays. The expected error triple is exact by
//! construction: each array-pair leaf contributes one weak-update error
//! that confine inference fully recovers, and nothing else ever fails,
//! so a module with `a` array leaves expects `(a, 0, 0)`.
//!
//! Generation is fully deterministic in `(seed, funs)`.

use crate::gen::GeneratedModule;
use crate::idiom::Expected;
use crate::plan::Category;
use localias_prng::Rng64;
use std::fmt::Write as _;

/// Default function count for the intra-module benchmark.
pub const DEFAULT_MEGA_FUNS: usize = 300;

/// What one leaf function does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeafKind {
    /// Lock-free arithmetic over globals (pure checker walking work).
    Compute,
    /// A scalar global lock held across a loop — strong updates verify
    /// it in every mode.
    Scalar,
    /// A lock/unlock pair on an element of a private device array — one
    /// weak-update error, fully recovered by confine inference.
    Array,
}

/// Emits the nested compute loops that give every function real checker
/// work (each `while` costs the flow checker a fixpoint plus a recording
/// pass over its body).
fn compute_blocks(src: &mut String, rng: &mut Rng64, blocks: usize) {
    for b in 0..blocks {
        let depth = rng.gen_range(2..4u32);
        let _ = writeln!(src, "    int acc{b} = {};", rng.gen_range(0..64));
        let _ = writeln!(src, "    int i{b} = 0;");
        let _ = writeln!(src, "    while (i{b} < n) {{");
        if depth > 2 {
            let _ = writeln!(src, "        int j{b} = 0;");
            let _ = writeln!(src, "        while (j{b} < 8) {{");
            let _ = writeln!(src, "            acc{b} = acc{b} + j{b} * i{b};");
            let _ = writeln!(src, "            if (acc{b} > 100) {{");
            let _ = writeln!(
                src,
                "                acc{b} = acc{b} - {};",
                rng.gen_range(1..9)
            );
            let _ = writeln!(src, "            }} else {{");
            let _ = writeln!(src, "                acc{b} = acc{b} + 1;");
            let _ = writeln!(src, "            }}");
            let _ = writeln!(src, "            j{b} = j{b} + 1;");
            let _ = writeln!(src, "        }}");
        } else {
            let _ = writeln!(src, "        acc{b} = acc{b} * 2 + i{b};");
            let _ = writeln!(src, "        if (acc{b} > 50) {{");
            let _ = writeln!(src, "            acc{b} = 0;");
            let _ = writeln!(src, "        }}");
        }
        let _ = writeln!(src, "        i{b} = i{b} + 1;");
        let _ = writeln!(src, "    }}");
        let _ = writeln!(src, "    mega_sink = acc{b};");
    }
}

/// Generates the mega-module: one module with `funs` functions in a
/// three-layer call DAG. Deterministic in `(seed, funs)`.
///
/// The expected triple is `(a, 0, 0)` where `a` is the number of
/// array-pair leaves — see the module docs for why that is exact.
pub fn mega_module(seed: u64, funs: usize) -> GeneratedModule {
    let funs = funs.max(8);
    let mut rng = Rng64::seed_from_u64(seed ^ 0x6d65_6761); // "mega"
    let (n_top, n_mid, n_leaf) = mega_layout(funs);

    let mut src = String::new();
    let _ = writeln!(src, "int mega_sink;");
    let _ = writeln!(src, "extern void mega_work();");

    // ---- Leaf layer ----
    let kinds: Vec<LeafKind> = (0..n_leaf)
        .map(|k| match k % 3 {
            0 => LeafKind::Array,
            1 => LeafKind::Scalar,
            _ => LeafKind::Compute,
        })
        .collect();
    let n_array = kinds.iter().filter(|&&k| k == LeafKind::Array).count();

    for (k, kind) in kinds.iter().enumerate() {
        match kind {
            LeafKind::Array => {
                let _ = writeln!(src, "lock mega_arr{k:04}[8];");
            }
            LeafKind::Scalar => {
                let _ = writeln!(src, "lock mega_lck{k:04};");
            }
            LeafKind::Compute => {}
        }
        let _ = writeln!(src, "void leaf{k:04}(int n) {{");
        match kind {
            LeafKind::Array => {
                // The (1,0,0) confinable idiom: weak updates fail the
                // release; a confine over the pair recovers it.
                let _ = writeln!(src, "    spin_lock(&mega_arr{k:04}[n]);");
                let _ = writeln!(src, "    mega_work();");
                let _ = writeln!(src, "    spin_unlock(&mega_arr{k:04}[n]);");
                compute_blocks(&mut src, &mut rng, 2);
            }
            LeafKind::Scalar => {
                let _ = writeln!(src, "    int r{k} = 0;");
                let _ = writeln!(src, "    while (r{k} < n) {{");
                let _ = writeln!(src, "        spin_lock(&mega_lck{k:04});");
                let _ = writeln!(src, "        mega_work();");
                let _ = writeln!(src, "        spin_unlock(&mega_lck{k:04});");
                let _ = writeln!(src, "        r{k} = r{k} + 1;");
                let _ = writeln!(src, "    }}");
                compute_blocks(&mut src, &mut rng, 2);
            }
            LeafKind::Compute => {
                compute_blocks(&mut src, &mut rng, 3);
            }
        }
        let _ = writeln!(src, "}}");
    }

    // ---- Mid layer ----
    // Each array leaf is owned by exactly one mid, so no path ever
    // acquires the same device array twice; scalar/compute leaves are
    // shared freely (their summaries are idempotent).
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); n_mid];
    for (k, kind) in kinds.iter().enumerate() {
        if *kind == LeafKind::Array {
            owned[k % n_mid].push(k);
        }
    }
    let harmless: Vec<usize> = kinds
        .iter()
        .enumerate()
        .filter(|(_, &k)| k != LeafKind::Array)
        .map(|(k, _)| k)
        .collect();
    for (m, owned_leaves) in owned.iter().enumerate() {
        let _ = writeln!(src, "void mid{m:04}(int n) {{");
        for &k in owned_leaves {
            let _ = writeln!(src, "    leaf{k:04}(n);");
        }
        let extra = rng.gen_range(2..5u32);
        for _ in 0..extra {
            if harmless.is_empty() {
                break;
            }
            let k = harmless[rng.gen_range(0..harmless.len())];
            let _ = writeln!(src, "    leaf{k:04}(n);");
        }
        compute_blocks(&mut src, &mut rng, 1);
        let _ = writeln!(src, "}}");
    }

    // ---- Top layer ----
    // Each top calls a set of distinct mids (never the same mid twice —
    // a second call would re-require a device array already driven to ⊤
    // by the first).
    for t in 0..n_top {
        let _ = writeln!(src, "void top{t:04}(int n) {{");
        let mut mids: Vec<usize> = vec![t % n_mid];
        let extra = rng.gen_range(2..5u32) as usize;
        for _ in 0..extra {
            let m = rng.gen_range(0..n_mid);
            if !mids.contains(&m) {
                mids.push(m);
            }
        }
        for m in mids {
            let _ = writeln!(src, "    mid{m:04}(n);");
        }
        compute_blocks(&mut src, &mut rng, 1);
        let _ = writeln!(src, "}}");
    }

    GeneratedModule {
        name: format!("mega_{seed}_{funs}"),
        category: Category::Recovered,
        expect: Expected {
            no_confine: n_array,
            confine: 0,
            all_strong: 0,
        },
        source: src,
    }
}

/// The `(tops, mids, leaves)` layer sizes of a `funs`-function
/// mega-module (after the `funs.max(8)` floor).
fn mega_layout(funs: usize) -> (usize, usize, usize) {
    let funs = funs.max(8);
    let n_top = (funs / 10).max(1);
    let n_mid = (funs * 3 / 10).max(2);
    (n_top, n_mid, funs - n_top - n_mid)
}

/// The kind of single-function edit [`mega_edit`] applies.
///
/// Each kind has a **closed-form expected triple**, derived from the
/// generator's construction (and pinned by tests that run the real
/// checker on edited modules):
///
/// * [`Compute`](MegaEditKind::Compute) — a constant tweak inside one
///   lock-free compute leaf. No lock is touched, so the triple stays the
///   base `(a, 0, 0)` and the edited function's summary is unchanged:
///   an incremental recheck's dirty cone is exactly that one function.
/// * [`Whitespace`](MegaEditKind::Whitespace) — a trailing comment.
///   Comments normalize away in the canonical form, so the triple stays
///   `(a, 0, 0)` and an incremental recheck re-runs *zero* functions.
/// * [`BreakLock`](MegaEditKind::BreakLock) — one array leaf's
///   `spin_unlock` becomes a second `spin_lock`. Under weak updates the
///   leaf already erred once (the release saw ⊤) and still errs once
///   (the second acquire sees ⊤), so `no_confine` stays `a`; under
///   confine inference or all-strong updates the first acquire is a
///   strong update to `locked`, which the second acquire's `unlocked`
///   requirement rejects — one error where there was none. The triple
///   becomes `(a, 1, 1)`, and because only the edited leaf's *errors*
///   change while its summary does too (exit state of the element
///   location), the dirty cone is the leaf plus its owning mid and that
///   mid's callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MegaEditKind {
    /// Tweak an arithmetic constant in a compute leaf (triple unchanged).
    Compute,
    /// Append a comment — canonical no-op (triple unchanged).
    Whitespace,
    /// Replace an array leaf's unlock with a second lock
    /// (`(a, 0, 0)` → `(a, 1, 1)`).
    BreakLock,
}

/// A single-function edit of a generated mega-module.
#[derive(Debug, Clone)]
pub struct MegaEdit {
    /// The edited module; `expect` carries the closed-form triple for
    /// the edited source.
    pub module: GeneratedModule,
    /// Which edit was applied.
    pub kind: MegaEditKind,
    /// The function the edit landed in (`None` for whitespace edits,
    /// which touch no function's canonical text).
    pub function: Option<String>,
}

/// Applies one seeded single-function edit to `mega_module(seed, funs)`.
///
/// Deterministic in `(seed, funs, edit_seed, kind)`; distinct
/// `edit_seed`s pick (generally) distinct target functions. See
/// [`MegaEditKind`] for each kind's closed-form expected triple.
///
/// # Panics
///
/// Panics if the generated module has no leaf of the required kind —
/// impossible for `funs >= 8`, where the leaf layer always contains
/// array, scalar, and compute leaves.
pub fn mega_edit(seed: u64, funs: usize, edit_seed: u64, kind: MegaEditKind) -> MegaEdit {
    let base = mega_module(seed, funs);
    let (_, _, n_leaf) = mega_layout(funs);
    let mut rng = Rng64::seed_from_u64(edit_seed ^ 0x6564_6974); // "edit"
    let leaves_of = |rem: usize| -> Vec<usize> { (0..n_leaf).filter(|k| k % 3 == rem).collect() };

    let mut source = base.source.clone();
    let mut expect = base.expect;
    let function;
    match kind {
        MegaEditKind::Compute => {
            let candidates = leaves_of(2);
            let k = candidates[rng.gen_range(0..candidates.len())];
            let header = format!("void leaf{k:04}(int n) {{\n");
            let at = source.find(&header).expect("compute leaf header present");
            let body = at + header.len();
            // The first statement compute_blocks emits: `int acc0 = C;`.
            let assign = source[body..].find("acc0 = ").expect("acc0 init") + body + 7;
            let end = source[assign..].find(';').expect("terminated init") + assign;
            let old: u64 = source[assign..end].parse().expect("integer constant");
            source.replace_range(assign..end, &format!("{}", (old + 1) % 64));
            function = Some(format!("leaf{k:04}"));
        }
        MegaEditKind::Whitespace => {
            let _ = writeln!(source, "// no-op edit {edit_seed}");
            function = None;
        }
        MegaEditKind::BreakLock => {
            let candidates = leaves_of(0);
            let k = candidates[rng.gen_range(0..candidates.len())];
            let needle = format!("    spin_unlock(&mega_arr{k:04}[n]);\n");
            let fixed = format!("    spin_lock(&mega_arr{k:04}[n]);\n");
            let edited = source.replacen(&needle, &fixed, 1);
            assert_ne!(edited, source, "array leaf unlock present");
            source = edited;
            expect.confine += 1;
            expect.all_strong += 1;
            function = Some(format!("leaf{k:04}"));
        }
    }

    MegaEdit {
        module: GeneratedModule {
            name: format!("{}_edit{edit_seed}", base.name),
            // A broken module mixes recovered idioms with one genuine
            // bug, so its confine column is nonzero — the `Partial`
            // population slice.
            category: if kind == MegaEditKind::BreakLock {
                Category::Partial
            } else {
                base.category
            },
            expect,
            source,
        },
        kind,
        function,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = mega_module(7, 60);
        let b = mega_module(7, 60);
        assert_eq!(a.source, b.source);
        assert_eq!(a.expect, b.expect);
        let c = mega_module(8, 60);
        assert_ne!(a.source, c.source, "different seeds differ");
    }

    #[test]
    fn parses_and_scales_with_funs() {
        for funs in [8, 40, 120] {
            let m = mega_module(3, funs);
            let parsed = m.parse();
            assert_eq!(parsed.functions().count(), funs, "funs={funs}");
        }
    }

    #[test]
    fn expected_triple_counts_array_leaves() {
        let m = mega_module(11, 90);
        // 90 funs → 9 tops, 27 mids, 54 leaves → ceil(54/3) array leaves.
        assert_eq!(m.expect.no_confine, 18);
        assert_eq!(m.expect.confine, 0);
        assert_eq!(m.expect.all_strong, 0);
    }

    /// Runs the real checker and asserts the module's `expect` triple.
    fn assert_triple(m: &GeneratedModule) {
        use localias_cqual::{check_locks, Mode};
        let parsed = m.parse();
        let got = (
            check_locks(&parsed, Mode::NoConfine).error_count(),
            check_locks(&parsed, Mode::Confine).error_count(),
            check_locks(&parsed, Mode::AllStrong).error_count(),
        );
        let want = (m.expect.no_confine, m.expect.confine, m.expect.all_strong);
        assert_eq!(got, want, "{}", m.name);
    }

    #[test]
    fn edits_are_deterministic() {
        for kind in [
            MegaEditKind::Compute,
            MegaEditKind::Whitespace,
            MegaEditKind::BreakLock,
        ] {
            let a = mega_edit(7, 40, 3, kind);
            let b = mega_edit(7, 40, 3, kind);
            assert_eq!(a.module.source, b.module.source, "{kind:?}");
            assert_eq!(a.function, b.function, "{kind:?}");
            assert_ne!(a.module.source, mega_module(7, 40).source, "{kind:?} edits");
        }
    }

    #[test]
    fn compute_edit_keeps_the_closed_form_triple() {
        let base = mega_module(5, 40);
        let e = mega_edit(5, 40, 9, MegaEditKind::Compute);
        assert_eq!(e.module.expect, base.expect, "triple unchanged");
        assert!(e.function.is_some());
        assert_triple(&e.module);
    }

    #[test]
    fn whitespace_edit_is_a_canonical_noop() {
        use localias_ast::pretty;
        let base = mega_module(5, 40);
        let e = mega_edit(5, 40, 9, MegaEditKind::Whitespace);
        assert_eq!(e.module.expect, base.expect);
        assert_eq!(e.function, None);
        // The canonical forms are identical — the strongest statement of
        // "no-op": an incremental session re-checks zero functions.
        assert_eq!(
            pretty::print_module(&base.parse()),
            pretty::print_module(&e.module.parse()),
        );
    }

    #[test]
    fn break_lock_edit_matches_the_closed_form_triple() {
        let base = mega_module(5, 40);
        let e = mega_edit(5, 40, 9, MegaEditKind::BreakLock);
        assert_eq!(e.module.expect.no_confine, base.expect.no_confine);
        assert_eq!(e.module.expect.confine, 1);
        assert_eq!(e.module.expect.all_strong, 1);
        assert_triple(&e.module);
    }
}
