//! The Section 7 population plan.
//!
//! The paper analyzed 589 whole device-driver modules:
//!
//! * **352** were free of type errors without any confine;
//! * **85** had errors, but identical with and without strong updates
//!   (genuine bugs, not weak-update artifacts);
//! * **152** had errors that strong updates could reduce; of these,
//!   confine inference fully matched all-strong in **138**, and fell
//!   short in **14** (the paper's Figure 7 table).
//!
//! Summed over all modules, strong updates could eliminate **3,277**
//! errors and confine inference eliminated **3,116** (95%). These totals
//! are internally consistent: Figure 7's rows account for a potential of
//! 503 and an elimination of 342, so the 138 fully-recovered modules must
//! carry exactly 2,774 eliminated errors — which is how this plan
//! calibrates their quotas.

use crate::idiom::Expected;

/// Number of modules in the corpus.
pub const TOTAL_MODULES: usize = 589;
/// Modules with no lock type errors at all.
pub const CLEAN_MODULES: usize = 352;
/// Modules whose errors are genuine (no-confine == all-strong > 0).
pub const REAL_BUG_MODULES: usize = 85;
/// Modules fully recovered by confine inference.
pub const RECOVERED_MODULES: usize = 138;
/// Modules only partially recovered (Figure 7).
pub const PARTIAL_MODULES: usize = 14;

/// Total spurious errors strong updates could eliminate.
pub const TOTAL_POTENTIAL: usize = 3277;
/// Total spurious errors confine inference eliminates.
pub const TOTAL_ELIMINATED: usize = 3116;

/// The paper's Figure 7: modules where confine inference does not infer
/// all possible strong updates — `(name, no-confine, confine,
/// all-strong)`.
pub const FIGURE7: [(&str, usize, usize, usize); 14] = [
    ("wavelan_cs", 22, 16, 15),
    ("trix", 29, 24, 22),
    ("netrom", 41, 25, 0),
    ("rose", 47, 28, 0),
    ("usb_ohci", 32, 26, 17),
    ("uhci", 74, 45, 34),
    ("sb", 31, 24, 22),
    ("ide_tape", 58, 47, 41),
    ("mad16", 29, 24, 22),
    ("emu10k1", 198, 60, 35),
    ("trident", 107, 49, 36),
    ("digi_acceleport", 62, 32, 4),
    ("sbni", 23, 16, 9),
    ("iph5526", 39, 34, 32),
];

/// Which population slice a module belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// No lock type errors in any mode.
    Clean,
    /// Errors identical across all three modes (genuine bugs only).
    RealBugs,
    /// Weak-update errors fully recovered by confine inference.
    Recovered,
    /// Confine inference misses some strong updates (Figure 7 analogue).
    Partial,
}

/// The decomposition of a Figure 7 row into idiom counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialMix {
    /// Weak-update errors fully recoverable (confinable pairs), `(q,0,0)`
    /// worth `q = nc - cf`.
    pub weak_quota: usize,
    /// Cast-obscured pairs `(1,1,0)`.
    pub casts: usize,
    /// Cross-element hand-over-hand sequences `(3,2,2)`.
    pub crosses: usize,
    /// Genuine scalar bugs `(1,1,1)`.
    pub bugs: usize,
}

/// Decomposes a `(no-confine, confine, all-strong)` target into idiom
/// counts such that the idiom sum reproduces the target exactly.
///
/// # Panics
///
/// Panics if the target is not representable (requires `nc ≥ cf ≥ as`),
/// which never happens for [`FIGURE7`].
pub fn decompose_partial(nc: usize, cf: usize, as_: usize) -> PartialMix {
    assert!(nc >= cf && cf >= as_, "invalid target {nc}/{cf}/{as_}");
    let crosses = (nc - cf).min(as_ / 2).min(2);
    let weak_quota = nc - cf - crosses;
    let bugs = as_ - 2 * crosses;
    let casts = cf - as_;
    let mix = PartialMix {
        weak_quota,
        casts,
        crosses,
        bugs,
    };
    debug_assert_eq!(
        mix.expected(),
        Expected {
            no_confine: nc,
            confine: cf,
            all_strong: as_,
        }
    );
    mix
}

impl PartialMix {
    /// The triple this mix reproduces.
    pub fn expected(&self) -> Expected {
        Expected {
            no_confine: self.weak_quota + self.casts + 3 * self.crosses + self.bugs,
            confine: self.casts + 2 * self.crosses + self.bugs,
            all_strong: 2 * self.crosses + self.bugs,
        }
    }
}

/// Eliminated-error quotas for the 138 fully-recovered modules. The base
/// distribution is skewed (most modules lose only a handful of spurious
/// errors, a few lose very many — the Figure 6 shape); the residue needed
/// to hit [`RECOVERED_TOTAL`] exactly is folded into the largest modules.
pub fn recovered_quotas() -> Vec<usize> {
    // (quota, module count) — a smooth power-law-ish decay.
    const BASE: [(usize, usize); 22] = [
        (1, 28),
        (2, 22),
        (3, 14),
        (4, 10),
        (5, 8),
        (6, 6),
        (8, 6),
        (10, 5),
        (13, 5),
        (17, 4),
        (22, 4),
        (28, 4),
        (35, 3),
        (45, 3),
        (60, 3),
        (80, 3),
        (100, 2),
        (120, 2),
        (140, 2),
        (160, 2),
        (180, 1),
        (200, 1),
    ];
    let mut quotas: Vec<usize> = BASE
        .iter()
        .flat_map(|&(q, n)| std::iter::repeat_n(q, n))
        .collect();
    assert_eq!(quotas.len(), RECOVERED_MODULES);
    let base_sum: usize = quotas.iter().sum();
    let mut deficit = RECOVERED_TOTAL - base_sum;
    // Spread the residue over the largest modules, round-robin.
    let tail = 20.min(quotas.len());
    let start = quotas.len() - tail;
    while deficit > 0 {
        for q in quotas[start..].iter_mut().rev() {
            if deficit == 0 {
                break;
            }
            let add = deficit.min(8);
            *q += add;
            deficit -= add;
        }
    }
    debug_assert_eq!(quotas.iter().sum::<usize>(), RECOVERED_TOTAL);
    quotas
}

/// Eliminated errors the recovered modules must carry in total.
pub const RECOVERED_TOTAL: usize = TOTAL_ELIMINATED - {
    // Figure 7's eliminated errors: Σ (nc - cf).
    let mut i = 0;
    let mut sum = 0;
    while i < FIGURE7.len() {
        sum += FIGURE7[i].1 - FIGURE7[i].2;
        i += 1;
    }
    sum
};

/// Genuine-bug counts for the 85 real-bug modules.
pub fn real_bug_counts() -> Vec<usize> {
    const DIST: [(usize, usize); 6] = [(1, 40), (2, 20), (3, 12), (4, 7), (5, 4), (6, 2)];
    let out: Vec<usize> = DIST
        .iter()
        .flat_map(|&(b, n)| std::iter::repeat_n(b, n))
        .collect();
    assert_eq!(out.len(), REAL_BUG_MODULES);
    out
}

/// How many of the recovered modules additionally carry genuine bugs.
///
/// The paper reports that, even assuming all updates are strong, 137
/// modules still have type errors: the 85 real-bug modules, the 12
/// Figure 7 modules with a nonzero all-strong column, and 40 recovered
/// modules with real bugs alongside their weak-update artifacts.
pub const RECOVERED_WITH_BUGS: usize = 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_adds_up() {
        assert_eq!(
            CLEAN_MODULES + REAL_BUG_MODULES + RECOVERED_MODULES + PARTIAL_MODULES,
            TOTAL_MODULES
        );
    }

    #[test]
    fn figure7_totals_are_consistent_with_the_paper() {
        let potential: usize = FIGURE7.iter().map(|&(_, nc, _, as_)| nc - as_).sum();
        let eliminated: usize = FIGURE7.iter().map(|&(_, nc, cf, _)| nc - cf).sum();
        assert_eq!(potential, 503);
        assert_eq!(eliminated, 342);
        assert_eq!(RECOVERED_TOTAL, TOTAL_ELIMINATED - eliminated);
        // Recovered modules have confine == all-strong, so they
        // contribute equally to both totals; the grand totals follow.
        assert_eq!(RECOVERED_TOTAL + potential, TOTAL_POTENTIAL);
        assert_eq!(RECOVERED_TOTAL + eliminated, TOTAL_ELIMINATED);
        // And the headline ratio is the paper's 95%.
        let pct = TOTAL_ELIMINATED as f64 / TOTAL_POTENTIAL as f64;
        assert!((0.95..0.96).contains(&pct), "{pct}");
    }

    #[test]
    fn every_figure7_row_decomposes_exactly() {
        for &(name, nc, cf, as_) in &FIGURE7 {
            let mix = decompose_partial(nc, cf, as_);
            let e = mix.expected();
            assert_eq!(
                (e.no_confine, e.confine, e.all_strong),
                (nc, cf, as_),
                "{name}"
            );
        }
    }

    #[test]
    fn recovered_quotas_sum_exactly() {
        let quotas = recovered_quotas();
        assert_eq!(quotas.len(), RECOVERED_MODULES);
        assert_eq!(quotas.iter().sum::<usize>(), RECOVERED_TOTAL);
        assert!(quotas.iter().all(|&q| q >= 1));
        // Skewed shape: at least a fifth of the modules lose ≤ 2 errors.
        let small = quotas.iter().filter(|&&q| q <= 2).count();
        assert!(small * 5 >= RECOVERED_MODULES, "{small}");
    }

    #[test]
    fn real_bug_distribution() {
        let bugs = real_bug_counts();
        assert_eq!(bugs.len(), REAL_BUG_MODULES);
        assert!(bugs.iter().all(|&b| (1..=6).contains(&b)));
    }
}
