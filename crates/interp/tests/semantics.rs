//! Tests of the §3.2 operational semantics: restrict as copy-and-poison,
//! confine by substitution, and dynamic lock checking.

use localias_ast::parse_module;
use localias_ast::Module;
use localias_interp::{Interp, RuntimeError, Value};

fn parse(src: &str) -> Module {
    parse_module("test", src).expect("parse")
}

fn run(src: &str, fun: &str) -> Result<Value, RuntimeError> {
    let m = parse(src);
    let mut i = Interp::new(&m, 100_000);
    i.call_with_default_args(fun, 1)
}

#[test]
fn arithmetic_and_control_flow() {
    let v = run(
        r#"
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(55));
}

#[test]
fn loops_break_continue() {
    let v = run(
        r#"
        int main() {
            int acc = 0;
            for (int i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 9) { break; }
                acc = acc + i;
            }
            return acc;
        }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(1 + 3 + 5 + 7 + 9));
}

#[test]
fn pointers_heap_and_arrays() {
    let v = run(
        r#"
        int arr[4];
        int main() {
            int *p = new (7);
            arr[2] = *p + 1;
            int *q = &arr[2];
            return *q;
        }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(8));
}

#[test]
fn structs_and_fields() {
    let v = run(
        r#"
        struct pair { int a; int b; };
        struct pair ps[2];
        int main() {
            struct pair *p = &ps[1];
            p->a = 3;
            p->b = 4;
            return p->a * 10 + ps[1].b;
        }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(34));
}

#[test]
fn out_of_bounds_faults() {
    let err = run("int arr[2]; int main() { return arr[5]; }", "main").unwrap_err();
    assert!(matches!(err, RuntimeError::MemoryFault { .. }), "{err}");
}

#[test]
fn null_deref_faults() {
    let err = run("int main() { int *p; return *p; }", "main").unwrap_err();
    assert!(matches!(err, RuntimeError::MemoryFault { .. }), "{err}");
}

#[test]
fn unbounded_loop_runs_out_of_fuel() {
    let err = run("void spin() { while (1) { } }", "spin").unwrap_err();
    assert_eq!(err, RuntimeError::OutOfFuel);
}

// ---- Restrict semantics ------------------------------------------------------

#[test]
fn valid_restrict_executes() {
    let v = run(
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                *p = *p + 10;
                int *r = p;
                *r = *r + 100;
            }
            return *q;
        }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(111), "writes through the copy flow back");
}

#[test]
fn alias_access_in_scope_faults() {
    // The §2 example: *q inside p's restrict scope hits the poisoned
    // original.
    let err = run(
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                *p = 2;
                *q = 3;
            }
            return 0;
        }
        "#,
        "main",
    )
    .unwrap_err();
    assert!(
        matches!(err, RuntimeError::RestrictViolation { .. }),
        "{err}"
    );
}

#[test]
fn alias_access_after_scope_is_fine() {
    let v = run(
        r#"
        int main() {
            int *q = new (1);
            restrict p = q { *p = 2; }
            *q = *q + 40;
            return *q;
        }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(42));
}

#[test]
fn rebinding_poisons_the_outer_copy() {
    // §2: inside `restrict r = p`, *p is invalid; afterwards valid again.
    let err = run(
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                restrict r = p {
                    *r = 2;
                    *p = 3;
                }
            }
            return 0;
        }
        "#,
        "main",
    )
    .unwrap_err();
    assert!(
        matches!(err, RuntimeError::RestrictViolation { .. }),
        "{err}"
    );

    let v = run(
        r#"
        int main() {
            int *q = new (1);
            restrict p = q {
                restrict r = p { *r = 9; }
                *p = *p + 1;
            }
            return *q;
        }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(10), "restores unwind in nesting order");
}

#[test]
fn escaped_copy_faults_after_scope() {
    // §2: `x = p` lets the copy escape; using it after the scope hits the
    // now-poisoned copy cell.
    let err = run(
        r#"
        int *x;
        int main() {
            int *q = new (1);
            restrict p = q { x = p; }
            return *x;
        }
        "#,
        "main",
    )
    .unwrap_err();
    assert!(
        matches!(err, RuntimeError::RestrictViolation { .. }),
        "{err}"
    );
}

#[test]
fn restrict_param_semantics() {
    let v = run(
        r#"
        int bump(int *restrict p) {
            *p = *p + 1;
            return *p;
        }
        int main() {
            int *q = new (5);
            bump(q);
            return *q;
        }
        "#,
        "main",
    )
    .unwrap();
    assert_eq!(v, Value::Int(6), "copy-out restores the caller's view");
}

#[test]
fn restrict_decl_scope_is_rest_of_block() {
    let err = run(
        r#"
        int main() {
            int *q = new (1);
            restrict int *p = q;
            *p = 2;
            *q = 3;
            return 0;
        }
        "#,
        "main",
    )
    .unwrap_err();
    assert!(
        matches!(err, RuntimeError::RestrictViolation { .. }),
        "{err}"
    );
}

// ---- Confine semantics -------------------------------------------------------

#[test]
fn confine_substitutes_occurrences() {
    let m = parse(
        r#"
        lock locks[4];
        extern void work();
        void f(int i) {
            confine (&locks[i]) {
                spin_lock(&locks[i]);
                work();
                spin_unlock(&locks[i]);
            }
        }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    interp
        .call_with_default_args("f", 2)
        .expect("confined occurrences must hit the copy, not the poisoned original");
    assert!(interp.lock_faults.is_empty());
}

#[test]
fn confine_blocks_unsubstituted_aliases() {
    // Accessing a *different* syntactic path to the same lock inside the
    // scope hits the poisoned original — with equal indices, locks[j] is
    // locks[i].
    let m = parse(
        r#"
        lock locks[4];
        void f(int i, int j) {
            confine (&locks[i]) {
                spin_lock(&locks[i]);
                spin_unlock(&locks[j]);
            }
        }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    // Default args make i == j, so &locks[j] is the poisoned cell.
    let err = interp.call_with_default_args("f", 1).unwrap_err();
    assert!(
        matches!(err, RuntimeError::RestrictViolation { .. }),
        "{err}"
    );
}

// ---- Dynamic lock checking ---------------------------------------------------

#[test]
fn dynamic_double_acquire_detected() {
    let m = parse(
        r#"
        lock mu;
        void f() {
            spin_lock(&mu);
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    interp.call_with_default_args("f", 0).unwrap();
    assert_eq!(interp.lock_faults.len(), 1);
    assert!(interp.lock_faults[0].detail.contains("double acquire"));
}

#[test]
fn dynamic_release_of_unheld_detected() {
    let m = parse(
        r#"
        lock mu;
        void f() { spin_unlock(&mu); }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    interp.call_with_default_args("f", 0).unwrap();
    assert_eq!(interp.lock_faults.len(), 1);
    assert!(interp.lock_faults[0].detail.contains("unheld"));
}

#[test]
fn balanced_locking_is_silent() {
    let m = parse(
        r#"
        lock locks[4];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
        }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    interp.call_with_default_args("f", 3).unwrap();
    assert!(interp.lock_faults.is_empty());
}

// ---- The fuzz oracle's entry API ---------------------------------------------

#[test]
fn call_entry_takes_explicit_args_and_pads_missing_ones() {
    let m = parse(
        r#"
        lock locks[4];
        void f(int i, int j) {
            spin_lock(&locks[i]);
            spin_unlock(&locks[j]);
        }
        "#,
    );
    // Distinct indices: unlock releases a lock that was never taken.
    let mut interp = Interp::new(&m, 100_000);
    interp
        .call_entry("f", &[Value::Int(1), Value::Int(2)])
        .unwrap();
    assert_eq!(interp.lock_faults.len(), 1);
    assert!(interp.lock_faults[0].detail.contains("unheld"));

    // Same index: perfectly balanced.
    let mut interp = Interp::new(&m, 100_000);
    interp
        .call_entry("f", &[Value::Int(2), Value::Int(2)])
        .unwrap();
    assert!(interp.lock_faults.is_empty());

    // Missing trailing args default to the parameter type's zero (0 ==
    // 0, so this is again balanced).
    let mut interp = Interp::new(&m, 100_000);
    interp.call_entry("f", &[]).unwrap();
    assert!(interp.lock_faults.is_empty());
}

#[test]
fn default_args_give_lock_params_a_free_lock() {
    // A by-value lock parameter must arrive as a (free) lock value, not
    // the integer argument — otherwise `spin_lock(&l)` is a TypeFault
    // and the oracle observes noise instead of lock behaviour.
    let m = parse(
        r#"
        void f(lock l) {
            spin_lock(&l);
            spin_unlock(&l);
        }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    interp.call_with_default_args("f", 7).unwrap();
    assert!(interp.lock_faults.is_empty());
}

#[test]
fn interrupt_reentry_double_acquire_is_observed() {
    // The kernel idiom the checker must never miss: an interrupt
    // handler that re-acquires a lock its interrupted context already
    // holds. Modeled as a direct call while the lock is held.
    let m = parse(
        r#"
        lock mu;
        int state;
        void isr() {
            spin_lock(&mu);
            state = 0;
            spin_unlock(&mu);
        }
        void top_half(int pending) {
            spin_lock(&mu);
            state = 1;
            if (pending) { isr(); }
            spin_unlock(&mu);
        }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    interp.call_entry("top_half", &[Value::Int(1)]).unwrap();
    // The cascade: the isr re-acquires a held lock, its unlock then
    // frees it, so the interrupted context's own unlock hits an unheld
    // lock — two splats, like real lockdep output.
    assert_eq!(interp.lock_faults.len(), 2);
    assert!(interp.lock_faults[0].detail.contains("double acquire"));
    assert_eq!(
        interp.lock_faults[0].fun, "isr",
        "the first fault is attributed to the re-entering function"
    );
    assert!(interp.lock_faults[1].detail.contains("unheld"));
    assert_eq!(interp.lock_faults[1].fun, "top_half");

    // Without the pending interrupt the same code is silent.
    let mut interp = Interp::new(&m, 100_000);
    interp.call_entry("top_half", &[Value::Int(0)]).unwrap();
    assert!(interp.lock_faults.is_empty());
}

#[test]
fn release_through_stale_alias_violates_restrict_not_lockdep() {
    // Releasing through an alias the restrict scope poisoned is a
    // Theorem-1 violation (the §3.2 `err` read), not a lock fault: the
    // oracle's second axis.
    let m = parse(
        r#"
        lock mu;
        void f() {
            lock *p = &mu;
            restrict q = &mu {
                spin_lock(q);
                spin_unlock(p);
            }
        }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    let err = interp.call_entry("f", &[]).unwrap_err();
    assert!(
        matches!(err, RuntimeError::RestrictViolation { .. }),
        "{err}"
    );
}

#[test]
fn held_locks_counts_leaks_after_return() {
    let m = parse(
        r#"
        struct dev { lock mu; int state; };
        void begin(struct dev *d) { spin_lock(&d->mu); d->state = 1; }
        void end(struct dev *d) { d->state = 0; spin_unlock(&d->mu); }
        void balanced(struct dev *d) { begin(d); end(d); }
        void leaky(struct dev *d) { begin(d); }
        "#,
    );
    let mut interp = Interp::new(&m, 100_000);
    interp.call_with_default_args("balanced", 0).unwrap();
    assert!(interp.lock_faults.is_empty());
    assert_eq!(interp.held_locks(), 0);

    // Handoff that never completes: the lock escapes the call balanced.
    let mut interp = Interp::new(&m, 100_000);
    interp.call_with_default_args("leaky", 0).unwrap();
    assert!(interp.lock_faults.is_empty());
    assert_eq!(interp.held_locks(), 1);
}
