//! The big-step evaluator, implementing the paper's §3.2 semantics.
//!
//! The rule for `restrict x = e1 in e2` is implemented literally:
//!
//! ```text
//! S ⊢ e1 ⇓ l       l' fresh
//! S[l ↦ err, l' ↦ S(l)] ⊢ e2[x ↦ l'] ⇓ v, S'
//! ───────────────────────────────────────────────
//! S ⊢ restrict x = e1 in e2 ⇓ v, S'[l ↦ S'(l'), l' ↦ err]
//! ```
//!
//! `err` is a poisoned cell; reading or writing one raises
//! [`RuntimeError::RestrictViolation`]. `confine e1 in e2` follows its
//! definitional translation: the scope's occurrences of `e1` are resolved
//! to the fresh copy by a syntactic substitution (no AST rewriting).
//!
//! The paper's soundness theorem — a program that type checks never
//! evaluates to `err` — is tested empirically against this interpreter in
//! `tests/soundness.rs`.

use crate::memory::{default_value, size_of, Addr, Memory, Value};
use localias_ast::{
    intrinsics, pretty, BinOp, BindingKind, Block, Expr, ExprKind, FunDef, Module, Stmt, StmtKind,
    TypeExpr, UnOp,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A poisoned (`err`) cell was read or written: some `restrict`/
    /// `confine` was violated at run time. The paper's Theorem 1 says a
    /// program that passes checking never raises this.
    RestrictViolation {
        /// What was attempted.
        detail: String,
    },
    /// Null dereference or out-of-bounds index.
    MemoryFault {
        /// What was attempted.
        detail: String,
    },
    /// A dynamically ill-typed operation (cast abuse etc.).
    TypeFault {
        /// What was attempted.
        detail: String,
    },
    /// Execution exceeded its fuel budget (likely an unbounded loop).
    OutOfFuel,
    /// An unbound name (would be a parse/type error in checked programs).
    Unbound(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RestrictViolation { detail } => {
                write!(f, "restrict violation: {detail}")
            }
            RuntimeError::MemoryFault { detail } => write!(f, "memory fault: {detail}"),
            RuntimeError::TypeFault { detail } => write!(f, "type fault: {detail}"),
            RuntimeError::OutOfFuel => write!(f, "out of fuel"),
            RuntimeError::Unbound(n) => write!(f, "unbound name `{n}`"),
        }
    }
}

impl Error for RuntimeError {}

/// A dynamically detected locking mistake (not an execution error — the
/// run continues, like a kernel lockdep splat).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFault {
    /// The enclosing function.
    pub fun: String,
    /// Description (double acquire / double release).
    pub detail: String,
}

/// Where control is going after a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// A variable binding: the address of its one-object storage plus its
/// declared type.
#[derive(Debug, Clone)]
struct Binding {
    addr: Addr,
    ty: TypeExpr,
}

/// A restore action for an active `restrict`/`confine` scope.
struct Restore {
    orig: Addr,
    copy: Addr,
}

/// The interpreter for one module.
pub struct Interp<'m> {
    module: &'m Module,
    mem: Memory,
    globals: HashMap<String, Binding>,
    scopes: Vec<HashMap<String, Binding>>,
    /// Active confine substitutions: printed key → replacement value and
    /// its pointer type.
    substs: Vec<(String, Value, TypeExpr)>,
    /// Remaining execution fuel (statements + expressions).
    fuel: u64,
    /// Dynamically detected lock faults.
    pub lock_faults: Vec<LockFault>,
    current_fun: String,
    depth: usize,
}

impl<'m> Interp<'m> {
    /// Creates an interpreter with globals allocated and zeroed.
    pub fn new(module: &'m Module, fuel: u64) -> Self {
        let mut mem = Memory::new(module);
        let mut globals = HashMap::new();
        for g in module.globals() {
            let addr = mem.alloc(&g.ty);
            globals.insert(
                g.name.name.to_string(),
                Binding {
                    addr,
                    ty: g.ty.clone(),
                },
            );
        }
        Interp {
            module,
            mem,
            globals,
            scopes: Vec::new(),
            substs: Vec::new(),
            fuel,
            lock_faults: Vec::new(),
            current_fun: String::new(),
            depth: 0,
        }
    }

    fn tick(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<Binding, RuntimeError> {
        for frame in self.scopes.iter().rev() {
            if let Some(b) = frame.get(name) {
                return Ok(b.clone());
            }
        }
        self.globals
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    fn read_cell(&self, a: Addr, what: &str) -> Result<Value, RuntimeError> {
        if !self.mem.in_bounds(a) {
            return Err(RuntimeError::MemoryFault {
                detail: format!("read of {a} ({what}) out of bounds"),
            });
        }
        let cell = self.mem.cell(a);
        if cell.poisoned {
            return Err(RuntimeError::RestrictViolation {
                detail: format!("read of restricted cell {a} ({what})"),
            });
        }
        Ok(cell.value)
    }

    fn write_cell(&mut self, a: Addr, v: Value, what: &str) -> Result<(), RuntimeError> {
        if !self.mem.in_bounds(a) {
            return Err(RuntimeError::MemoryFault {
                detail: format!("write to {a} ({what}) out of bounds"),
            });
        }
        let cell = self.mem.cell_mut(a);
        if cell.poisoned {
            return Err(RuntimeError::RestrictViolation {
                detail: format!("write to restricted cell {a} ({what})"),
            });
        }
        cell.value = v;
        Ok(())
    }

    // ---- Places and values -------------------------------------------------

    /// Evaluates `e` as a place (an addressable cell plus its type).
    fn lval(&mut self, e: &Expr) -> Result<(Addr, TypeExpr), RuntimeError> {
        self.tick()?;
        match &e.kind {
            ExprKind::Var(x) => {
                let b = self.lookup(&x.name)?;
                Ok((b.addr, b.ty))
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let (v, t) = self.rval(inner)?;
                let elem = match t {
                    TypeExpr::Ptr(inner) => *inner,
                    other => {
                        return Err(RuntimeError::TypeFault {
                            detail: format!("deref of non-pointer {other}"),
                        })
                    }
                };
                match v {
                    Value::Addr(a) => Ok((a, elem)),
                    _ => Err(RuntimeError::MemoryFault {
                        detail: format!("deref of non-address {v}"),
                    }),
                }
            }
            ExprKind::Index(arr, idx) => {
                let (av, at) = self.rval(arr)?;
                let (iv, _) = self.rval(idx)?;
                let elem = match at {
                    TypeExpr::Ptr(inner) => *inner,
                    other => {
                        return Err(RuntimeError::TypeFault {
                            detail: format!("index of non-array {other}"),
                        })
                    }
                };
                let i = match iv {
                    Value::Int(n) if n >= 0 => n as usize,
                    other => {
                        return Err(RuntimeError::MemoryFault {
                            detail: format!("bad index {other}"),
                        })
                    }
                };
                match av {
                    Value::Addr(base) => {
                        let stride = size_of(&elem, self.mem.layouts());
                        Ok((
                            Addr {
                                obj: base.obj,
                                off: base.off + i * stride,
                            },
                            elem,
                        ))
                    }
                    other => Err(RuntimeError::MemoryFault {
                        detail: format!("index of non-address {other}"),
                    }),
                }
            }
            ExprKind::Field(base, fname) => {
                let (addr, ty) = self.lval(base)?;
                self.field_place(addr, &ty, &fname.name)
            }
            ExprKind::Arrow(base, fname) => {
                let (v, t) = self.rval(base)?;
                let inner = match t {
                    TypeExpr::Ptr(inner) => *inner,
                    other => {
                        return Err(RuntimeError::TypeFault {
                            detail: format!("-> on non-pointer {other}"),
                        })
                    }
                };
                match v {
                    Value::Addr(a) => self.field_place(a, &inner, &fname.name),
                    other => Err(RuntimeError::MemoryFault {
                        detail: format!("-> on non-address {other}"),
                    }),
                }
            }
            other => Err(RuntimeError::TypeFault {
                detail: format!("not an lvalue: {other:?}"),
            }),
        }
    }

    fn field_place(
        &self,
        base: Addr,
        ty: &TypeExpr,
        field: &str,
    ) -> Result<(Addr, TypeExpr), RuntimeError> {
        let TypeExpr::Struct(sname) = ty else {
            return Err(RuntimeError::TypeFault {
                detail: format!("field access on non-struct {ty}"),
            });
        };
        let layout =
            self.mem
                .layouts()
                .get(sname.as_str())
                .ok_or_else(|| RuntimeError::TypeFault {
                    detail: format!("unknown struct {sname}"),
                })?;
        let (off, fty) =
            layout
                .fields
                .get(field)
                .cloned()
                .ok_or_else(|| RuntimeError::TypeFault {
                    detail: format!("no field {field} on struct {sname}"),
                })?;
        Ok((
            Addr {
                obj: base.obj,
                off: base.off + off,
            },
            fty,
        ))
    }

    /// Evaluates `e` for its value (with array-to-pointer decay).
    pub fn rval(&mut self, e: &Expr) -> Result<(Value, TypeExpr), RuntimeError> {
        self.tick()?;
        // Active confine substitution: occurrences of the confined
        // expression denote the fresh copy.
        if !self.substs.is_empty() && is_substitutable(e) {
            let key = pretty::print_expr(e);
            for (k, v, t) in self.substs.iter().rev() {
                if *k == key {
                    return Ok((*v, t.clone()));
                }
            }
        }
        match &e.kind {
            ExprKind::Int(n) => Ok((Value::Int(*n), TypeExpr::Int)),
            ExprKind::Var(_)
            | ExprKind::Unary(UnOp::Deref, _)
            | ExprKind::Index(_, _)
            | ExprKind::Field(_, _)
            | ExprKind::Arrow(_, _) => {
                let (addr, ty) = self.lval(e)?;
                match ty {
                    // Array decay: the value of an array place is the
                    // address of its first element.
                    TypeExpr::Array(elem, _) => Ok((Value::Addr(addr), TypeExpr::Ptr(elem))),
                    // Struct places have no scalar value; they only make
                    // sense under & or field selection.
                    TypeExpr::Struct(_) => Ok((Value::Addr(addr), TypeExpr::ptr(ty))),
                    scalar => {
                        let v = self.read_cell(addr, &pretty::print_expr(e))?;
                        Ok((v, scalar))
                    }
                }
            }
            ExprKind::Unary(UnOp::AddrOf, inner) => {
                let (addr, ty) = self.lval(inner)?;
                // &array decays like the array itself.
                match ty {
                    TypeExpr::Array(elem, _) => Ok((Value::Addr(addr), TypeExpr::Ptr(elem))),
                    other => Ok((Value::Addr(addr), TypeExpr::ptr(other))),
                }
            }
            ExprKind::Unary(UnOp::Neg, inner) => {
                let (v, _) = self.rval(inner)?;
                Ok((Value::Int(-as_int(v)?), TypeExpr::Int))
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                let (v, _) = self.rval(inner)?;
                Ok((Value::Int((as_int(v)? == 0) as i64), TypeExpr::Int))
            }
            ExprKind::Binary(op, a, b) => {
                let (va, _) = self.rval(a)?;
                let (vb, _) = self.rval(b)?;
                let n = match op {
                    BinOp::Eq => (values_equal(va, vb)) as i64,
                    BinOp::Ne => (!values_equal(va, vb)) as i64,
                    BinOp::Add => as_int(va)?.wrapping_add(as_int(vb)?),
                    BinOp::Sub => as_int(va)?.wrapping_sub(as_int(vb)?),
                    BinOp::Mul => as_int(va)?.wrapping_mul(as_int(vb)?),
                    BinOp::Div => {
                        let d = as_int(vb)?;
                        if d == 0 {
                            return Err(RuntimeError::MemoryFault {
                                detail: "division by zero".to_string(),
                            });
                        }
                        as_int(va)?.wrapping_div(d)
                    }
                    BinOp::Rem => {
                        let d = as_int(vb)?;
                        if d == 0 {
                            return Err(RuntimeError::MemoryFault {
                                detail: "remainder by zero".to_string(),
                            });
                        }
                        as_int(va)?.wrapping_rem(d)
                    }
                    BinOp::Lt => (as_int(va)? < as_int(vb)?) as i64,
                    BinOp::Le => (as_int(va)? <= as_int(vb)?) as i64,
                    BinOp::Gt => (as_int(va)? > as_int(vb)?) as i64,
                    BinOp::Ge => (as_int(va)? >= as_int(vb)?) as i64,
                    BinOp::And => ((as_int(va)? != 0) && (as_int(vb)? != 0)) as i64,
                    BinOp::Or => ((as_int(va)? != 0) || (as_int(vb)? != 0)) as i64,
                };
                Ok((Value::Int(n), TypeExpr::Int))
            }
            ExprKind::Assign(lhs, rhs) => {
                let (v, vt) = self.rval(rhs)?;
                let (addr, _) = self.lval(lhs)?;
                self.write_cell(addr, v, &pretty::print_expr(lhs))?;
                Ok((v, vt))
            }
            ExprKind::Call(f, args) => self.call(&f.name, args),
            ExprKind::New(init) => {
                let (v, t) = self.rval(init)?;
                let addr = self.mem.alloc_cell(v);
                Ok((Value::Addr(addr), TypeExpr::ptr(t)))
            }
            ExprKind::Cast(ty, inner) => {
                let (v, _) = self.rval(inner)?;
                // Dynamically a no-op reinterpretation; abuse surfaces as
                // a later TypeFault/MemoryFault.
                let v = match (ty, v) {
                    (TypeExpr::Int, Value::Addr(a)) => {
                        // Pointer-to-int laundering: expose a number.
                        Value::Int((a.obj as i64) << 16 | a.off as i64)
                    }
                    _ => v,
                };
                Ok((v, ty.clone()))
            }
        }
    }

    // ---- Statements ----------------------------------------------------------

    fn block(&mut self, b: &Block) -> Result<Flow, RuntimeError> {
        self.scopes.push(HashMap::new());
        let mut restores: Vec<Restore> = Vec::new();
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            match self.stmt(s, &mut restores)? {
                Flow::Normal => {}
                other => {
                    flow = other;
                    break;
                }
            }
        }
        // Restrict-declaration scopes end with the block, innermost last
        // bound first restored last? The paper restores at scope exit;
        // reverse order unwinds nesting correctly.
        for r in restores.into_iter().rev() {
            self.restore(r);
        }
        self.scopes.pop();
        Ok(flow)
    }

    /// Applies the §3.2 scope-exit store transformation
    /// `S'[l ↦ S'(l'), l' ↦ err]`.
    fn restore(&mut self, r: Restore) {
        let copy_cell = *self.mem.cell(r.copy);
        let orig = self.mem.cell_mut(r.orig);
        *orig = copy_cell;
        self.mem.cell_mut(r.copy).poisoned = true;
    }

    /// Enters a restrict of the location `l`: fresh copy, original
    /// poisoned. Returns the copy's address.
    fn enter_restrict(&mut self, l: Addr) -> Result<Addr, RuntimeError> {
        if !self.mem.in_bounds(l) {
            return Err(RuntimeError::MemoryFault {
                detail: format!("restrict of out-of-bounds {l}"),
            });
        }
        let cell = *self.mem.cell(l);
        let copy = self.mem.alloc_cell(cell.value);
        // The copy inherits poison: restricting an already-restricted
        // location binds err to the new name (the paper's semantics);
        // the violation fires on use, not on binding.
        self.mem.cell_mut(copy).poisoned = cell.poisoned;
        self.mem.cell_mut(l).poisoned = true;
        Ok(copy)
    }

    fn stmt(&mut self, s: &Stmt, restores: &mut Vec<Restore>) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match &s.kind {
            StmtKind::Expr(e) => {
                self.rval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl {
                binding,
                ty,
                name,
                init,
            } => {
                let addr = self.mem.alloc(ty);
                if let Some(e) = init {
                    let (v, _) = self.rval(e)?;
                    match binding {
                        BindingKind::Let => {
                            self.write_cell(addr, v, &name.name)?;
                        }
                        BindingKind::Restrict => {
                            // restrict T *x = e; — scope is the rest of
                            // the block.
                            let l = match v {
                                Value::Addr(a) => a,
                                other => {
                                    return Err(RuntimeError::TypeFault {
                                        detail: format!("restrict of non-pointer {other}"),
                                    })
                                }
                            };
                            let copy = self.enter_restrict(l)?;
                            self.write_cell(addr, Value::Addr(copy), &name.name)?;
                            restores.push(Restore { orig: l, copy });
                        }
                    }
                }
                self.scopes.last_mut().expect("in a scope").insert(
                    name.name.to_string(),
                    Binding {
                        addr,
                        ty: ty.clone(),
                    },
                );
                Ok(Flow::Normal)
            }
            StmtKind::Restrict { name, init, body } => {
                let (v, t) = self.rval(init)?;
                let l = match v {
                    Value::Addr(a) => a,
                    other => {
                        return Err(RuntimeError::TypeFault {
                            detail: format!("restrict of non-pointer {other}"),
                        })
                    }
                };
                let copy = self.enter_restrict(l)?;
                // Bind x as a fresh variable holding the copy's address.
                let xaddr = self.mem.alloc_cell(Value::Addr(copy));
                self.scopes.push(HashMap::new());
                self.scopes.last_mut().expect("scope").insert(
                    name.name.to_string(),
                    Binding {
                        addr: xaddr,
                        ty: t.clone(),
                    },
                );
                let flow = self.block(body)?;
                self.scopes.pop();
                self.restore(Restore { orig: l, copy });
                Ok(flow)
            }
            StmtKind::Confine { expr, body } => {
                let (v, vt) = self.rval(expr)?;
                let l = match v {
                    Value::Addr(a) => a,
                    other => {
                        return Err(RuntimeError::TypeFault {
                            detail: format!("confine of non-pointer {other}"),
                        })
                    }
                };
                let copy = self.enter_restrict(l)?;
                let key = pretty::print_expr(expr);
                self.substs.push((key, Value::Addr(copy), vt));
                let flow = self.block(body)?;
                self.substs.pop();
                self.restore(Restore { orig: l, copy });
                Ok(flow)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (v, _) = self.rval(cond)?;
                if truthy(v) {
                    self.block(then_blk)
                } else if let Some(e) = else_blk {
                    self.block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body, step } => {
                loop {
                    let (v, _) = self.rval(cond)?;
                    if !truthy(v) {
                        return Ok(Flow::Normal);
                    }
                    match self.block(body)? {
                        // C `for` semantics: the step runs after the body
                        // and on `continue`.
                        Flow::Normal | Flow::Continue => {
                            if let Some(step) = step {
                                self.rval(step)?;
                            }
                        }
                        Flow::Break => return Ok(Flow::Normal),
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.rval(e)?.0,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(b) => self.block(b),
        }
    }

    // ---- Calls -----------------------------------------------------------------

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(Value, TypeExpr), RuntimeError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.rval(a)?.0);
        }
        if intrinsics::is_change_type(name) {
            for v in &vals {
                self.lock_op(name, *v)?;
            }
            return Ok((Value::Void, TypeExpr::Void));
        }
        let Some(f) = self.module.function(name) else {
            // Extern: no effect; produce a default of the return type.
            let ret = self
                .module
                .externs()
                .find(|e| e.name.name == name)
                .map(|e| e.ret.clone())
                .unwrap_or(TypeExpr::Void);
            return Ok((default_value(&ret), ret));
        };
        if self.depth >= 64 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.call_def(f, &vals)
    }

    fn call_def(&mut self, f: &FunDef, args: &[Value]) -> Result<(Value, TypeExpr), RuntimeError> {
        let saved_scopes = std::mem::take(&mut self.scopes);
        let saved_fun = std::mem::replace(&mut self.current_fun, f.name.name.to_string());
        self.depth += 1;
        self.scopes.push(HashMap::new());

        let mut restores = Vec::new();
        for (p, v) in f.params.iter().zip(args) {
            let addr = self.mem.alloc(&p.ty);
            let bound = if p.restrict {
                // A restrict parameter enters a restrict scope for the
                // whole call.
                match v {
                    Value::Addr(l) => {
                        let copy = self.enter_restrict(*l)?;
                        restores.push(Restore { orig: *l, copy });
                        Value::Addr(copy)
                    }
                    other => *other,
                }
            } else {
                *v
            };
            self.write_cell(addr, bound, &p.name.name)?;
            self.scopes.last_mut().expect("scope").insert(
                p.name.name.to_string(),
                Binding {
                    addr,
                    ty: p.ty.clone(),
                },
            );
        }

        let result = self.block(&f.body);

        for r in restores.into_iter().rev() {
            self.restore(r);
        }
        self.depth -= 1;
        self.current_fun = saved_fun;
        self.scopes = saved_scopes;

        match result? {
            Flow::Return(v) => Ok((v, f.ret.clone())),
            _ => Ok((default_value(&f.ret), f.ret.clone())),
        }
    }

    fn lock_op(&mut self, op: &str, v: Value) -> Result<(), RuntimeError> {
        let Value::Addr(a) = v else {
            return Err(RuntimeError::TypeFault {
                detail: format!("{op} of non-pointer {v}"),
            });
        };
        let held = match self.read_cell(a, op)? {
            Value::Lock(h) => h,
            other => {
                return Err(RuntimeError::TypeFault {
                    detail: format!("{op} of non-lock {other}"),
                })
            }
        };
        match op {
            intrinsics::SPIN_LOCK => {
                if held {
                    self.lock_faults.push(LockFault {
                        fun: self.current_fun.clone(),
                        detail: format!("double acquire at {a}"),
                    });
                }
                self.write_cell(a, Value::Lock(true), op)?;
            }
            intrinsics::SPIN_UNLOCK => {
                if !held {
                    self.lock_faults.push(LockFault {
                        fun: self.current_fun.clone(),
                        detail: format!("release of unheld lock at {a}"),
                    });
                }
                self.write_cell(a, Value::Lock(false), op)?;
            }
            _ => {
                // Generic change_type: flip arbitrarily.
                self.write_cell(a, Value::Lock(!held), op)?;
            }
        }
        Ok(())
    }

    /// Calls a named function with synthesized arguments: `n` for every
    /// integer parameter, a fresh zeroed object for every pointer
    /// parameter, and the type's default for everything else (a free
    /// lock for by-value lock parameters — passing `n` would make the
    /// very first `spin_lock` a [`RuntimeError::TypeFault`] and hide
    /// the lock behaviour the caller wants to observe).
    pub fn call_with_default_args(&mut self, name: &str, n: i64) -> Result<Value, RuntimeError> {
        let Some(f) = self.module.function(name) else {
            return Err(RuntimeError::Unbound(name.to_string()));
        };
        let f = f.clone();
        let mut args = Vec::new();
        for p in &f.params {
            let v = match &p.ty {
                TypeExpr::Ptr(inner) => Value::Addr(self.mem.alloc(inner)),
                TypeExpr::Int => Value::Int(n),
                other => default_value(other),
            };
            args.push(v);
        }
        self.call_def(&f, &args).map(|(v, _)| v)
    }

    /// Calls a named function with explicit argument values — the
    /// differential fuzz oracle's entry point, which synthesizes its own
    /// argument tuples (distinct and colliding indices, fresh objects)
    /// instead of the one-size default above. Missing trailing arguments
    /// are padded with the parameter type's default value.
    pub fn call_entry(&mut self, name: &str, args: &[Value]) -> Result<Value, RuntimeError> {
        let Some(f) = self.module.function(name) else {
            return Err(RuntimeError::Unbound(name.to_string()));
        };
        let f = f.clone();
        let mut vals = args.to_vec();
        for p in f.params.iter().skip(vals.len()) {
            vals.push(match &p.ty {
                TypeExpr::Ptr(inner) => Value::Addr(self.mem.alloc(inner)),
                other => default_value(other),
            });
        }
        self.call_def(&f, &vals).map(|(v, _)| v)
    }

    /// Allocates a fresh zeroed object of type `ty` and returns its
    /// address — how the fuzz oracle materializes pointer arguments.
    pub fn fresh_object(&mut self, ty: &TypeExpr) -> Value {
        Value::Addr(self.mem.alloc(ty))
    }

    /// Number of lock cells currently held (see
    /// [`Memory::held_lock_count`]).
    pub fn held_locks(&self) -> usize {
        self.mem.held_lock_count()
    }

    /// Runs every function in the module once with synthesized arguments
    /// (argument integer `n`), stopping at the first runtime error.
    pub fn run_all(&mut self, n: i64) -> Result<(), RuntimeError> {
        let names: Vec<String> = self
            .module
            .functions()
            .map(|f| f.name.name.to_string())
            .collect();
        for name in names {
            self.call_with_default_args(&name, n)?;
        }
        Ok(())
    }
}

fn as_int(v: Value) -> Result<i64, RuntimeError> {
    match v {
        Value::Int(n) => Ok(n),
        other => Err(RuntimeError::TypeFault {
            detail: format!("expected an integer, got {other}"),
        }),
    }
}

fn truthy(v: Value) -> bool {
    match v {
        Value::Int(n) => n != 0,
        Value::Addr(_) => true,
        Value::Lock(_) | Value::Void => false,
    }
}

fn values_equal(a: Value, b: Value) -> bool {
    a == b
}

/// Shapes a confine substitution can match (mirrors
/// [`Expr::is_confinable_shape`] roots).
fn is_substitutable(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Var(_)
            | ExprKind::Unary(UnOp::AddrOf | UnOp::Deref, _)
            | ExprKind::Field(_, _)
            | ExprKind::Arrow(_, _)
            | ExprKind::Index(_, _)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;

    fn eval_main(src: &str) -> Result<Value, RuntimeError> {
        let m = parse_module("t", src).unwrap();
        let mut i = Interp::new(&m, 50_000);
        i.call_with_default_args("main", 0)
    }

    #[test]
    fn values_display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Void.to_string(), "()");
        assert_eq!(Value::Lock(true).to_string(), "lock(held)");
        assert_eq!(Value::Addr(Addr { obj: 1, off: 2 }).to_string(), "@1+2");
    }

    #[test]
    fn division_by_zero_faults() {
        let err = eval_main("int main() { return 1 / 0; }").unwrap_err();
        assert!(matches!(err, RuntimeError::MemoryFault { .. }));
        let err = eval_main("int main() { return 1 % 0; }").unwrap_err();
        assert!(matches!(err, RuntimeError::MemoryFault { .. }));
    }

    #[test]
    fn short_circuit_free_logic() {
        let v = eval_main("int main() { return (1 && 0) + (0 || 1) * 10; }").unwrap();
        assert_eq!(v, Value::Int(10));
    }

    #[test]
    fn pointer_equality() {
        let v = eval_main(
            r#"
            int main() {
                int *p = new (0);
                int *q = p;
                int *r = new (0);
                return (p == q) * 10 + (p == r);
            }
            "#,
        )
        .unwrap();
        assert_eq!(v, Value::Int(10));
    }

    #[test]
    fn deep_recursion_is_bounded() {
        let err = eval_main("int rec(int n) { return rec(n + 1); } int main() { return rec(0); }")
            .unwrap_err();
        assert_eq!(err, RuntimeError::OutOfFuel);
    }

    #[test]
    fn unbound_function_errors() {
        let m = parse_module("t", "void f() { }").unwrap();
        let mut i = Interp::new(&m, 1_000);
        let err = i.call_with_default_args("nope", 0).unwrap_err();
        assert!(matches!(err, RuntimeError::Unbound(_)));
    }

    #[test]
    fn cast_launders_pointer_to_int_and_faults_on_use() {
        let err = eval_main(
            r#"
            int main() {
                int *p = new (1);
                int cookie = (int) p;
                int *q = (int*) cookie;
                return *q;
            }
            "#,
        )
        .unwrap_err();
        // The laundered value is no longer an address.
        assert!(matches!(err, RuntimeError::MemoryFault { .. }), "{err}");
    }

    #[test]
    fn errors_display() {
        for e in [
            RuntimeError::RestrictViolation { detail: "x".into() },
            RuntimeError::MemoryFault { detail: "y".into() },
            RuntimeError::TypeFault { detail: "z".into() },
            RuntimeError::OutOfFuel,
            RuntimeError::Unbound("f".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
