#![warn(missing_docs)]

//! A reference interpreter for Mini-C implementing the operational
//! semantics of *Checking and Inferring Local Non-Aliasing* (PLDI 2003),
//! §3.2.
//!
//! The semantic payload is `restrict`'s copy-and-poison rule: entering
//! `restrict x = e1 in e2` copies the referent to a fresh cell and binds
//! the original to `err`; any access through a stale alias inside the
//! scope faults with [`RuntimeError::RestrictViolation`]. The paper's
//! soundness theorem (a program that type checks never evaluates to
//! `err`) is tested empirically against this interpreter.
//!
//! The interpreter also performs *dynamic* lock checking (double
//! acquire/release detection), giving the static analysis in
//! `localias-cqual` a runtime ground truth to compare against.
//!
//! # Example
//!
//! ```
//! use localias_ast::parse_module;
//! use localias_interp::{Interp, RuntimeError};
//!
//! // A restrict violation the checker would reject: executing it faults.
//! let m = parse_module(
//!     "m",
//!     "void f(int *q) { restrict p = q { *p = 1; *q = 2; } }",
//! )?;
//! let mut interp = Interp::new(&m, 10_000);
//! let err = interp.call_with_default_args("f", 0).unwrap_err();
//! assert!(matches!(err, RuntimeError::RestrictViolation { .. }));
//! # Ok::<(), localias_ast::ParseError>(())
//! ```

pub mod eval;
pub mod memory;

pub use eval::{Interp, LockFault, RuntimeError};
pub use memory::{Addr, Cell, Memory, Value};
