//! The interpreter's memory model.
//!
//! Memory is a set of *objects*, each a run of scalar cells (an `int`, a
//! pointer, or a lock occupies one cell; arrays and structs flatten).
//! An [`Addr`] is an `(object, offset)` pair — there is no address
//! arithmetic across objects, and indexing is bounds-checked.
//!
//! Cells can be **poisoned**: this is the paper's §3.2 `err` binding.
//! Evaluating `restrict x = e1 in e2` copies `e1`'s referent into a fresh
//! cell and poisons the original for the extent of `e2`; any program that
//! reads or writes a poisoned cell has violated its `restrict` and the
//! interpreter stops with [`crate::RuntimeError::RestrictViolation`].

use localias_ast::{Module, TypeExpr};
use std::collections::HashMap;
use std::fmt;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A pointer.
    Addr(Addr),
    /// A lock; `true` = held.
    Lock(bool),
    /// The unit value (void returns).
    Void,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Addr(a) => write!(f, "{a}"),
            Value::Lock(held) => write!(f, "lock({})", if *held { "held" } else { "free" }),
            Value::Void => write!(f, "()"),
        }
    }
}

/// The address of one cell: `(object id, offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Object id in the [`Memory`].
    pub obj: usize,
    /// Cell offset within the object.
    pub off: usize,
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}+{}", self.obj, self.off)
    }
}

/// One memory cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Current value.
    pub value: Value,
    /// `true` while a `restrict`/`confine` has bound this cell's only
    /// legal access path elsewhere (the paper's `err`).
    pub poisoned: bool,
}

/// One allocated object: a run of cells.
#[derive(Debug, Clone)]
pub struct Obj {
    /// The cells.
    pub cells: Vec<Cell>,
}

/// The store `S` of the big-step semantics.
#[derive(Debug, Default)]
pub struct Memory {
    objects: Vec<Obj>,
    /// Struct layouts: name → (field name → (offset, type)), plus total
    /// size, computed once per module.
    layouts: HashMap<String, StructLayout>,
}

/// The flattened layout of a struct type.
#[derive(Debug, Clone)]
pub struct StructLayout {
    /// Field name → (cell offset, field type).
    pub fields: HashMap<String, (usize, TypeExpr)>,
    /// Total size in cells.
    pub size: usize,
}

/// Size of a type in cells.
pub fn size_of(ty: &TypeExpr, layouts: &HashMap<String, StructLayout>) -> usize {
    match ty {
        TypeExpr::Int | TypeExpr::Lock | TypeExpr::Void | TypeExpr::Ptr(_) => 1,
        TypeExpr::Array(elem, n) => n * size_of(elem, layouts),
        TypeExpr::Struct(s) => layouts.get(s.as_str()).map(|l| l.size).unwrap_or(1),
    }
}

/// The default (zero) value of a scalar type.
pub fn default_value(ty: &TypeExpr) -> Value {
    match ty {
        TypeExpr::Lock => Value::Lock(false),
        TypeExpr::Ptr(_) => Value::Int(0), // "null"; dereferencing traps
        _ => Value::Int(0),
    }
}

impl Memory {
    /// Creates memory with the module's struct layouts computed.
    pub fn new(m: &Module) -> Self {
        let mut layouts: HashMap<String, StructLayout> = HashMap::new();
        // Structs may reference earlier structs; iterate until stable
        // (no recursion is possible since struct fields are by value).
        for _ in 0..m.structs().count() + 1 {
            for s in m.structs() {
                if layouts.contains_key(s.name.name.as_str()) {
                    continue;
                }
                if s.fields.iter().all(|(_, t)| match t {
                    TypeExpr::Struct(inner) => layouts.contains_key(inner.as_str()),
                    _ => true,
                }) {
                    let mut fields = HashMap::new();
                    let mut off = 0;
                    for (fname, fty) in &s.fields {
                        fields.insert(fname.name.to_string(), (off, fty.clone()));
                        off += size_of(fty, &layouts);
                    }
                    layouts.insert(s.name.name.to_string(), StructLayout { fields, size: off });
                }
            }
        }
        Memory {
            objects: Vec::new(),
            layouts,
        }
    }

    /// The struct layouts.
    pub fn layouts(&self) -> &HashMap<String, StructLayout> {
        &self.layouts
    }

    /// Allocates an object for a value of type `ty`, zero-initialized,
    /// and returns the address of its first cell.
    pub fn alloc(&mut self, ty: &TypeExpr) -> Addr {
        let size = size_of(ty, &self.layouts);
        let cells = self.init_cells(ty, size);
        let obj = self.objects.len();
        self.objects.push(Obj { cells });
        Addr { obj, off: 0 }
    }

    /// Allocates a single cell holding `v`.
    pub fn alloc_cell(&mut self, v: Value) -> Addr {
        let obj = self.objects.len();
        self.objects.push(Obj {
            cells: vec![Cell {
                value: v,
                poisoned: false,
            }],
        });
        Addr { obj, off: 0 }
    }

    fn init_cells(&self, ty: &TypeExpr, size: usize) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(size);
        self.push_cells(ty, &mut cells);
        debug_assert_eq!(cells.len(), size);
        cells
    }

    fn push_cells(&self, ty: &TypeExpr, out: &mut Vec<Cell>) {
        match ty {
            TypeExpr::Array(elem, n) => {
                for _ in 0..*n {
                    self.push_cells(elem, out);
                }
            }
            TypeExpr::Struct(s) => {
                if let Some(layout) = self.layouts.get(s.as_str()) {
                    // Fields in offset order.
                    let mut fields: Vec<(&usize, &TypeExpr)> =
                        layout.fields.values().map(|(o, t)| (o, t)).collect();
                    fields.sort_by_key(|(o, _)| **o);
                    for (_, t) in fields {
                        self.push_cells(t, out);
                    }
                } else {
                    out.push(Cell {
                        value: Value::Int(0),
                        poisoned: false,
                    });
                }
            }
            scalar => out.push(Cell {
                value: default_value(scalar),
                poisoned: false,
            }),
        }
    }

    /// Whether `a` is a valid cell address.
    pub fn in_bounds(&self, a: Addr) -> bool {
        self.objects
            .get(a.obj)
            .is_some_and(|o| a.off < o.cells.len())
    }

    /// The cell at `a`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds; callers bounds-check first.
    pub fn cell(&self, a: Addr) -> &Cell {
        &self.objects[a.obj].cells[a.off]
    }

    /// Mutable access to the cell at `a`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds; callers bounds-check first.
    pub fn cell_mut(&mut self, a: Addr) -> &mut Cell {
        &mut self.objects[a.obj].cells[a.off]
    }

    /// Number of objects allocated.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of lock cells currently in the held state, across every
    /// object. The differential fuzz oracle reads this after an entry
    /// function returns: a nonzero count on a path the checker verified
    /// means a lock escaped its balanced region (handoff or leak).
    pub fn held_lock_count(&self) -> usize {
        self.objects
            .iter()
            .flat_map(|o| &o.cells)
            .filter(|c| c.value == Value::Lock(true))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;

    #[test]
    fn scalar_sizes() {
        let layouts = HashMap::new();
        assert_eq!(size_of(&TypeExpr::Int, &layouts), 1);
        assert_eq!(size_of(&TypeExpr::Lock, &layouts), 1);
        assert_eq!(size_of(&TypeExpr::ptr(TypeExpr::Int), &layouts), 1);
        assert_eq!(size_of(&TypeExpr::array(TypeExpr::Lock, 5), &layouts), 5);
    }

    #[test]
    fn struct_layouts_flatten() {
        let m = parse_module(
            "m",
            r#"
            struct inner { int a; int b; };
            struct outer { lock mu; struct inner nested; int tail; };
            "#,
        )
        .unwrap();
        let mem = Memory::new(&m);
        let outer = &mem.layouts()["outer"];
        assert_eq!(outer.size, 4);
        assert_eq!(outer.fields["mu"].0, 0);
        assert_eq!(outer.fields["nested"].0, 1);
        assert_eq!(outer.fields["tail"].0, 3);
    }

    #[test]
    fn alloc_and_bounds() {
        let m = parse_module("m", "lock locks[3];").unwrap();
        let mut mem = Memory::new(&m);
        let a = mem.alloc(&TypeExpr::array(TypeExpr::Lock, 3));
        assert!(mem.in_bounds(Addr { obj: a.obj, off: 2 }));
        assert!(!mem.in_bounds(Addr { obj: a.obj, off: 3 }));
        assert_eq!(mem.cell(a).value, Value::Lock(false));
    }
}
