//! Leveled stderr logging.
//!
//! One process-global [`Level`] gates every diagnostic the pipeline
//! emits. The default is [`Level::Info`] — exactly the old `eprintln!`
//! behavior — `--quiet` drops it to [`Level::Warn`] (warnings about
//! discarded cache entries still print), and the `LOCALIAS_LOG`
//! environment variable (`off|error|warn|info|debug`) overrides both.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severities, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Recoverable anomalies (discarded cache entries, lock skips).
    Warn = 2,
    /// Normal progress diagnostics — the default.
    Info = 3,
    /// Verbose tracing aids.
    Debug = 4,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Returns `true` if messages at `level` are currently emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Parses a `LOCALIAS_LOG` value.
fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Some(Level::Off),
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    }
}

/// Applies `LOCALIAS_LOG` from the environment, if set and valid.
/// Returns the level it installed, or `None` when the variable is unset
/// or unparseable (the current level is kept either way).
pub fn init_from_env() -> Option<Level> {
    let raw = std::env::var("LOCALIAS_LOG").ok()?;
    let level = parse_level(&raw)?;
    set_level(level);
    Some(level)
}

/// Logs at [`Level::Error`] (formatted like `eprintln!`).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Error) {
            eprintln!($($arg)*);
        }
    };
}

/// Logs at [`Level::Warn`] — never silenced by `--quiet`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            eprintln!($($arg)*);
        }
    };
}

/// Logs at [`Level::Info`] — routine progress, silenced by `--quiet`.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Logs at [`Level::Debug`] — off by default, on under
/// `LOCALIAS_LOG=debug`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(parse_level("WARN"), Some(Level::Warn));
        assert_eq!(parse_level(" debug "), Some(Level::Debug));
        assert_eq!(parse_level("off"), Some(Level::Off));
        assert_eq!(parse_level("loud"), None);
    }

    #[test]
    fn gate_respects_level() {
        let _l = crate::test_lock();
        set_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_level(Level::Info);
        assert!(log_enabled(Level::Info));
    }
}
