#![warn(missing_docs)]

//! Structured tracing, metrics and leveled logging for the whole
//! analysis pipeline.
//!
//! The paper's empirical claims are about *where time and precision go*
//! — O(kn) `CHECK-SAT`, O(n²) restrict inference, 589 flow-checked
//! driver modules — and this crate is how the repo sees any of that.
//! Three facilities, all process-global, all zero-dep, all compiled down
//! to **a branch on one relaxed atomic load when no sink is installed**:
//!
//! * **Spans** ([`span!`]): phase-scoped timers recorded into a
//!   thread-local ring buffer and merged *deterministically* into a
//!   process-wide aggregate keyed by hierarchical path — traces are
//!   stable (modulo timestamps) for any `--jobs`/`--intra-jobs` value.
//!   Worker threads inherit their spawner's span path through
//!   [`fork`]/[`SpanContext::attach`], so the span tree is identical
//!   whether a wave ran sequentially or on eight threads.
//! * **Counters** ([`count`]/[`counter!`]): named monotonic event
//!   counters ([`Counter`]) incremented from deep inside the alias,
//!   effects and cqual crates. Relaxed atomic adds commute, so totals
//!   are byte-identical for every thread count.
//! * **Histograms** ([`record`]/[`hist_timer!`]): log2-bucketed latency
//!   distributions ([`Hist`]) with exact count/sum/min/max and
//!   deterministic percentiles, merged thread-locally exactly like
//!   spans — the per-event view (p50/p95/p99) that sums and means hide.
//! * **Leveled logging** ([`error!`]/[`warn!`]/[`info!`]/[`debug!`]):
//!   every diagnostic the pipeline used to `eprintln!` now respects one
//!   global [`Level`], set from `LOCALIAS_LOG` and `--quiet`.
//!
//! Sinks are pulled, not pushed: enable collection with
//! [`enable_metrics`]/[`enable_spans`]/[`enable_hists`], run the
//! pipeline, then [`drain`] a [`Trace`] and render it as a JSON-lines
//! file ([`Trace::to_jsonl`], schema `localias-trace/v2`), a human
//! profile table ([`Trace::render_profile`]), or a Chrome trace-event
//! timeline ([`chrome_trace`]) that opens in Perfetto.

mod chrome;
mod hist;
mod log;
mod metrics;
mod span;
mod trace;

pub use chrome::chrome_trace;
pub use hist::{
    bucket_index, bucket_upper_bound, fmt_ns, hist_by_name, hist_name, hists_enabled, record,
    record_duration, Hist, HistSnapshot, HistTimer, ALL_HISTS, HIST_BUCKETS, HIST_COUNT,
};
pub use log::{init_from_env, log_enabled, set_level, Level};
pub use metrics::{
    count, counter_name, gauge_max, metrics_enabled, peak_rss_bytes, Counter, Metrics,
};
pub use span::{fork, spans_enabled, Span, SpanAgg, SpanContext};
pub use trace::{text_histogram, validate_jsonl, Trace, TraceSummary, SCHEMA, SCHEMA_V1};

use std::sync::atomic::Ordering;

/// Enables counter collection ([`count`] becomes live).
pub fn enable_metrics() {
    metrics::METRICS_ENABLED.store(true, Ordering::Relaxed);
}

/// Disables counter collection (counts keep their values).
pub fn disable_metrics() {
    metrics::METRICS_ENABLED.store(false, Ordering::Relaxed);
}

/// Enables span collection ([`span!`] starts recording).
pub fn enable_spans() {
    span::SPANS_ENABLED.store(true, Ordering::Relaxed);
}

/// Disables span collection (already-recorded spans stay buffered).
pub fn disable_spans() {
    span::SPANS_ENABLED.store(false, Ordering::Relaxed);
}

/// Enables histogram collection ([`record`] and [`hist_timer!`] become
/// live). Histograms are cheap enough that the bench harness keeps them
/// on even when no span/counter sink is installed — every bench
/// artifact carries latency percentiles.
pub fn enable_hists() {
    hist::HISTS_ENABLED.store(true, Ordering::Relaxed);
}

/// Disables histogram collection (already-recorded samples stay
/// buffered).
pub fn disable_hists() {
    hist::HISTS_ENABLED.store(false, Ordering::Relaxed);
}

/// Enables spans, counters and histograms — the usual "install a sink"
/// call behind `--trace-out` / `--profile` / `--trace-chrome`.
pub fn enable_all() {
    enable_metrics();
    enable_spans();
    enable_hists();
}

/// Drains everything recorded so far into a [`Trace`]: flushes the
/// calling thread's span and histogram buffers, merges the global
/// aggregates, and snapshots every counter. All three stores are reset
/// so a subsequent drain observes only new work.
pub fn drain() -> Trace {
    span::flush_current_thread();
    Trace {
        spans: span::take_aggregate(),
        hists: hist::take_hists(),
        counters: metrics::take_counters(),
    }
}

/// A serialized test lock for code that asserts on exact global counter
/// or span values. Process-global counters mean concurrently running
/// tests that *enable* collection would observe each other; tests hold
/// this lock across enable → work → [`drain`] → disable.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Opens a phase-scoped span: records wall time from here to the end of
/// the enclosing scope under the given `&'static str` name, nested under
/// whatever span is live on this thread. Compiles to one relaxed atomic
/// load when spans are disabled.
///
/// ```
/// # use localias_obs as obs;
/// let _guard = obs::span!("alias.analyze");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

/// Increments a named [`Counter`] (alias for calling [`count`]).
///
/// ```
/// # use localias_obs as obs;
/// obs::counter!(obs::Counter::AliasUnifications, 1);
/// ```
#[macro_export]
macro_rules! counter {
    ($c:expr, $n:expr) => {
        $crate::count($c, $n)
    };
}

/// Times the enclosing scope into a latency [`Hist`]ogram: records the
/// elapsed nanoseconds when the returned guard drops. Compiles to one
/// relaxed atomic load when histograms are disabled.
///
/// ```
/// # use localias_obs as obs;
/// let _t = obs::hist_timer!(obs::Hist::AnalyzeModule);
/// ```
#[macro_export]
macro_rules! hist_timer {
    ($h:expr) => {
        $crate::HistTimer::start($h)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_roundtrip_counts_and_spans() {
        let _l = test_lock();
        enable_all();
        {
            let _root = span!("test.root");
            let _child = span!("test.child");
            count(Counter::AliasUnifications, 3);
            count(Counter::AliasUnifications, 4);
        }
        let t = drain();
        disable_metrics();
        disable_spans();
        disable_hists();
        assert_eq!(t.counter(Counter::AliasUnifications), 7);
        let paths: Vec<&str> = t.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"test.root"), "{paths:?}");
        assert!(paths.contains(&"test.root/test.child"), "{paths:?}");
        // A second drain observes nothing.
        let t2 = drain();
        assert_eq!(t2.counter(Counter::AliasUnifications), 0);
        assert!(t2.spans.is_empty());
    }

    #[test]
    fn disabled_macros_record_nothing() {
        let _l = test_lock();
        disable_metrics();
        disable_spans();
        disable_hists();
        let _ = drain();
        {
            let _s = span!("test.dead");
            count(Counter::EffectVars, 99);
        }
        let t = drain();
        assert_eq!(t.counter(Counter::EffectVars), 0);
        assert!(t.spans.is_empty());
    }

    #[test]
    fn forked_context_merges_worker_spans_under_parent() {
        let _l = test_lock();
        enable_all();
        let _ = drain();
        {
            let _root = span!("test.sweep");
            let cx = fork();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let cx = cx.clone();
                    s.spawn(move || {
                        let _att = cx.attach();
                        let _w = span!("test.module");
                    });
                }
            });
            // Sequential sibling takes the same path.
            let _w = span!("test.module");
        }
        let t = drain();
        disable_metrics();
        disable_spans();
        disable_hists();
        let m = t
            .spans
            .iter()
            .find(|s| s.path == "test.sweep/test.module")
            .expect("worker spans nest under the forked parent");
        assert_eq!(m.count, 3, "two workers + one sequential");
    }
}
