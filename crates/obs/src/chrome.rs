//! Chrome trace-event export: renders a drained trace as a JSON
//! document that `chrome://tracing` and Perfetto open directly.
//!
//! The obs aggregate is *merged* — per span path it keeps a count and
//! total/self time, not individual begin/end timestamps — so this
//! exporter synthesizes a timeline: root spans lie end to end from
//! t = 0, and each span's children lie end to end inside it, scaled
//! down proportionally when same-thread re-entry makes the children's
//! totals sum past their parent. The picture preserves the span tree's
//! shape and relative magnitudes, not the original interleaving; the
//! `args` payload on every slice carries the exact aggregate numbers,
//! and counters/histograms ride along as counter events at t = 0.

use crate::hist::HistSnapshot;
use crate::span::SpanAgg;
use crate::trace::esc;
use std::fmt::Write as _;

/// Renders spans, counters and histograms as one Chrome trace-event
/// JSON object (`{"traceEvents":[...]}`). Spans must be sorted by path
/// (the shape [`crate::drain`] and [`crate::validate_jsonl`] produce).
pub fn chrome_trace(
    spans: &[SpanAgg],
    counters: &[(String, u64)],
    hists: &[HistSnapshot],
) -> String {
    let mut events: Vec<String> = Vec::new();
    layout(spans, None, 0.0, f64::INFINITY, &mut events);
    for (name, value) in counters {
        let mut e = String::from("{\"name\":\"");
        esc(name, &mut e);
        let _ = write!(
            e,
            "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"args\":{{\"value\":{value}}}}}"
        );
        events.push(e);
    }
    for h in hists {
        let mut e = String::from("{\"name\":\"hist:");
        esc(&h.name, &mut e);
        let _ = write!(
            e,
            "\",\"cat\":\"hist\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"args\":{{\
             \"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}}}",
            h.count,
            h.percentile(50),
            h.percentile(90),
            h.percentile(95),
            h.percentile(99),
            h.max_ns
        );
        events.push(e);
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

/// Direct children of `parent` (or the roots, when `None`) in a
/// path-sorted span aggregate.
fn children<'a>(spans: &'a [SpanAgg], parent: Option<&str>) -> Vec<&'a SpanAgg> {
    spans
        .iter()
        .filter(|s| match parent {
            None => !s.path.contains('/'),
            Some(p) => s
                .path
                .strip_prefix(p)
                .and_then(|r| r.strip_prefix('/'))
                .is_some_and(|r| !r.contains('/')),
        })
        .collect()
}

/// Emits one "X" (complete) event per span under `parent`, laid
/// sequentially from `start_ns` and squeezed into `budget_ns`, then
/// recurses into each span's own children within its allotted window.
fn layout(
    spans: &[SpanAgg],
    parent: Option<&str>,
    start_ns: f64,
    budget_ns: f64,
    events: &mut Vec<String>,
) {
    let kids = children(spans, parent);
    if kids.is_empty() {
        return;
    }
    let natural: f64 = kids.iter().map(|s| s.total_ns as f64).sum();
    let scale = if natural > budget_ns && natural > 0.0 {
        budget_ns / natural
    } else {
        1.0
    };
    let mut cursor = start_ns;
    for s in kids {
        let dur_ns = s.total_ns as f64 * scale;
        let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
        let mut e = String::from("{\"name\":\"");
        esc(leaf, &mut e);
        e.push_str("\",\"cat\":\"span\",\"ph\":\"X\",");
        let _ = write!(
            e,
            "\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{\"path\":\"",
            cursor / 1e3,
            dur_ns / 1e3
        );
        esc(&s.path, &mut e);
        let _ = write!(
            e,
            "\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}}}",
            s.count, s.total_ns, s.self_ns
        );
        events.push(e);
        layout(spans, Some(&s.path), cursor, dur_ns, events);
        cursor += dur_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(path: &str, count: u64, total_ns: u64, self_ns: u64) -> SpanAgg {
        SpanAgg {
            path: path.to_string(),
            count,
            total_ns,
            self_ns,
        }
    }

    #[test]
    fn nests_children_inside_their_parent_window() {
        let spans = vec![
            agg("sweep", 1, 1_000_000, 400_000),
            agg("sweep/analyze", 10, 500_000, 500_000),
            agg("sweep/check", 10, 100_000, 100_000),
        ];
        let out = chrome_trace(&spans, &[], &[]);
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(out.contains("\"name\":\"sweep\""));
        assert!(out.contains("\"name\":\"analyze\""));
        // sweep spans [0, 1000) µs; analyze spans [0, 500) µs inside it.
        assert!(out.contains("\"ts\":0.000,\"dur\":1000.000"));
        assert!(out.contains("\"ts\":0.000,\"dur\":500.000"));
        // check follows analyze sequentially.
        assert!(out.contains("\"ts\":500.000,\"dur\":100.000"));
        assert!(out.contains("\"path\":\"sweep/check\""));
    }

    #[test]
    fn overflowing_children_scale_into_the_parent() {
        // Two children of 800 µs each inside a 1 ms parent: scaled ×0.625.
        let spans = vec![
            agg("p", 1, 1_000_000, 0),
            agg("p/a", 1, 800_000, 800_000),
            agg("p/b", 1, 800_000, 800_000),
        ];
        let out = chrome_trace(&spans, &[], &[]);
        assert!(out.contains("\"ts\":0.000,\"dur\":500.000"), "{out}");
        assert!(out.contains("\"ts\":500.000,\"dur\":500.000"), "{out}");
        // The exact aggregate survives in args even when scaled.
        assert!(out.contains("\"total_ns\":800000"));
    }

    #[test]
    fn counters_and_hists_become_counter_events() {
        let h = {
            let mut h = HistSnapshot::empty("analyze.module");
            h.count = 4;
            h.sum_ns = 40;
            h.min_ns = 10;
            h.max_ns = 10;
            h.buckets = vec![(4, 4)];
            h
        };
        let out = chrome_trace(&[], &[("alias.unifications".to_string(), 7)], &[h]);
        assert!(out.contains("\"name\":\"alias.unifications\""));
        assert!(out.contains("\"args\":{\"value\":7}"));
        assert!(out.contains("\"name\":\"hist:analyze.module\""));
        assert!(out.contains("\"p50_ns\":10"), "clamped to max: {out}");
        assert!(out.contains("\"count\":4"));
        assert!(out.ends_with("\n]}\n"));
    }
}
