//! Phase-scoped spans with deterministic cross-thread merging.
//!
//! Each live thread keeps a stack of open spans plus a bounded buffer
//! (the "ring") of completed span records. A completed span records its
//! hierarchical *path* — the names of every enclosing span joined with
//! `/` — and its total/self wall time. Buffers flush into one global
//! aggregate keyed by path whenever the thread's span stack empties (or
//! the buffer fills), and aggregation is commutative, so the merged
//! result is independent of thread count and scheduling: the span *tree*
//! (paths and counts) is byte-stable for any `--jobs`/`--intra-jobs`
//! value, and only the recorded durations vary run to run.
//!
//! Worker threads do not start inside their spawner's spans — their
//! stacks are empty — so a parallel run would record different paths
//! than a sequential one. [`fork`] captures the spawner's current path
//! and [`SpanContext::attach`] grafts it onto a worker as a base prefix,
//! making the merged tree identical whichever thread did the work.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
use std::time::Instant;

/// Global gate for span collection (see [`crate::enable_spans`]).
pub(crate) static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns `true` if spans are being collected.
#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Completed spans buffered per thread before the next flush.
const RING_CAPACITY: usize = 256;

/// One open span on a thread's stack.
struct Frame {
    name: &'static str,
    start: Instant,
    /// Nanoseconds spent in already-completed direct children (on this
    /// thread), subtracted from total to get self time.
    child_ns: u64,
}

/// One completed span, not yet merged into the global aggregate.
struct SpanRec {
    path: String,
    total_ns: u64,
    self_ns: u64,
}

#[derive(Default)]
struct ThreadSpans {
    /// Path prefix grafted by [`SpanContext::attach`].
    base: Vec<&'static str>,
    stack: Vec<Frame>,
    buf: Vec<SpanRec>,
}

thread_local! {
    static TLS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::default());
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    /// Hierarchical span path, enclosing names joined with `/`.
    pub path: String,
    /// Number of times a span completed at this path.
    pub count: u64,
    /// Total wall nanoseconds across all completions.
    pub total_ns: u64,
    /// Total minus time spent in same-thread child spans.
    pub self_ns: u64,
}

/// `(count, total_ns, self_ns)` per span path in the global aggregate.
type AggStats = (u64, u64, u64);

static AGGREGATE: Mutex<Option<HashMap<String, AggStats>>> = Mutex::new(None);

fn merge_into_global(records: Vec<SpanRec>) {
    if records.is_empty() {
        return;
    }
    let mut guard = match AGGREGATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let map = guard.get_or_insert_with(HashMap::new);
    for r in records {
        let slot = map.entry(r.path).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += r.total_ns;
        slot.2 += r.self_ns;
    }
}

/// Flushes the calling thread's completed-span buffer into the global
/// aggregate.
pub(crate) fn flush_current_thread() {
    let records = TLS.with(|t| std::mem::take(&mut t.borrow_mut().buf));
    merge_into_global(records);
}

/// Takes the global span aggregate, sorted by path.
pub(crate) fn take_aggregate() -> Vec<SpanAgg> {
    let map = {
        let mut guard = match AGGREGATE.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.take().unwrap_or_default()
    };
    let mut out: Vec<SpanAgg> = map
        .into_iter()
        .map(|(path, (count, total_ns, self_ns))| SpanAgg {
            path,
            count,
            total_ns,
            self_ns,
        })
        .collect();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

/// A live span: created by [`crate::span!`], records on drop. When spans
/// are disabled this is an inert unit whose construction cost one
/// relaxed atomic load.
#[must_use = "a span records the lifetime of its guard"]
pub struct Span {
    live: bool,
}

impl Span {
    /// Opens a span named `name` under the thread's current span path.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !spans_enabled() {
            return Span { live: false };
        }
        TLS.with(|t| {
            t.borrow_mut().stack.push(Frame {
                name,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        Span { live: true }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let flush = TLS.with(|t| {
            let mut t = t.borrow_mut();
            let Some(frame) = t.stack.pop() else {
                return false; // drained mid-span; nothing to attribute
            };
            let total_ns = frame.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = t.stack.last_mut() {
                parent.child_ns += total_ns;
            }
            let mut path = String::new();
            for name in t.base.iter().chain(t.stack.iter().map(|f| &f.name)) {
                path.push_str(name);
                path.push('/');
            }
            path.push_str(frame.name);
            t.buf.push(SpanRec {
                path,
                total_ns,
                self_ns,
            });
            t.stack.is_empty() || t.buf.len() >= RING_CAPACITY
        });
        if flush {
            flush_current_thread();
        }
    }
}

/// A captured span path, cloneable into worker threads (see [`fork`]).
#[derive(Debug, Clone, Default)]
pub struct SpanContext {
    path: Vec<&'static str>,
}

/// Captures the calling thread's current span path so worker threads can
/// record their spans *under* it ([`SpanContext::attach`]); this is what
/// keeps the merged span tree identical across thread counts.
pub fn fork() -> SpanContext {
    if !spans_enabled() {
        return SpanContext::default();
    }
    TLS.with(|t| {
        let t = t.borrow();
        SpanContext {
            path: t
                .base
                .iter()
                .copied()
                .chain(t.stack.iter().map(|f| f.name))
                .collect(),
        }
    })
}

impl SpanContext {
    /// Grafts this context onto the calling thread as its base span path
    /// until the returned guard drops (which also flushes the thread's
    /// buffer — worker threads typically end right after).
    pub fn attach(&self) -> AttachGuard {
        let prev = TLS.with(|t| {
            let mut t = t.borrow_mut();
            std::mem::replace(&mut t.base, self.path.clone())
        });
        AttachGuard { prev }
    }
}

/// Restores the previous base path (and flushes) on drop.
pub struct AttachGuard {
    prev: Vec<&'static str>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        flush_current_thread();
        // Worker threads flush their histogram samples on the same edge
        // their spans flush — detaching is the "this thread's work is
        // merged" point for every sink.
        crate::hist::flush_current_thread();
        TLS.with(|t| {
            t.borrow_mut().base = std::mem::take(&mut self.prev);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_time_excludes_children() {
        let _l = crate::test_lock();
        crate::enable_spans();
        let _ = crate::drain();
        {
            let _a = Span::enter("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = Span::enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let t = crate::drain();
        crate::disable_spans();
        let outer = t.spans.iter().find(|s| s.path == "outer").unwrap();
        let inner = t.spans.iter().find(|s| s.path == "outer/inner").unwrap();
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "self excludes child time"
        );
    }

    #[test]
    fn ring_overflow_flushes_instead_of_dropping() {
        let _l = crate::test_lock();
        crate::enable_spans();
        let _ = crate::drain();
        {
            let _root = Span::enter("root");
            for _ in 0..(RING_CAPACITY * 2 + 7) {
                let _s = Span::enter("leaf");
            }
        }
        let t = crate::drain();
        crate::disable_spans();
        let leaf = t.spans.iter().find(|s| s.path == "root/leaf").unwrap();
        assert_eq!(leaf.count, (RING_CAPACITY * 2 + 7) as u64);
    }
}
