//! Trace sinks: the versioned JSON-lines format (`localias-trace/v2`),
//! its validator, and the human `--profile` table.
//!
//! A trace file is one JSON object per line:
//!
//! ```text
//! {"schema":"localias-trace/v2"}
//! {"type":"span","path":"experiment/sweep/module.check","count":589,"total_ns":48210934,"self_ns":48210934}
//! {"type":"hist","name":"analyze.module","count":1178,"sum_ns":64170212,"min_ns":9875,"max_ns":1403210,"buckets":[[14,310],[15,704],[16,164]]}
//! {"type":"counter","name":"alias.unifications","value":151320}
//! ```
//!
//! Span lines come sorted by path, then histogram lines sorted by name,
//! then counter lines in registry order, so two traces of the same work
//! differ only in the `*_ns` fields and bucket placement — strip those
//! (see [`Trace::normalized`]) and the trace is byte-identical for any
//! thread count. The validator still accepts the v1 schema (spans +
//! counters only); histogram lines are only legal in v2.

use crate::hist::{bucket_upper_bound, fmt_ns, hist_by_name, HistSnapshot, HIST_BUCKETS};
use crate::metrics::{counter_by_name, Counter, Metrics};
use crate::span::SpanAgg;
use std::fmt::Write as _;

/// The trace file schema identifier.
pub const SCHEMA: &str = "localias-trace/v2";

/// The previous schema identifier — still accepted by the validator so
/// pre-histogram trace files keep validating (and converting to Chrome
/// traces); new files are always written as v2.
pub const SCHEMA_V1: &str = "localias-trace/v1";

/// Everything one [`crate::drain`] observed: the merged span aggregate,
/// the latency histograms, and a counter snapshot.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Aggregated spans, sorted by path.
    pub spans: Vec<SpanAgg>,
    /// Non-empty latency histograms, sorted by name.
    pub hists: Vec<HistSnapshot>,
    /// Counter totals.
    pub counters: Metrics,
}

/// Escapes a string for a JSON string literal.
pub(crate) fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Trace {
    /// The total of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// The drained histogram of one [`crate::Hist`], if it recorded
    /// anything.
    pub fn hist(&self, h: crate::Hist) -> Option<&HistSnapshot> {
        let name = crate::hist_name(h);
        self.hists.iter().find(|s| s.name == name)
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.hists.is_empty() && self.counters.is_empty()
    }

    /// The thread-count-invariant shape of the trace: `(path, count)`
    /// per span, `(name, count)` per histogram, plus every non-zero
    /// counter — timestamps and bucket placement stripped.
    pub fn normalized(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .spans
            .iter()
            .map(|s| (format!("span:{}", s.path), s.count))
            .collect();
        out.extend(
            self.hists
                .iter()
                .map(|h| (format!("hist:{}", h.name), h.count)),
        );
        out.extend(
            self.counters
                .iter_nonzero()
                .map(|(n, v)| (format!("counter:{n}"), v)),
        );
        out
    }

    /// Renders the versioned JSON-lines trace.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"schema\":\"{SCHEMA}\"}}");
        for s in &self.spans {
            out.push_str("{\"type\":\"span\",\"path\":\"");
            esc(&s.path, &mut out);
            let _ = writeln!(
                out,
                "\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                s.count, s.total_ns, s.self_ns
            );
        }
        for h in &self.hists {
            out.push_str("{\"type\":\"hist\",\"name\":\"");
            esc(&h.name, &mut out);
            let _ = write!(
                out,
                "\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[",
                h.count, h.sum_ns, h.min_ns, h.max_ns
            );
            for (k, &(i, c)) in h.buckets.iter().enumerate() {
                let _ = write!(out, "{}[{i},{c}]", if k == 0 { "" } else { "," });
            }
            out.push_str("]}\n");
        }
        for (name, value) in self.counters.iter_nonzero() {
            out.push_str("{\"type\":\"counter\",\"name\":\"");
            esc(name, &mut out);
            let _ = writeln!(out, "\",\"value\":{value}}}");
        }
        out
    }

    /// Renders the human `--profile` table: spans sorted by total time
    /// (descending), then latency histograms with exact percentiles and
    /// log2 bucket bars, then every non-zero counter.
    pub fn render_profile(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>9} {:>12} {:>12}",
            "span", "count", "total (ms)", "self (ms)"
        );
        let mut spans: Vec<&SpanAgg> = self.spans.iter().collect();
        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));
        for s in spans {
            let _ = writeln!(
                out,
                "{:<52} {:>9} {:>12.3} {:>12.3}",
                s.path,
                s.count,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6
            );
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:<24} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p90", "p95", "p99", "max"
            );
            for h in &self.hists {
                let _ = writeln!(
                    out,
                    "{:<24} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_ns(h.percentile(50)),
                    fmt_ns(h.percentile(90)),
                    fmt_ns(h.percentile(95)),
                    fmt_ns(h.percentile(99)),
                    fmt_ns(h.max_ns)
                );
            }
            for h in &self.hists {
                if h.buckets.is_empty() {
                    continue;
                }
                let _ = writeln!(out);
                let _ = writeln!(out, "{} latency ({} samples):", h.name, h.count);
                let buckets: Vec<(String, usize)> = h
                    .buckets
                    .iter()
                    .map(|&(i, c)| (format!("≤{}", fmt_ns(bucket_upper_bound(i))), c as usize))
                    .collect();
                out.push_str(&text_histogram(&buckets, 40));
            }
        }
        let mut counters: Vec<(&str, u64)> = self.counters.iter_nonzero().collect();
        // Registry declaration order puts the `mem.*` gauges in a block
        // at the end; sorting by name instead files every row — counter
        // or gauge — under its subsystem prefix.
        counters.sort_unstable_by_key(|&(name, _)| name);
        if !counters.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "{:<52} {:>12}", "counter", "total");
            for (name, value) in counters {
                let _ = writeln!(out, "{name:<52} {:>12}", render_counter_value(name, value));
            }
        }
        out
    }
}

/// Renders a text histogram: `buckets` of `(label, count)`, bars scaled
/// to `width` columns. (Shared by the `--profile` table here and the
/// bench crate's Figure 6 rendering.)
pub fn text_histogram(buckets: &[(String, usize)], width: usize) -> String {
    let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (label, count) in buckets {
        let bar = "#".repeat(count * width / max);
        let _ = writeln!(out, "{label:>12} | {bar} {count}");
    }
    out
}

/// Renders one counter row's value. `mem.*` byte gauges humanize to
/// B/KiB/MiB (the JSON trace keeps the raw byte count); everything else
/// prints as a plain count.
fn render_counter_value(name: &str, value: u64) -> String {
    if !(name.starts_with("mem.") && name.ends_with("_bytes")) {
        return value.to_string();
    }
    const KIB: f64 = 1024.0;
    let v = value as f64;
    if v < KIB {
        format!("{value} B")
    } else if v < KIB * KIB {
        format!("{:.1} KiB", v / KIB)
    } else {
        format!("{:.1} MiB", v / (KIB * KIB))
    }
}

/// What [`validate_jsonl`] learned about a well-formed trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of span lines.
    pub spans: usize,
    /// The parsed span aggregate, in file (path-sorted) order — enough
    /// to rebuild a Chrome trace from an on-disk file.
    pub span_rows: Vec<SpanAgg>,
    /// Parsed histogram lines, in file (name-sorted) order.
    pub hists: Vec<HistSnapshot>,
    /// Parsed `(name, value)` counter lines.
    pub counters: Vec<(String, u64)>,
}

impl TraceSummary {
    /// The reported total of one counter (0 when absent: counters are
    /// omitted from the file when zero).
    pub fn counter(&self, c: Counter) -> u64 {
        let name = crate::counter_name(c);
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// A strict validator for the `localias-trace/v2` (and legacy v1)
/// JSON-lines format — the tiny schema check `scripts/check.sh` runs
/// against real trace files. Verifies the header, every line's shape,
/// span-path and histogram-name sortedness, histogram internal
/// consistency (bucket counts sum to the sample count, min/max land in
/// the first/last bucket), and that names come from the registries.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("empty trace".into());
    };
    let v2 = if header == format!("{{\"schema\":\"{SCHEMA}\"}}") {
        true
    } else if header == format!("{{\"schema\":\"{SCHEMA_V1}\"}}") {
        false
    } else {
        return Err(format!("bad header line: {header}"));
    };
    let mut summary = TraceSummary::default();
    let mut last_path: Option<String> = None;
    let mut last_hist: Option<String> = None;
    let mut seen_hist = false;
    let mut seen_counter = false;
    for (i, line) in lines {
        let lineno = i + 1;
        if let Some(rest) = line.strip_prefix("{\"type\":\"span\",\"path\":\"") {
            if seen_hist || seen_counter {
                return Err(format!("line {lineno}: span after hist/counter lines"));
            }
            let (path, rest) = take_json_string(rest)
                .ok_or_else(|| format!("line {lineno}: unterminated span path"))?;
            let rest = rest
                .strip_prefix("\",\"count\":")
                .ok_or_else(|| format!("line {lineno}: missing count"))?;
            let (count, rest) = take_u64(rest)?;
            let rest = rest
                .strip_prefix(",\"total_ns\":")
                .ok_or_else(|| format!("line {lineno}: missing total_ns"))?;
            let (total_ns, rest) = take_u64(rest)?;
            let rest = rest
                .strip_prefix(",\"self_ns\":")
                .ok_or_else(|| format!("line {lineno}: missing self_ns"))?;
            let (self_ns, rest) = take_u64(rest)?;
            if rest != "}" {
                return Err(format!("line {lineno}: trailing content {rest:?}"));
            }
            if count == 0 {
                return Err(format!("line {lineno}: zero-count span"));
            }
            if self_ns > total_ns {
                return Err(format!("line {lineno}: self_ns exceeds total_ns"));
            }
            if let Some(prev) = &last_path {
                if *prev >= path {
                    return Err(format!("line {lineno}: span paths not sorted"));
                }
            }
            last_path = Some(path.clone());
            summary.spans += 1;
            summary.span_rows.push(SpanAgg {
                path,
                count,
                total_ns,
                self_ns,
            });
        } else if let Some(rest) = line.strip_prefix("{\"type\":\"hist\",\"name\":\"") {
            if !v2 {
                return Err(format!("line {lineno}: hist line in a v1 trace"));
            }
            if seen_counter {
                return Err(format!("line {lineno}: hist after counter lines"));
            }
            seen_hist = true;
            let hist = parse_hist_line(rest).map_err(|e| format!("line {lineno}: {e}"))?;
            if hist_by_name(&hist.name).is_none() {
                return Err(format!("line {lineno}: unknown histogram `{}`", hist.name));
            }
            if let Some(prev) = &last_hist {
                if *prev >= hist.name {
                    return Err(format!("line {lineno}: histogram names not sorted"));
                }
            }
            last_hist = Some(hist.name.clone());
            summary.hists.push(hist);
        } else if let Some(rest) = line.strip_prefix("{\"type\":\"counter\",\"name\":\"") {
            seen_counter = true;
            let (name, rest) = take_json_string(rest)
                .ok_or_else(|| format!("line {lineno}: unterminated counter name"))?;
            let rest = rest
                .strip_prefix("\",\"value\":")
                .ok_or_else(|| format!("line {lineno}: missing value"))?;
            let (value, rest) = take_u64(rest)?;
            if rest != "}" {
                return Err(format!("line {lineno}: trailing content {rest:?}"));
            }
            if counter_by_name(&name).is_none() {
                return Err(format!("line {lineno}: unknown counter `{name}`"));
            }
            summary.counters.push((name, value));
        } else if line.is_empty() {
            continue;
        } else {
            return Err(format!("line {lineno}: unrecognized line {line:?}"));
        }
    }
    Ok(summary)
}

/// Parses (and consistency-checks) the remainder of a hist line after
/// its `{"type":"hist","name":"` prefix.
fn parse_hist_line(rest: &str) -> Result<HistSnapshot, String> {
    let (name, rest) =
        take_json_string(rest).ok_or_else(|| "unterminated hist name".to_string())?;
    let rest = rest
        .strip_prefix("\",\"count\":")
        .ok_or_else(|| "missing count".to_string())?;
    let (count, rest) = take_u64(rest)?;
    let rest = rest
        .strip_prefix(",\"sum_ns\":")
        .ok_or_else(|| "missing sum_ns".to_string())?;
    let (sum_ns, rest) = take_u64(rest)?;
    let rest = rest
        .strip_prefix(",\"min_ns\":")
        .ok_or_else(|| "missing min_ns".to_string())?;
    let (min_ns, rest) = take_u64(rest)?;
    let rest = rest
        .strip_prefix(",\"max_ns\":")
        .ok_or_else(|| "missing max_ns".to_string())?;
    let (max_ns, rest) = take_u64(rest)?;
    let mut rest = rest
        .strip_prefix(",\"buckets\":[")
        .ok_or_else(|| "missing buckets".to_string())?;
    let mut buckets: Vec<(usize, u64)> = Vec::new();
    while !rest.starts_with(']') {
        if !buckets.is_empty() {
            rest = rest
                .strip_prefix(',')
                .ok_or_else(|| "missing comma between buckets".to_string())?;
        }
        rest = rest
            .strip_prefix('[')
            .ok_or_else(|| "malformed bucket".to_string())?;
        let (index, r) = take_u64(rest)?;
        let r = r
            .strip_prefix(',')
            .ok_or_else(|| "malformed bucket".to_string())?;
        let (bcount, r) = take_u64(r)?;
        rest = r
            .strip_prefix(']')
            .ok_or_else(|| "malformed bucket".to_string())?;
        if index as usize >= HIST_BUCKETS {
            return Err(format!("bucket index {index} out of range"));
        }
        if let Some(&(prev, _)) = buckets.last() {
            if prev >= index as usize {
                return Err("bucket indices not ascending".to_string());
            }
        }
        if bcount == 0 {
            return Err("zero-count bucket".to_string());
        }
        buckets.push((index as usize, bcount));
    }
    if rest != "]}" {
        return Err(format!("trailing content {rest:?}"));
    }
    if count == 0 {
        return Err("zero-count histogram".to_string());
    }
    if min_ns > max_ns {
        return Err("min_ns exceeds max_ns".to_string());
    }
    if sum_ns < max_ns {
        return Err("sum_ns below max_ns".to_string());
    }
    let bucket_total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if bucket_total != count {
        return Err(format!("buckets sum to {bucket_total}, count is {count}"));
    }
    let first = buckets.first().map(|&(i, _)| i).unwrap_or(0);
    let last = buckets.last().map(|&(i, _)| i).unwrap_or(0);
    if crate::hist::bucket_index(min_ns) != first || crate::hist::bucket_index(max_ns) != last {
        return Err("min/max fall outside the first/last bucket".to_string());
    }
    Ok(HistSnapshot {
        name,
        count,
        sum_ns,
        min_ns,
        max_ns,
        buckets,
    })
}

/// Reads a JSON string body up to (not including) its closing quote,
/// un-escaping `\"`/`\\`; returns the decoded string and the remainder
/// *starting at the closing quote*.
fn take_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let mut v = 0u32;
                    for _ in 0..4 {
                        v = v * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Reads a decimal integer prefix; returns it and the remainder.
fn take_u64(s: &str) -> Result<(u64, &str), String> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return Err(format!("expected integer at {s:?}"));
    }
    let v = s[..end]
        .parse()
        .map_err(|_| format!("integer out of range at {s:?}"))?;
    Ok((v, &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, drain, enable_all, span, test_lock, Counter, Hist};

    fn sample_trace() -> Trace {
        let _l = test_lock();
        enable_all();
        let _ = drain();
        {
            let _a = span!("unit.alpha");
            let _b = span!("unit.beta");
            count(Counter::CheckSatQueries, 11);
            count(Counter::AliasUnifications, 4);
            crate::record(Hist::CheckFunction, 700);
            crate::record(Hist::CheckFunction, 90_000);
            crate::record(Hist::AnalyzeModule, 1_500);
        }
        let t = drain();
        crate::disable_metrics();
        crate::disable_spans();
        crate::disable_hists();
        t
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let summary = validate_jsonl(&text).expect("well-formed trace validates");
        assert_eq!(summary.spans, t.spans.len());
        assert_eq!(summary.span_rows.len(), t.spans.len());
        assert_eq!(summary.counter(Counter::CheckSatQueries), 11);
        assert_eq!(summary.counter(Counter::AliasUnifications), 4);
        assert_eq!(summary.counter(Counter::EffectVars), 0, "absent means 0");
        // Histograms survive the round trip exactly.
        assert_eq!(summary.hists, t.hists);
        assert_eq!(summary.hists.len(), 2);
        assert_eq!(summary.hists[0].name, "analyze.module");
        assert_eq!(summary.hists[1].name, "check.function");
        assert_eq!(summary.hists[1].count, 2);
    }

    #[test]
    fn v1_traces_still_validate_but_reject_hist_lines() {
        let v1 = format!(
            "{{\"schema\":\"{SCHEMA_V1}\"}}\n{{\"type\":\"counter\",\"name\":\"cqual.errors\",\"value\":3}}\n"
        );
        let summary = validate_jsonl(&v1).expect("v1 still validates");
        assert_eq!(summary.counter(Counter::CqualErrors), 3);
        let v1_with_hist = format!(
            "{{\"schema\":\"{SCHEMA_V1}\"}}\n{{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":1,\"sum_ns\":5,\"min_ns\":5,\"max_ns\":5,\"buckets\":[[3,1]]}}\n"
        );
        assert!(validate_jsonl(&v1_with_hist).is_err(), "hist is v2-only");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let t = sample_trace();
        let good = t.to_jsonl();
        assert!(validate_jsonl("").is_err(), "empty");
        assert!(validate_jsonl("{\"schema\":\"other/v9\"}\n").is_err());
        let truncated = &good[..good.len() - 3];
        assert!(validate_jsonl(truncated).is_err(), "truncated final line");
        let garbled = good.replace("\"count\":", "\"cont\":");
        assert!(validate_jsonl(&garbled).is_err(), "bad key");
        let unknown = format!("{{\"schema\":\"{SCHEMA}\"}}\n{{\"type\":\"counter\",\"name\":\"bogus.counter\",\"value\":1}}\n");
        assert!(validate_jsonl(&unknown).is_err(), "unknown counter");
    }

    #[test]
    fn validator_rejects_inconsistent_histograms() {
        let line = |body: &str| format!("{{\"schema\":\"{SCHEMA}\"}}\n{body}\n");
        let ok = line(
            "{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":2,\"sum_ns\":12,\"min_ns\":4,\"max_ns\":8,\"buckets\":[[3,1],[4,1]]}",
        );
        assert!(validate_jsonl(&ok).is_ok(), "baseline hist validates");
        for (why, bad) in [
            (
                "unknown name",
                "{\"type\":\"hist\",\"name\":\"bogus.hist\",\"count\":2,\"sum_ns\":12,\"min_ns\":4,\"max_ns\":8,\"buckets\":[[3,1],[4,1]]}",
            ),
            (
                "bucket sum mismatch",
                "{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":3,\"sum_ns\":12,\"min_ns\":4,\"max_ns\":8,\"buckets\":[[3,1],[4,1]]}",
            ),
            (
                "min above max",
                "{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":2,\"sum_ns\":12,\"min_ns\":9,\"max_ns\":8,\"buckets\":[[3,1],[4,1]]}",
            ),
            (
                "min outside first bucket",
                "{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":2,\"sum_ns\":12,\"min_ns\":1,\"max_ns\":8,\"buckets\":[[3,1],[4,1]]}",
            ),
            (
                "unsorted buckets",
                "{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":2,\"sum_ns\":12,\"min_ns\":4,\"max_ns\":8,\"buckets\":[[4,1],[3,1]]}",
            ),
            (
                "bucket index out of range",
                "{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":1,\"sum_ns\":8,\"min_ns\":8,\"max_ns\":8,\"buckets\":[[64,1]]}",
            ),
        ] {
            assert!(validate_jsonl(&line(bad)).is_err(), "{why} should fail");
        }
        // Hist lines after counter lines violate the section order.
        let misordered = format!(
            "{{\"schema\":\"{SCHEMA}\"}}\n{{\"type\":\"counter\",\"name\":\"cqual.errors\",\"value\":1}}\n{{\"type\":\"hist\",\"name\":\"analyze.module\",\"count\":1,\"sum_ns\":5,\"min_ns\":5,\"max_ns\":5,\"buckets\":[[3,1]]}}\n"
        );
        assert!(validate_jsonl(&misordered).is_err(), "hist after counters");
    }

    #[test]
    fn normalized_strips_timestamps_only() {
        let t = sample_trace();
        let norm = t.normalized();
        assert!(norm.iter().any(|(k, v)| k == "span:unit.alpha" && *v == 1));
        assert!(norm
            .iter()
            .any(|(k, v)| k == "counter:effects.checksat_queries" && *v == 11));
        assert!(norm
            .iter()
            .any(|(k, v)| k == "hist:check.function" && *v == 2));
        // Only shape survives: every entry is a span path, hist name, or
        // counter name.
        assert!(norm.iter().all(|(k, _)| k.starts_with("span:")
            || k.starts_with("hist:")
            || k.starts_with("counter:")));
    }

    #[test]
    fn profile_table_renders_spans_hists_and_counters() {
        let t = sample_trace();
        let table = t.render_profile();
        assert!(table.contains("unit.alpha"));
        assert!(table.contains("unit.alpha/unit.beta"));
        assert!(table.contains("effects.checksat_queries"));
        assert!(table.contains("total (ms)"));
        // The histogram section: header, a row per hist with humanized
        // percentiles, and bucket bars.
        assert!(table.contains("histogram"), "{table}");
        assert!(table.contains("p99"), "{table}");
        assert!(table.contains("check.function"), "{table}");
        assert!(
            table.contains("check.function latency (2 samples):"),
            "{table}"
        );
        assert!(
            table.contains("≤1.0 µs"),
            "bucket label for 700 ns: {table}"
        );
        assert!(
            table.contains("≤131.1 µs"),
            "bucket label for 90 µs: {table}"
        );
    }

    #[test]
    fn profile_table_sorts_rows_and_humanizes_byte_gauges() {
        let _l = test_lock();
        enable_all();
        let _ = drain();
        count(Counter::CqualLockSites, 3);
        count(Counter::CacheShardHits, 5);
        crate::gauge_max(Counter::MemPeakRssBytes, 27 * 1024 * 1024 + 512 * 1024);
        crate::gauge_max(Counter::MemArenaBytes, 1536);
        let t = drain();
        crate::disable_metrics();
        crate::disable_spans();
        crate::disable_hists();
        let table = t.render_profile();
        // Rows sort by name, not registry declaration order (which puts
        // cqual.* before cache.* and the mem.* gauges in a trailing
        // block).
        let pos = |needle: &str| {
            table
                .find(needle)
                .unwrap_or_else(|| panic!("{needle} missing: {table}"))
        };
        assert!(pos("cache.shard_hits") < pos("cqual.lock_sites"));
        assert!(pos("cqual.lock_sites") < pos("mem.arena_bytes"));
        // Byte gauges humanize; plain counters stay plain counts.
        assert!(table.contains("1.5 KiB"), "{table}");
        assert!(table.contains("27.5 MiB"), "{table}");
        assert!(!table.contains("28835840"), "{table}");
    }

    #[test]
    fn text_histogram_renders_scaled_bars() {
        let buckets = vec![
            ("0".to_string(), 2),
            ("1-2".to_string(), 10),
            ("3+".to_string(), 5),
        ];
        let text = text_histogram(&buckets, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains(&"#".repeat(20)), "max bucket fills width");
        assert!(lines[2].contains(&"#".repeat(10)), "half bucket half width");
        assert!(lines[0].ends_with("2"));
    }
}
