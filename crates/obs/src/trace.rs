//! Trace sinks: the versioned JSON-lines format (`localias-trace/v1`),
//! its validator, and the human `--profile` table.
//!
//! A trace file is one JSON object per line:
//!
//! ```text
//! {"schema":"localias-trace/v1"}
//! {"type":"span","path":"experiment/sweep/module.check","count":589,"total_ns":48210934,"self_ns":48210934}
//! {"type":"counter","name":"alias.unifications","value":151320}
//! ```
//!
//! Span lines come sorted by path and counter lines in registry order,
//! so two traces of the same work differ only in the `*_ns` fields —
//! strip those (see [`Trace::normalized`]) and the trace is
//! byte-identical for any thread count.

use crate::metrics::{counter_by_name, Counter, Metrics};
use crate::span::SpanAgg;
use std::fmt::Write as _;

/// The trace file schema identifier.
pub const SCHEMA: &str = "localias-trace/v1";

/// Everything one [`crate::drain`] observed: the merged span aggregate
/// and a counter snapshot.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Aggregated spans, sorted by path.
    pub spans: Vec<SpanAgg>,
    /// Counter totals.
    pub counters: Metrics,
}

/// Escapes a string for a JSON string literal.
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Trace {
    /// The total of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// The thread-count-invariant shape of the trace: `(path, count)`
    /// per span plus every non-zero counter, timestamps stripped.
    pub fn normalized(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .spans
            .iter()
            .map(|s| (format!("span:{}", s.path), s.count))
            .collect();
        out.extend(
            self.counters
                .iter_nonzero()
                .map(|(n, v)| (format!("counter:{n}"), v)),
        );
        out
    }

    /// Renders the versioned JSON-lines trace.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"schema\":\"{SCHEMA}\"}}");
        for s in &self.spans {
            out.push_str("{\"type\":\"span\",\"path\":\"");
            esc(&s.path, &mut out);
            let _ = writeln!(
                out,
                "\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                s.count, s.total_ns, s.self_ns
            );
        }
        for (name, value) in self.counters.iter_nonzero() {
            out.push_str("{\"type\":\"counter\",\"name\":\"");
            esc(name, &mut out);
            let _ = writeln!(out, "\",\"value\":{value}}}");
        }
        out
    }

    /// Renders the human `--profile` table: spans sorted by total time
    /// (descending), then every non-zero counter.
    pub fn render_profile(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>9} {:>12} {:>12}",
            "span", "count", "total (ms)", "self (ms)"
        );
        let mut spans: Vec<&SpanAgg> = self.spans.iter().collect();
        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));
        for s in spans {
            let _ = writeln!(
                out,
                "{:<52} {:>9} {:>12.3} {:>12.3}",
                s.path,
                s.count,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6
            );
        }
        let mut counters: Vec<(&str, u64)> = self.counters.iter_nonzero().collect();
        // Registry declaration order puts the `mem.*` gauges in a block
        // at the end; sorting by name instead files every row — counter
        // or gauge — under its subsystem prefix.
        counters.sort_unstable_by_key(|&(name, _)| name);
        if !counters.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "{:<52} {:>12}", "counter", "total");
            for (name, value) in counters {
                let _ = writeln!(out, "{name:<52} {:>12}", render_counter_value(name, value));
            }
        }
        out
    }
}

/// Renders one counter row's value. `mem.*` byte gauges humanize to
/// B/KiB/MiB (the JSON trace keeps the raw byte count); everything else
/// prints as a plain count.
fn render_counter_value(name: &str, value: u64) -> String {
    if !(name.starts_with("mem.") && name.ends_with("_bytes")) {
        return value.to_string();
    }
    const KIB: f64 = 1024.0;
    let v = value as f64;
    if v < KIB {
        format!("{value} B")
    } else if v < KIB * KIB {
        format!("{:.1} KiB", v / KIB)
    } else {
        format!("{:.1} MiB", v / (KIB * KIB))
    }
}

/// What [`validate_jsonl`] learned about a well-formed trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Number of span lines.
    pub spans: usize,
    /// Parsed `(name, value)` counter lines.
    pub counters: Vec<(String, u64)>,
}

impl TraceSummary {
    /// The reported total of one counter (0 when absent: counters are
    /// omitted from the file when zero).
    pub fn counter(&self, c: Counter) -> u64 {
        let name = crate::counter_name(c);
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// A strict validator for the `localias-trace/v1` JSON-lines format —
/// the tiny schema check `scripts/check.sh` runs against real trace
/// files. Verifies the header, every line's shape, span-path sortedness,
/// and that counter names come from the registry.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err("empty trace".into());
    };
    if header != format!("{{\"schema\":\"{SCHEMA}\"}}") {
        return Err(format!("bad header line: {header}"));
    }
    let mut summary = TraceSummary::default();
    let mut last_path: Option<String> = None;
    let mut seen_counter = false;
    for (i, line) in lines {
        let lineno = i + 1;
        if let Some(rest) = line.strip_prefix("{\"type\":\"span\",\"path\":\"") {
            if seen_counter {
                return Err(format!("line {lineno}: span after counter lines"));
            }
            let (path, rest) = take_json_string(rest)
                .ok_or_else(|| format!("line {lineno}: unterminated span path"))?;
            let rest = rest
                .strip_prefix("\",\"count\":")
                .ok_or_else(|| format!("line {lineno}: missing count"))?;
            let (count, rest) = take_u64(rest)?;
            let rest = rest
                .strip_prefix(",\"total_ns\":")
                .ok_or_else(|| format!("line {lineno}: missing total_ns"))?;
            let (total_ns, rest) = take_u64(rest)?;
            let rest = rest
                .strip_prefix(",\"self_ns\":")
                .ok_or_else(|| format!("line {lineno}: missing self_ns"))?;
            let (self_ns, rest) = take_u64(rest)?;
            if rest != "}" {
                return Err(format!("line {lineno}: trailing content {rest:?}"));
            }
            if count == 0 {
                return Err(format!("line {lineno}: zero-count span"));
            }
            if self_ns > total_ns {
                return Err(format!("line {lineno}: self_ns exceeds total_ns"));
            }
            if let Some(prev) = &last_path {
                if *prev >= path {
                    return Err(format!("line {lineno}: span paths not sorted"));
                }
            }
            last_path = Some(path);
            summary.spans += 1;
        } else if let Some(rest) = line.strip_prefix("{\"type\":\"counter\",\"name\":\"") {
            seen_counter = true;
            let (name, rest) = take_json_string(rest)
                .ok_or_else(|| format!("line {lineno}: unterminated counter name"))?;
            let rest = rest
                .strip_prefix("\",\"value\":")
                .ok_or_else(|| format!("line {lineno}: missing value"))?;
            let (value, rest) = take_u64(rest)?;
            if rest != "}" {
                return Err(format!("line {lineno}: trailing content {rest:?}"));
            }
            if counter_by_name(&name).is_none() {
                return Err(format!("line {lineno}: unknown counter `{name}`"));
            }
            summary.counters.push((name, value));
        } else if line.is_empty() {
            continue;
        } else {
            return Err(format!("line {lineno}: unrecognized line {line:?}"));
        }
    }
    Ok(summary)
}

/// Reads a JSON string body up to (not including) its closing quote,
/// un-escaping `\"`/`\\`; returns the decoded string and the remainder
/// *starting at the closing quote*.
fn take_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let mut v = 0u32;
                    for _ in 0..4 {
                        v = v * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Reads a decimal integer prefix; returns it and the remainder.
fn take_u64(s: &str) -> Result<(u64, &str), String> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return Err(format!("expected integer at {s:?}"));
    }
    let v = s[..end]
        .parse()
        .map_err(|_| format!("integer out of range at {s:?}"))?;
    Ok((v, &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, drain, enable_all, span, test_lock, Counter};

    fn sample_trace() -> Trace {
        let _l = test_lock();
        enable_all();
        let _ = drain();
        {
            let _a = span!("unit.alpha");
            let _b = span!("unit.beta");
            count(Counter::CheckSatQueries, 11);
            count(Counter::AliasUnifications, 4);
        }
        let t = drain();
        crate::disable_metrics();
        crate::disable_spans();
        t
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let summary = validate_jsonl(&text).expect("well-formed trace validates");
        assert_eq!(summary.spans, t.spans.len());
        assert_eq!(summary.counter(Counter::CheckSatQueries), 11);
        assert_eq!(summary.counter(Counter::AliasUnifications), 4);
        assert_eq!(summary.counter(Counter::EffectVars), 0, "absent means 0");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let t = sample_trace();
        let good = t.to_jsonl();
        assert!(validate_jsonl("").is_err(), "empty");
        assert!(validate_jsonl("{\"schema\":\"other/v9\"}\n").is_err());
        let truncated = &good[..good.len() - 3];
        assert!(validate_jsonl(truncated).is_err(), "truncated final line");
        let garbled = good.replace("\"count\":", "\"cont\":");
        assert!(validate_jsonl(&garbled).is_err(), "bad key");
        let unknown = format!("{{\"schema\":\"{SCHEMA}\"}}\n{{\"type\":\"counter\",\"name\":\"bogus.counter\",\"value\":1}}\n");
        assert!(validate_jsonl(&unknown).is_err(), "unknown counter");
    }

    #[test]
    fn normalized_strips_timestamps_only() {
        let t = sample_trace();
        let norm = t.normalized();
        assert!(norm.iter().any(|(k, v)| k == "span:unit.alpha" && *v == 1));
        assert!(norm
            .iter()
            .any(|(k, v)| k == "counter:effects.checksat_queries" && *v == 11));
        // Only shape survives: every entry is a span path or counter name.
        assert!(norm
            .iter()
            .all(|(k, _)| k.starts_with("span:") || k.starts_with("counter:")));
    }

    #[test]
    fn profile_table_renders_spans_and_counters() {
        let t = sample_trace();
        let table = t.render_profile();
        assert!(table.contains("unit.alpha"));
        assert!(table.contains("unit.alpha/unit.beta"));
        assert!(table.contains("effects.checksat_queries"));
        assert!(table.contains("total (ms)"));
    }

    #[test]
    fn profile_table_sorts_rows_and_humanizes_byte_gauges() {
        let _l = test_lock();
        enable_all();
        let _ = drain();
        count(Counter::CqualLockSites, 3);
        count(Counter::CacheShardHits, 5);
        crate::gauge_max(Counter::MemPeakRssBytes, 27 * 1024 * 1024 + 512 * 1024);
        crate::gauge_max(Counter::MemArenaBytes, 1536);
        let t = drain();
        crate::disable_metrics();
        crate::disable_spans();
        let table = t.render_profile();
        // Rows sort by name, not registry declaration order (which puts
        // cqual.* before cache.* and the mem.* gauges in a trailing
        // block).
        let pos = |needle: &str| {
            table
                .find(needle)
                .unwrap_or_else(|| panic!("{needle} missing: {table}"))
        };
        assert!(pos("cache.shard_hits") < pos("cqual.lock_sites"));
        assert!(pos("cqual.lock_sites") < pos("mem.arena_bytes"));
        // Byte gauges humanize; plain counters stay plain counts.
        assert!(table.contains("1.5 KiB"), "{table}");
        assert!(table.contains("27.5 MiB"), "{table}");
        assert!(!table.contains("28835840"), "{table}");
    }
}
