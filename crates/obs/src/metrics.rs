//! Named monotonic counters.
//!
//! A fixed registry of process-global `AtomicU64`s, incremented with
//! relaxed ordering. Addition commutes, so whatever thread layout the
//! pipeline ran under, the totals a [`Metrics`] snapshot reports are
//! byte-identical — the property the determinism tests pin.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Global gate for counter collection (see [`crate::enable_metrics`]).
pub(crate) static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns `true` if counters are being collected.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

macro_rules! counters {
    ($( $(#[$doc:meta])* $variant:ident => $name:literal, )+) => {
        /// Every named counter the pipeline can bump.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Counter {
            $( $(#[$doc])* $variant, )+
        }

        /// Number of counters in the registry.
        pub const COUNTER_COUNT: usize = [$( Counter::$variant ),+].len();

        /// All counters, in declaration order.
        pub const ALL_COUNTERS: [Counter; COUNTER_COUNT] = [$( Counter::$variant ),+];

        /// The stable dotted name a counter serializes under.
        pub fn counter_name(c: Counter) -> &'static str {
            match c {
                $( Counter::$variant => $name, )+
            }
        }

        /// Resolves a serialized counter name back to its [`Counter`].
        pub fn counter_by_name(name: &str) -> Option<Counter> {
            match name {
                $( $name => Some(Counter::$variant), )+
                _ => None,
            }
        }

        // Derived `Default` stops at 32-element arrays, so the registry
        // generates this impl itself: adding a counter stays a one-line
        // change to the list below.
        impl Default for Metrics {
            fn default() -> Self {
                Metrics {
                    vals: [0; COUNTER_COUNT],
                }
            }
        }
    };
}

counters! {
    /// Abstract locations allocated (`LocTable::fresh`).
    AliasFreshLocs => "alias.fresh_locs",
    /// Location-class unifications performed (`ρ1 = ρ2` merges).
    AliasUnifications => "alias.unifications",
    /// Union-find `find` operations (live table and frozen snapshot).
    AliasFindOps => "alias.find_ops",
    /// Freezes performed by the Steensgaard backend (identity capture).
    BackendSteensgaardFreezes => "alias.backend.steensgaard_freezes",
    /// Freezes performed by the Andersen backend (points-to refinement).
    BackendAndersenFreezes => "alias.backend.andersen_freezes",
    /// Steensgaard classes the Andersen backend split into finer classes.
    BackendSplitClasses => "alias.backend.split_classes",
    /// Effect variables allocated.
    EffectVars => "effects.vars",
    /// Constraint edges added (inclusions + equations).
    ConstraintEdges => "effects.constraint_edges",
    /// Worklist deliveries during least-solution propagation.
    DeliverOps => "effects.deliver_ops",
    /// Conditional-constraint fixpoint rounds.
    SolveRounds => "effects.solve_rounds",
    /// Conditional constraints fired.
    ConditionalsFired => "effects.conditionals_fired",
    /// Single-location `CHECK-SAT` reachability queries.
    CheckSatQueries => "effects.checksat_queries",
    /// Nodes visited across all `CHECK-SAT` queries.
    CheckSatNodes => "effects.checksat_nodes",
    /// Edges traversed across all `CHECK-SAT` queries.
    CheckSatEdges => "effects.checksat_edges",
    /// Modules run through the full analysis pipeline.
    ModulesAnalyzed => "core.modules_analyzed",
    /// Functions checked by the flow-sensitive lock checker.
    CqualFunctionsChecked => "cqual.functions_checked",
    /// Call-graph waves executed.
    CqualWaves => "cqual.waves",
    /// Lock acquire/release sites verified.
    CqualLockSites => "cqual.lock_sites",
    /// Lock-state errors reported.
    CqualErrors => "cqual.errors",
    /// Result-cache shard hits.
    CacheShardHits => "cache.shard_hits",
    /// Result-cache shard misses.
    CacheShardMisses => "cache.shard_misses",
    /// Cache shard-lock acquisition retries.
    CacheLockRetries => "cache.lock_retries",
    /// Cache persists skipped because a shard stayed locked.
    CacheLockSkips => "cache.lock_skips",
    /// Cache shards quarantined as corrupt or version-stale.
    CacheQuarantined => "cache.quarantined",
    /// Incremental recheck: function×mode slots served from the function
    /// cache (clean function, unchanged callee summaries).
    IncrFunHits => "incr.fun_hits",
    /// Incremental recheck: function×mode slots actually re-checked
    /// (edited functions plus their summary-change cone).
    IncrFunRechecks => "incr.fun_rechecks",
    /// Incremental recheck: re-checked functions whose summary differed
    /// from the cached one (each dirties its callers transitively).
    IncrSummaryChanges => "incr.summary_changes",
    /// Incremental recheck: sessions that fell back to a full recheck
    /// (first run, or the module prelude changed shape).
    IncrFullFallbacks => "incr.full_fallbacks",
    /// Incremental recheck: whole-module no-op hits (raw source
    /// byte-identical to the previous run).
    IncrModuleHits => "incr.module_hits",
    /// Differential fuzzing: modules generated and checked.
    FuzzModules => "fuzz.modules",
    /// Differential fuzzing: entry functions executed under the oracle.
    FuzzEntries => "fuzz.entries",
    /// Differential fuzzing: interpreter runs (entry × argument tuple).
    FuzzRuns => "fuzz.runs",
    /// Differential fuzzing: dynamic lock faults the oracle observed.
    FuzzDynFaults => "fuzz.dyn_faults",
    /// Differential fuzzing: soundness divergences (dynamic fault with no
    /// static error in the entry's reachable region, or a Theorem-1
    /// restrict violation in a check-clean module).
    FuzzUnsound => "fuzz.unsound",
    /// Differential fuzzing: statically flagged functions that never
    /// faulted dynamically (false-positive tally).
    FuzzFalsePositives => "fuzz.false_positives",
    /// Counterexample shrinker: candidate edits attempted.
    FuzzShrinkCandidates => "fuzz.shrink_candidates",
    /// Counterexample shrinker: edits accepted (divergence preserved).
    FuzzShrinkSteps => "fuzz.shrink_steps",
    /// Peak resident-set size of the process, in bytes (high-water mark;
    /// recorded with [`gauge_max`], so concurrent flushes keep the max).
    MemPeakRssBytes => "mem.peak_rss_bytes",
    /// Bytes of identifier text held in AST symbol arenas (cumulative).
    MemArenaBytes => "mem.arena_bytes",
    /// Bytes the symbol arenas avoided allocating via interning dedup.
    MemArenaSavedBytes => "mem.arena_saved_bytes",
}

/// The registry itself.
static COUNTERS: [AtomicU64; COUNTER_COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; COUNTER_COUNT]
};

/// Adds `n` to counter `c`. One relaxed load + branch when collection is
/// disabled; one relaxed add when enabled.
#[inline]
pub fn count(c: Counter, n: u64) {
    if METRICS_ENABLED.load(Ordering::Relaxed) {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Raises counter `c` to at least `v` (a high-water-mark gauge). Unlike
/// [`count`], repeated flushes of the same measurement don't accumulate:
/// `fetch_max` keeps the largest value seen since the last drain.
#[inline]
pub fn gauge_max(c: Counter, v: u64) {
    if METRICS_ENABLED.load(Ordering::Relaxed) {
        COUNTERS[c as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// The process's peak resident-set size in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs
/// or if the field is missing — callers treat 0 as "unavailable".
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Takes every counter's value, resetting it to zero.
pub(crate) fn take_counters() -> Metrics {
    let mut vals = [0u64; COUNTER_COUNT];
    for (i, slot) in COUNTERS.iter().enumerate() {
        vals[i] = slot.swap(0, Ordering::Relaxed);
    }
    Metrics { vals }
}

/// A point-in-time snapshot of every counter: the `Metrics` handle the
/// pipeline's observers hold. Obtained from [`crate::drain`] (which
/// resets the registry) as part of a [`crate::Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    pub(crate) vals: [u64; COUNTER_COUNT],
}

impl Metrics {
    /// The value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Iterates `(name, value)` pairs in declaration order, skipping
    /// zero counters.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        ALL_COUNTERS
            .iter()
            .map(|&c| (counter_name(c), self.get(c)))
            .filter(|&(_, v)| v != 0)
    }

    /// `true` if every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for &c in &ALL_COUNTERS {
            assert_eq!(counter_by_name(counter_name(c)), Some(c));
        }
        let mut names: Vec<_> = ALL_COUNTERS.iter().map(|&c| counter_name(c)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT, "duplicate counter name");
        assert_eq!(counter_by_name("no.such.counter"), None);
    }

    #[test]
    fn gauge_max_keeps_high_water_mark() {
        let _l = crate::test_lock();
        crate::enable_metrics();
        let _ = take_counters();
        gauge_max(Counter::MemPeakRssBytes, 100);
        gauge_max(Counter::MemPeakRssBytes, 40);
        gauge_max(Counter::MemPeakRssBytes, 70);
        crate::disable_metrics();
        assert_eq!(take_counters().get(Counter::MemPeakRssBytes), 100);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // Any running test binary has touched at least a megabyte.
            assert!(rss > 1 << 20, "VmHWM should be over 1 MiB, got {rss}");
        }
    }

    #[test]
    fn disabled_count_is_dropped() {
        let _l = crate::test_lock();
        crate::disable_metrics();
        let _ = take_counters();
        count(Counter::CacheShardHits, 5);
        assert_eq!(take_counters().get(Counter::CacheShardHits), 0);
        crate::enable_metrics();
        count(Counter::CacheShardHits, 5);
        count(Counter::CacheShardHits, 2);
        crate::disable_metrics();
        assert_eq!(take_counters().get(Counter::CacheShardHits), 7);
    }
}
