//! Deterministic, mergeable log2-bucketed latency histograms.
//!
//! Counters say how *often*; spans say how *long in aggregate*.
//! Histograms say how long *per event*, which is the only way tail
//! latency (p95/p99 — what a serving tier promises) becomes visible:
//! a mean hides one 40 ms module behind five hundred 60 µs ones.
//!
//! The collection discipline mirrors spans: samples accumulate in a
//! thread-local table and flush into a process-global merge whenever a
//! worker detaches its [`crate::SpanContext`] (the attach guard's drop)
//! or the trace drains. Bucket addition commutes, so the merged
//! histogram is byte-identical for any thread layout that records the
//! same multiset of values — the same determinism contract the span
//! tree and counters already keep for any `--jobs`/`--intra-jobs`.
//!
//! **Bucket scheme.** [`HIST_BUCKETS`] (64) logarithmic buckets: a
//! value lands in the bucket indexed by its bit length — bucket 0 holds
//! exactly 0, bucket *i* (1 ≤ i ≤ 62) holds `[2^(i−1), 2^i − 1]`, and
//! bucket 63 holds everything ≥ 2^62. Exact count/sum/min/max ride
//! alongside the buckets, and a percentile resolves to the inclusive
//! upper bound of the bucket holding the rank-⌈pct·count/100⌉ sample,
//! clamped to the observed max. That makes p50/p90/p95/p99 a pure
//! integer function of the bucket counts: deterministic across runs of
//! the same multiset and exactly assertable in tests, at a bounded
//! relative error of <2× (one bucket) against the true sample.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Global gate for histogram collection (see [`crate::enable_hists`]).
pub(crate) static HISTS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns `true` if histograms are being collected.
#[inline]
pub fn hists_enabled() -> bool {
    HISTS_ENABLED.load(Ordering::Relaxed)
}

/// Number of log2 buckets per histogram.
pub const HIST_BUCKETS: usize = 64;

macro_rules! hists {
    ($( $(#[$doc:meta])* $variant:ident => $name:literal, )+) => {
        /// Every named latency histogram the pipeline can record into.
        /// Values are nanoseconds by convention ([`record_duration`]).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Hist {
            $( $(#[$doc])* $variant, )+
        }

        /// Number of histograms in the registry.
        pub const HIST_COUNT: usize = [$( Hist::$variant ),+].len();

        /// All histograms, in declaration order.
        pub const ALL_HISTS: [Hist; HIST_COUNT] = [$( Hist::$variant ),+];

        /// The stable dotted name a histogram serializes under.
        pub fn hist_name(h: Hist) -> &'static str {
            match h {
                $( Hist::$variant => $name, )+
            }
        }

        /// Resolves a serialized histogram name back to its [`Hist`].
        pub fn hist_by_name(name: &str) -> Option<Hist> {
            match name {
                $( $name => Some(Hist::$variant), )+
                _ => None,
            }
        }
    };
}

hists! {
    /// Full analysis pipeline per module (alias walk, effect solving,
    /// confine inference; parsing excluded).
    AnalyzeModule => "analyze.module",
    /// Flow-sensitive lock check of one function under one mode.
    CheckFunction => "check.function",
    /// One call-graph wave of the check schedule (all modes).
    CheckWave => "check.wave",
    /// Result-cache shard read + parse on load.
    CacheShardLoad => "cache.shard_load",
    /// Result-cache shard serialize + locked rename on persist.
    CacheShardPersist => "cache.shard_persist",
    /// Differential fuzzing: one interpreter-oracle entry execution.
    FuzzExecute => "fuzz.execute",
    /// Differential fuzzing: one module checked across modes × backends.
    FuzzCheck => "fuzz.check",
}

/// One histogram's accumulator: exact moments plus dense buckets.
#[derive(Clone, Copy)]
struct HistAcc {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

const EMPTY_ACC: HistAcc = HistAcc {
    count: 0,
    sum: 0,
    min: 0,
    max: 0,
    buckets: [0; HIST_BUCKETS],
};

thread_local! {
    static TLS_HISTS: RefCell<[HistAcc; HIST_COUNT]> =
        const { RefCell::new([EMPTY_ACC; HIST_COUNT]) };
}

/// The process-wide merge every thread flushes into.
static GLOBAL: Mutex<Option<Box<[HistAcc; HIST_COUNT]>>> = Mutex::new(None);

/// The bucket a value lands in: its bit length, capped at the top
/// bucket (`0 → 0`, `[2^(i−1), 2^i − 1] → i`, `≥ 2^62 → 63`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` — what a percentile resolves
/// to before clamping to the observed max.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Records one sample (nanoseconds by convention) into histogram `h`.
/// One relaxed load + early return when collection is disabled.
#[inline]
pub fn record(h: Hist, v: u64) {
    if !hists_enabled() {
        return;
    }
    TLS_HISTS.with(|t| {
        let mut t = t.borrow_mut();
        let acc = &mut t[h as usize];
        if acc.count == 0 || v < acc.min {
            acc.min = v;
        }
        if v > acc.max {
            acc.max = v;
        }
        acc.count += 1;
        acc.sum = acc.sum.saturating_add(v);
        acc.buckets[bucket_index(v)] += 1;
    });
}

/// Records a [`Duration`] as nanoseconds (saturating at `u64::MAX`).
#[inline]
pub fn record_duration(h: Hist, d: Duration) {
    record(h, d.as_nanos().min(u64::MAX as u128) as u64);
}

/// Times a scope into a histogram: created by [`crate::hist_timer!`],
/// records the elapsed nanoseconds on drop. Inert (no clock read) when
/// histogram collection is disabled at construction.
#[must_use = "a histogram timer records the lifetime of its guard"]
pub struct HistTimer {
    hist: Hist,
    start: Option<Instant>,
}

impl HistTimer {
    /// Starts timing into `h`.
    #[inline]
    pub fn start(hist: Hist) -> HistTimer {
        let start = hists_enabled().then(Instant::now);
        HistTimer { hist, start }
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_duration(self.hist, start.elapsed());
        }
    }
}

fn lock_global() -> std::sync::MutexGuard<'static, Option<Box<[HistAcc; HIST_COUNT]>>> {
    match GLOBAL.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn merge_acc(g: &mut HistAcc, l: &HistAcc) {
    if l.count == 0 {
        return;
    }
    if g.count == 0 || l.min < g.min {
        g.min = l.min;
    }
    if l.max > g.max {
        g.max = l.max;
    }
    g.count += l.count;
    g.sum = g.sum.saturating_add(l.sum);
    for (gb, lb) in g.buckets.iter_mut().zip(l.buckets.iter()) {
        *gb += *lb;
    }
}

/// Flushes the calling thread's histogram accumulators into the global
/// merge. Runs when a worker detaches its span context and on
/// [`crate::drain`].
pub(crate) fn flush_current_thread() {
    let local =
        TLS_HISTS.with(|t| std::mem::replace(&mut *t.borrow_mut(), [EMPTY_ACC; HIST_COUNT]));
    if local.iter().all(|a| a.count == 0) {
        return;
    }
    let mut guard = lock_global();
    let global = guard.get_or_insert_with(|| Box::new([EMPTY_ACC; HIST_COUNT]));
    for (g, l) in global.iter_mut().zip(local.iter()) {
        merge_acc(g, l);
    }
}

/// Takes every non-empty histogram as a snapshot, sorted by name,
/// resetting the registry (flushes the calling thread first).
pub(crate) fn take_hists() -> Vec<HistSnapshot> {
    flush_current_thread();
    let Some(accs) = lock_global().take() else {
        return Vec::new();
    };
    let mut out: Vec<HistSnapshot> = ALL_HISTS
        .iter()
        .zip(accs.iter())
        .filter(|(_, a)| a.count > 0)
        .map(|(&h, a)| HistSnapshot::from_acc(hist_name(h), a))
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// A drained histogram: exact count/sum/min/max plus the non-zero log2
/// buckets, sparse and sorted by index. Obtained from [`crate::drain`]
/// as part of a [`crate::Trace`], or rebuilt from a trace file by
/// [`crate::validate_jsonl`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// The registry name (`analyze.module`, `check.function`, …).
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples in nanoseconds (saturating).
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample (0 when empty).
    pub max_ns: u64,
    /// Non-zero buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// An empty histogram under `name` — what a bench artifact reports
    /// for a registered histogram nothing recorded into.
    pub fn empty(name: &str) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            ..HistSnapshot::default()
        }
    }

    fn from_acc(name: &str, a: &HistAcc) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            count: a.count,
            sum_ns: a.sum,
            min_ns: a.min,
            max_ns: a.max,
            buckets: a
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
        }
    }

    /// Merges another histogram into this one. Bucket addition
    /// commutes, so merge order never changes the result — the property
    /// partitioned bench runs rely on.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_ns < self.min_ns {
            self.min_ns = other.min_ns;
        }
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        let mut dense = [0u64; HIST_BUCKETS];
        for &(i, c) in self.buckets.iter().chain(other.buckets.iter()) {
            dense[i.min(HIST_BUCKETS - 1)] += c;
        }
        self.buckets = dense
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
    }

    /// The exact `pct`-th percentile (`pct` in 1..=100): the inclusive
    /// upper bound of the bucket holding the rank-⌈pct·count/100⌉
    /// sample, clamped to the observed max. 0 when empty.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u64::from(pct) * self.count).div_ceil(100).max(1);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Humanizes a nanosecond duration the way the profile table humanizes
/// `mem.*` bytes: `412 ns`, `61.4 µs`, `3.1 ms`, `2.05 s`.
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", v / 1e6)
    } else {
        format!("{:.2} s", v / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(values: &[u64]) -> HistSnapshot {
        let _l = crate::test_lock();
        crate::enable_hists();
        let _ = take_hists();
        for &v in values {
            record(Hist::AnalyzeModule, v);
        }
        crate::disable_hists();
        let mut hists = take_hists();
        assert_eq!(hists.len(), 1);
        hists.pop().unwrap()
    }

    #[test]
    fn bucket_index_is_the_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Round-trip: every value sits at or below its bucket's bound.
        for i in 0..HIST_BUCKETS {
            let ub = bucket_upper_bound(i);
            assert!(bucket_index(ub) <= i.max(1));
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_are_exact_on_a_known_distribution() {
        // 100 fast samples (10 ns → bucket 4, bound 15), 10 slow (1000 ns
        // → bucket 10, bound 1023), one outlier (1 ms → bucket 20, bound
        // 1048575 but clamped to the observed max).
        let mut values = vec![10u64; 100];
        values.extend([1000u64; 10]);
        values.push(1_000_000);
        let h = snap(&values);
        assert_eq!(h.count, 111);
        assert_eq!(h.sum_ns, 100 * 10 + 10 * 1000 + 1_000_000);
        assert_eq!(h.min_ns, 10);
        assert_eq!(h.max_ns, 1_000_000);
        assert_eq!(h.buckets, vec![(4, 100), (10, 10), (20, 1)]);
        assert_eq!(h.percentile(50), 15, "rank 56 lands in the 10 ns bucket");
        assert_eq!(h.percentile(90), 15, "rank 100 still in the 10 ns bucket");
        assert_eq!(h.percentile(95), 1023, "rank 106 lands in the 1 µs bucket");
        assert_eq!(h.percentile(99), 1023, "rank 110 lands in the 1 µs bucket");
        assert_eq!(h.percentile(100), 1_000_000, "top bucket clamps to max");
        assert_eq!(h.mean_ns(), (100 * 10 + 10 * 1000 + 1_000_000) / 111);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = HistSnapshot::empty("analyze.module");
        assert_eq!(h.count, 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.mean_ns(), 0);
        assert!(h.buckets.is_empty());
    }

    #[test]
    fn merge_equals_recording_everything_in_one_place() {
        let all: Vec<u64> = (0..200u64).map(|i| i * i * 37 % 100_000).collect();
        let whole = snap(&all);
        let mut left = snap(&all[..77]);
        let right = snap(&all[77..]);
        left.merge(&right);
        assert_eq!(left, whole, "merge is exact, not approximate");
        // Merging an empty histogram is the identity.
        left.merge(&HistSnapshot::empty("analyze.module"));
        assert_eq!(left, whole);
        // Merging *into* an empty histogram copies the distribution.
        let mut start = HistSnapshot::empty("analyze.module");
        start.name = whole.name.clone();
        start.merge(&whole);
        assert_eq!(start, whole);
    }

    #[test]
    fn threaded_recording_is_byte_identical_to_sequential() {
        let values: Vec<u64> = (0..1000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        let sequential = snap(&values);
        for workers in [2usize, 8] {
            let _l = crate::test_lock();
            crate::enable_hists();
            let _ = take_hists();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let chunk: Vec<u64> = values.iter().copied().skip(w).step_by(workers).collect();
                    s.spawn(move || {
                        for v in chunk {
                            record(Hist::AnalyzeModule, v);
                        }
                        flush_current_thread();
                    });
                }
            });
            crate::disable_hists();
            let mut hists = take_hists();
            assert_eq!(hists.len(), 1);
            assert_eq!(
                hists.pop().unwrap(),
                sequential,
                "{workers} workers merge to the sequential histogram"
            );
        }
    }

    #[test]
    fn timer_records_once_and_only_when_enabled() {
        let _l = crate::test_lock();
        crate::disable_hists();
        let _ = take_hists();
        {
            let _t = HistTimer::start(Hist::CheckWave);
        }
        assert!(take_hists().is_empty(), "disabled timer records nothing");
        crate::enable_hists();
        {
            let _t = HistTimer::start(Hist::CheckWave);
            std::thread::sleep(Duration::from_millis(1));
        }
        crate::disable_hists();
        let hists = take_hists();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].name, "check.wave");
        assert_eq!(hists[0].count, 1);
        assert!(hists[0].min_ns >= 1_000_000, "slept a millisecond");
    }

    #[test]
    fn hist_names_are_unique_and_resolvable() {
        for &h in &ALL_HISTS {
            assert_eq!(hist_by_name(hist_name(h)), Some(h));
        }
        let mut names: Vec<_> = ALL_HISTS.iter().map(|&h| hist_name(h)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HIST_COUNT, "duplicate histogram name");
        assert_eq!(hist_by_name("no.such.hist"), None);
    }

    #[test]
    fn fmt_ns_picks_the_right_unit() {
        assert_eq!(fmt_ns(0), "0 ns");
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(61_400), "61.4 µs");
        assert_eq!(fmt_ns(3_100_000), "3.1 ms");
        assert_eq!(fmt_ns(2_050_000_000), "2.05 s");
    }
}
