//! Pluggable alias backends: how a finished typing walk becomes the
//! immutable [`FrozenLocs`] view the flow-sensitive checker consumes.
//!
//! The pipeline's seam is the *freeze* step. The Steensgaard typing walk
//! ([`crate::steensgaard`]) always runs — it is what assigns every
//! expression its analysis type and what the effect system and
//! `restrict`/`confine` outcomes are computed against. A backend decides
//! only how the final location table is *snapshotted* for the checker:
//!
//! * [`SteensgaardBackend`] captures the table verbatim
//!   ([`crate::loc::LocTable::freeze`]) — the paper's configuration, and
//!   byte-identical to the historical pipeline.
//! * [`AndersenBackend`] additionally runs the inclusion-based points-to
//!   analysis ([`crate::andersen`]) and uses its directional flow facts
//!   to *split* unification classes that the checker consults, where the
//!   split is provably invisible to every query the checker can make
//!   (see the refinement rules below). This realises the paper's §8
//!   conjecture — "restrict checking can also be combined with more
//!   precise alias analyses" — without re-deriving the effect system.
//!
//! ## The refinement's soundness argument
//!
//! The checker ([`localias-cqual`]) consults a frozen snapshot through a
//! narrow surface: the pointee classes of *call-argument* expressions
//! (lock intrinsics, `change_type`, and summary retargeting at defined
//! calls), the `(ρ, ρ')` pairs recorded on restrict/confine outcomes,
//! and the bound pointee of `restrict` parameters. The Andersen backend
//! therefore only splits a Steensgaard class when it can give every one
//! of those *consulted keys* a sub-class covering the full set of
//! objects the points-to analysis says the key may target. A class is
//! left untouched (conservatively identical to Steensgaard) when it is
//! tainted, had its multiplicity raised by a failed annotation, contains
//! a pinned outcome location, is reachable from an `extern` signature
//! (extern calls generate no Andersen flow), or any consulted key's
//! points-to set cannot be mapped back onto the class's own keys.
//! Unconsulted keys of a split class become inert singletons carrying
//! their creation multiplicity — by construction the checker never
//! resolves them.

use crate::andersen::{self, Cell};
use crate::frozen::FrozenLocs;
use crate::loc::{Loc, Multiplicity};
use crate::steensgaard::{State, VarKind};
use crate::ty::{locs_of, Ty};
use localias_ast::visit::{walk_expr, walk_module, Visitor};
use localias_ast::{Expr, ExprKind, Module, NodeId};
use localias_obs as obs;
use std::fmt;

/// Which alias backend produces the frozen location view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Unification-based may-alias (the paper's configuration; default).
    #[default]
    Steensgaard,
    /// Inclusion-based refinement of the unification classes.
    Andersen,
}

impl Backend {
    /// All selectable backends, in CLI/display order.
    pub const ALL: [Backend; 2] = [Backend::Steensgaard, Backend::Andersen];

    /// Parses a CLI backend name. The error lists the valid names.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "steensgaard" => Ok(Backend::Steensgaard),
            "andersen" => Ok(Backend::Andersen),
            other => {
                let valid: Vec<&str> = Backend::ALL.iter().map(|b| b.name()).collect();
                Err(format!(
                    "unknown alias backend `{other}` (valid backends: {})",
                    valid.join(", ")
                ))
            }
        }
    }

    /// The backend's canonical (CLI) name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Steensgaard => "steensgaard",
            Backend::Andersen => "andersen",
        }
    }

    /// Cache-fingerprint domain tag. The Steensgaard default is untagged
    /// so existing cache stores stay valid byte-for-byte; every other
    /// backend separates its domain so switching backends can never
    /// serve a stale hit.
    pub fn domain_tag(self) -> &'static str {
        match self {
            Backend::Steensgaard => "",
            Backend::Andersen => "alias=andersen;",
        }
    }

    /// Dense index, for per-backend memo tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The trait-object implementation of this backend.
    pub fn dispatch(self) -> &'static dyn AliasBackend {
        match self {
            Backend::Steensgaard => &SteensgaardBackend,
            Backend::Andersen => &AndersenBackend,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An alias backend: turns a finished analysis state into the immutable
/// [`FrozenLocs`] snapshot the checker consumes.
///
/// Implementations must uphold the frozen-snapshot invariant relative to
/// the checker's consultation surface (see the module docs): every query
/// the checker makes must answer consistently with *some* sound
/// may-alias abstraction of the module, and `find` must be idempotent
/// (`find(find(l)) == find(l)`).
pub trait AliasBackend: Sync {
    /// The backend's canonical name.
    fn name(&self) -> &'static str;

    /// Produces the frozen view. `pinned` lists locations that carry
    /// checker-visible outcome state (restrict/confine `(ρ, ρ')` pairs,
    /// restrict-parameter pointees); their classes must resolve exactly
    /// as the live table does.
    fn freeze(&self, m: &Module, state: &mut State, pinned: &[Loc]) -> FrozenLocs;
}

/// The identity backend: snapshot the unification classes verbatim.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteensgaardBackend;

impl AliasBackend for SteensgaardBackend {
    fn name(&self) -> &'static str {
        Backend::Steensgaard.name()
    }

    fn freeze(&self, _m: &Module, state: &mut State, _pinned: &[Loc]) -> FrozenLocs {
        obs::count(obs::Counter::BackendSteensgaardFreezes, 1);
        state.locs.freeze()
    }
}

/// The refining backend: split unification classes along inclusion-based
/// points-to boundaries where the split is invisible to the checker.
#[derive(Debug, Clone, Copy, Default)]
pub struct AndersenBackend;

impl AliasBackend for AndersenBackend {
    fn name(&self) -> &'static str {
        Backend::Andersen.name()
    }

    fn freeze(&self, m: &Module, state: &mut State, pinned: &[Loc]) -> FrozenLocs {
        obs::count(obs::Counter::BackendAndersenFreezes, 1);
        refine(m, state, pinned)
    }
}

/// Collects every call-argument expression with a pointer value type:
/// the checker's consultation surface over expressions.
fn consulted_args(m: &Module, state: &State) -> Vec<(NodeId, Loc)> {
    struct Args<'s> {
        state: &'s State,
        out: Vec<(NodeId, Loc)>,
    }
    impl Visitor for Args<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call(_, args) = &e.kind {
                for a in args {
                    if let Some(Ty::Ref(l)) = self.state.expr_ty[a.id.index()] {
                        self.out.push((a.id, l));
                    }
                }
            }
            walk_expr(self, e);
        }
    }
    let mut v = Args {
        state,
        out: Vec::new(),
    };
    walk_module(&mut v, m);
    v.out
}

/// Maps an Andersen object cell back onto the Steensgaard keys that
/// stand for the same storage; `None` if no sound mapping exists.
fn cell_keys(state: &State, cell: &Cell) -> Option<Vec<Loc>> {
    fn var_matches<'s>(
        state: &'s State,
        fun: &'s Option<String>,
        name: &'s str,
    ) -> impl Iterator<Item = &'s crate::steensgaard::VarInfo> {
        state
            .vars
            .iter()
            .filter(move |v| v.fun.as_deref() == fun.as_deref() && v.name == name)
    }
    let keys = match cell {
        Cell::Var(fun, name) => var_matches(state, fun, name)
            .filter_map(|v| match v.kind {
                VarKind::Addressed(l) => Some(l),
                VarKind::Register => None,
            })
            .collect::<Vec<Loc>>(),
        Cell::ArrayElems(fun, name) => {
            // Arrays lower to `Ty::Ref(elems)`: the variable's value type
            // points at the collapsed element location.
            var_matches(state, fun, name)
                .filter_map(|v| v.ty.pointee())
                .collect()
        }
        Cell::Field(s, f) => state
            .fields
            .get(&(s.clone(), f.clone()))
            .map(|&l| vec![l])
            .unwrap_or_default(),
        Cell::Heap(id) => {
            // Real `new` sites record `Ty::Ref(heap)` on their expression;
            // the solver's synthetic fresh nodes use out-of-range ids and
            // fall through to `None`.
            match state.expr_ty.get(id.index()) {
                Some(Some(Ty::Ref(l))) => vec![*l],
                _ => Vec::new(),
            }
        }
    };
    if keys.is_empty() {
        None
    } else {
        Some(keys)
    }
}

fn dsu_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

fn dsu_union(parent: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (dsu_find(parent, a), dsu_find(parent, b));
    if ra != rb {
        parent[rb as usize] = ra;
    }
}

/// The Andersen refinement over a finished Steensgaard state.
fn refine(m: &Module, state: &mut State, pinned: &[Loc]) -> FrozenLocs {
    let n = state.locs.len();
    let base = state.locs.freeze();
    let rep_of = |l: Loc| base.find(l).0;

    // -- Which classes must stay exactly as Steensgaard resolved them? --
    let mut keep = vec![false; n];
    for i in 0..n as u32 {
        let k = Loc(i);
        if base.find(k) == k && (base.is_tainted(k) || state.locs.is_raised(k)) {
            keep[i as usize] = true;
        }
    }
    for &p in pinned {
        keep[rep_of(p) as usize] = true;
    }
    // Extern calls generate no Andersen flow, so any storage reachable
    // from an extern signature has unreliable points-to sets.
    let extern_tys: Vec<Ty> = state
        .funs
        .values()
        .filter(|sig| sig.is_extern)
        .flat_map(|sig| sig.params.iter().cloned().chain([sig.ret.clone()]))
        .collect();
    for ty in &extern_tys {
        for l in locs_of(&mut state.locs, ty) {
            keep[rep_of(l) as usize] = true;
        }
    }

    // -- Group each class's consulted keys by points-to overlap. --
    let consulted = consulted_args(m, state);
    let pts = andersen::analyze(m);
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut grouped = vec![false; n];
    for &(id, l) in &consulted {
        let r = rep_of(l);
        if keep[r as usize] {
            continue;
        }
        let Some(cells) = pts.expr_points_to(id) else {
            keep[r as usize] = true;
            continue;
        };
        let mut ok = true;
        let mut reach: Vec<Loc> = Vec::new();
        for cell in cells {
            match cell_keys(state, cell) {
                Some(keys) => reach.extend(keys),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            keep[r as usize] = true;
            continue;
        }
        grouped[l.index()] = true;
        for o in reach {
            let ro = rep_of(o);
            if ro != r {
                // Points-to escapes the unification class: the mapping is
                // suspect, leave both classes alone.
                keep[r as usize] = true;
                keep[ro as usize] = true;
                break;
            }
            grouped[o.index()] = true;
            dsu_union(&mut parent, l.0, o.0);
        }
    }

    // -- Assemble the refined snapshot. --
    // Group representative: the smallest member key (deterministic).
    // Group multiplicity: join of the members' creation multiplicities —
    // exact, because raised classes were excluded above.
    let mut group_rep = vec![u32::MAX; n];
    let mut group_mult = vec![Multiplicity::Zero; n];
    for i in 0..n as u32 {
        if grouped[i as usize] && !keep[rep_of(Loc(i)) as usize] {
            let root = dsu_find(&mut parent, i) as usize;
            group_rep[root] = group_rep[root].min(i);
            group_mult[root] = group_mult[root].join(state.locs.created_multiplicity(Loc(i)));
        }
    }
    let mut rep = Vec::with_capacity(n);
    let mut mult = Vec::with_capacity(n);
    let mut tainted = Vec::with_capacity(n);
    let mut first_rep: Vec<u32> = vec![u32::MAX; n];
    let mut split_classes = 0u64;
    for i in 0..n as u32 {
        let k = Loc(i);
        let r = rep_of(k);
        let (out_rep, out_mult, out_taint) = if keep[r as usize] {
            (r, base.multiplicity(k), base.is_tainted(k))
        } else if grouped[i as usize] {
            let root = dsu_find(&mut parent, i) as usize;
            (group_rep[root], group_mult[root], false)
        } else {
            // Inert singleton: the checker never resolves this key.
            (i, state.locs.created_multiplicity(k), false)
        };
        if first_rep[r as usize] == u32::MAX {
            first_rep[r as usize] = out_rep;
        } else if first_rep[r as usize] != out_rep && first_rep[r as usize] != u32::MAX - 1 {
            first_rep[r as usize] = u32::MAX - 1; // marker: class split
            split_classes += 1;
        }
        rep.push(out_rep);
        mult.push(out_mult);
        tainted.push(out_taint);
    }
    if split_classes > 0 {
        obs::count(obs::Counter::BackendSplitClasses, split_classes);
    }
    FrozenLocs::from_parts(rep, mult, tainted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steensgaard::analyze;
    use localias_ast::parse_module;

    fn addressed(state: &State, name: &str) -> Loc {
        state
            .vars
            .iter()
            .find_map(|v| match (v.name == name, v.kind) {
                (true, VarKind::Addressed(l)) => Some(l),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no addressed var `{name}`"))
    }

    #[test]
    fn parse_names_and_errors() {
        assert_eq!(Backend::parse("steensgaard"), Ok(Backend::Steensgaard));
        assert_eq!(Backend::parse("andersen"), Ok(Backend::Andersen));
        let err = Backend::parse("flowsensitive").unwrap_err();
        assert!(
            err.contains("steensgaard") && err.contains("andersen"),
            "{err}"
        );
        assert_eq!(Backend::default(), Backend::Steensgaard);
        assert_eq!(Backend::Andersen.to_string(), "andersen");
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Ok(b));
            assert_eq!(b.dispatch().name(), b.name());
        }
    }

    #[test]
    fn domain_tags_keep_default_untagged() {
        assert_eq!(Backend::Steensgaard.domain_tag(), "");
        assert_eq!(Backend::Andersen.domain_tag(), "alias=andersen;");
    }

    #[test]
    fn steensgaard_backend_is_identity_capture() {
        let m = parse_module(
            "m",
            r#"
            lock a;
            lock b;
            void f() { lock *x; lock *y; x = &a; y = &b; x = y; spin_lock(x); }
            "#,
        )
        .unwrap();
        let mut aliases = analyze(&m);
        let direct = aliases.state.locs.freeze();
        let via_backend = SteensgaardBackend.freeze(&m, &mut aliases.state, &[]);
        assert_eq!(direct.len(), via_backend.len());
        for i in 0..direct.len() as u32 {
            let l = Loc(i);
            assert_eq!(direct.find(l), via_backend.find(l));
            assert_eq!(direct.multiplicity(l), via_backend.multiplicity(l));
            assert_eq!(direct.is_tainted(l), via_backend.is_tainted(l));
        }
    }

    #[test]
    fn andersen_splits_disjoint_lock_uses() {
        // Steensgaard merges a and b through the x = y copy in g, so the
        // locks in f weakly update; Andersen's directional flow keeps
        // their targets distinct.
        let m = parse_module(
            "m",
            r#"
            lock a;
            lock b;
            extern void work();
            void f() {
                spin_lock(&a);
                work();
                spin_unlock(&a);
                spin_lock(&b);
                work();
                spin_unlock(&b);
            }
            void g() { lock *x; lock *y; x = &a; y = &b; x = y; }
            "#,
        )
        .unwrap();
        let mut aliases = analyze(&m);
        let la = addressed(&aliases.state, "a");
        let lb = addressed(&aliases.state, "b");
        let steens = aliases.state.locs.freeze();
        assert!(steens.same(la, lb), "unification conflates a and b");
        assert!(!steens.strong_updatable(la), "merged class is Many");

        let refined = AndersenBackend.freeze(&m, &mut aliases.state, &[]);
        assert!(!refined.same(la, lb), "refinement splits a from b");
        assert!(
            refined.strong_updatable(la),
            "{:?}",
            refined.multiplicity(la)
        );
        assert!(refined.strong_updatable(lb));
        assert_eq!(refined.find(refined.find(la)), refined.find(la));
    }

    #[test]
    fn tainted_classes_are_never_split() {
        let m = parse_module(
            "m",
            r#"
            lock a;
            lock b;
            int sink;
            void f() {
                sink = (int) (&a);
                spin_lock(&a);
                spin_unlock(&a);
                spin_lock(&b);
                spin_unlock(&b);
            }
            void g() { lock *x; lock *y; x = &a; y = &b; x = y; }
            "#,
        )
        .unwrap();
        let mut aliases = analyze(&m);
        let la = addressed(&aliases.state, "a");
        let lb = addressed(&aliases.state, "b");
        let steens = aliases.state.locs.freeze();
        let refined = AndersenBackend.freeze(&m, &mut aliases.state, &[]);
        assert!(refined.same(la, lb), "tainted class must keep its shape");
        assert_eq!(refined.is_tainted(la), steens.is_tainted(la));
        assert_eq!(refined.multiplicity(la), steens.multiplicity(la));
    }

    #[test]
    fn pinned_classes_are_never_split() {
        let m = parse_module(
            "m",
            r#"
            lock a;
            lock b;
            void f() {
                spin_lock(&a);
                spin_unlock(&a);
                spin_lock(&b);
                spin_unlock(&b);
            }
            void g() { lock *x; lock *y; x = &a; y = &b; x = y; }
            "#,
        )
        .unwrap();
        let mut aliases = analyze(&m);
        let la = addressed(&aliases.state, "a");
        let lb = addressed(&aliases.state, "b");
        let steens = aliases.state.locs.freeze();
        let refined = AndersenBackend.freeze(&m, &mut aliases.state, &[la]);
        assert!(refined.same(la, lb));
        assert_eq!(refined.find(la), steens.find(la));
        assert_eq!(refined.multiplicity(la), steens.multiplicity(la));
    }

    #[test]
    fn extern_reachable_classes_are_never_split() {
        // `keep` takes a lock pointer: its signature pointee unifies with
        // both argument classes, and extern calls create no Andersen
        // flow, so the class must stay merged.
        let m = parse_module(
            "m",
            r#"
            lock a;
            lock b;
            extern void keep(lock *l);
            void f() {
                keep(&a);
                keep(&b);
                spin_lock(&a);
                spin_unlock(&a);
            }
            "#,
        )
        .unwrap();
        let mut aliases = analyze(&m);
        let la = addressed(&aliases.state, "a");
        let lb = addressed(&aliases.state, "b");
        let refined = AndersenBackend.freeze(&m, &mut aliases.state, &[]);
        assert!(refined.same(la, lb), "extern-reachable class stays merged");
    }

    #[test]
    fn array_collapse_is_preserved() {
        // A collapsed array element class stays Many under both backends:
        // the consulted key's points-to set is the elems cell itself.
        let m = parse_module(
            "m",
            r#"
            lock locks[8];
            void f(int i) { spin_lock(&locks[i]); spin_unlock(&locks[i]); }
            "#,
        )
        .unwrap();
        let mut aliases = analyze(&m);
        let elems = {
            let v = aliases
                .state
                .vars
                .iter()
                .find(|v| v.name == "locks")
                .expect("locks var");
            v.ty.pointee().expect("array lowers to Ref(elems)")
        };
        let refined = AndersenBackend.freeze(&m, &mut aliases.state, &[]);
        assert_eq!(
            refined.multiplicity(refined.find(elems)),
            Multiplicity::Many
        );
        assert!(!refined.strong_updatable(elems));
    }
}
