//! An Andersen-style (inclusion-based) points-to analysis.
//!
//! The paper builds on a unification-based may-alias analysis and notes
//! (§3, §8) that "restrict checking can also be combined with more
//! precise alias analyses. We have not yet explored this possibility."
//! This module explores the first half of that possibility: a classic
//! subset-based analysis over the same Mini-C AST, useful for measuring
//! how much precision the unification analysis gives up (and therefore
//! how many restrict/confine demotions are artifacts of unification).
//!
//! ## Model
//!
//! Memory is abstracted into [`Cell`]s: one per variable, one per
//! (collapsed) array, one per `(struct, field)` pair, one per `new` site.
//! Constraints are the four Andersen forms, generated syntactically:
//!
//! | Statement | Constraint |
//! |---|---|
//! | `p = &x`  | `{x} ⊆ pts(p)` |
//! | `p = q`   | `pts(q) ⊆ pts(p)` |
//! | `p = *q`  | `∀o ∈ pts(q). pts(o) ⊆ pts(p)` |
//! | `*p = q`  | `∀o ∈ pts(p). pts(q) ⊆ pts(o)` |
//!
//! Calls copy arguments into parameters and returns back to call sites
//! (context-insensitively). The solver is a straightforward worklist with
//! complex-constraint re-evaluation — `O(n³)` worst case, fine at Mini-C
//! module sizes.
//!
//! The crucial difference from [`crate::steensgaard`]: assignment is
//! *directional*. `p = q` gives `p` all of `q`'s targets without giving
//! `q` any of `p`'s, so unrelated pointees stay distinct where
//! unification would conflate them.

use localias_ast::visit::{walk_expr, Visitor};
use localias_ast::{
    Expr, ExprKind, Ident, ItemKind, Module, NodeId, Stmt, StmtKind, TypeExpr, UnOp,
};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An abstract memory cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cell {
    /// A named variable (globals are `(None, name)`, locals/params are
    /// `(Some(function), name)`).
    Var(Option<String>, String),
    /// The collapsed elements of the array stored in a variable.
    ArrayElems(Option<String>, String),
    /// A struct field class, field-based: `(struct name, field)`.
    Field(String, String),
    /// A heap allocation site.
    Heap(NodeId),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Var(None, n) => write!(f, "{n}"),
            Cell::Var(Some(fun), n) => write!(f, "{fun}::{n}"),
            Cell::ArrayElems(None, n) => write!(f, "{n}[]"),
            Cell::ArrayElems(Some(fun), n) => write!(f, "{fun}::{n}[]"),
            Cell::Field(s, fld) => write!(f, "{s}.{fld}"),
            Cell::Heap(id) => write!(f, "new{id}"),
        }
    }
}

/// A set-variable index: `pts(i)` is the points-to set of node `i`.
pub type Ix = usize;

/// Constraint forms awaiting complex resolution.
#[derive(Debug, Clone, Copy)]
enum Complex {
    /// `p = *q`: for every `o` in `pts(q)`, `pts(o) ⊆ pts(p)`.
    LoadInto { q: Ix, p: Ix },
    /// `*p = q`: for every `o` in `pts(p)`, `pts(q) ⊆ pts(o)`.
    StoreFrom { p: Ix, q: Ix },
}

/// The result of the analysis: points-to sets over [`Cell`]s.
#[derive(Debug)]
pub struct PointsTo {
    cells: Vec<Cell>,
    ix: HashMap<Cell, Ix>,
    sets: Vec<BTreeSet<Ix>>,
    /// The set-variable holding each evaluated expression's value,
    /// recorded during constraint generation (keyed by `NodeId`).
    expr_value: HashMap<NodeId, Ix>,
}

impl PointsTo {
    /// The points-to set of a cell, as cells.
    pub fn points_to(&self, cell: &Cell) -> Vec<Cell> {
        match self.ix.get(cell) {
            Some(&i) => self.sets[i]
                .iter()
                .map(|&j| self.cells[j].clone())
                .collect(),
            None => Vec::new(),
        }
    }

    /// The points-to set of variable `name` in `fun` (or a global when no
    /// local binding exists).
    pub fn var_points_to(&self, fun: &str, name: &str) -> Vec<Cell> {
        let local = Cell::Var(Some(fun.to_string()), name.to_string());
        if self.ix.contains_key(&local) {
            return self.points_to(&local);
        }
        self.points_to(&Cell::Var(None, name.to_string()))
    }

    /// May `a` and `b` point to a common cell?
    pub fn may_point_same(&self, a: &Cell, b: &Cell) -> bool {
        let (Some(&ia), Some(&ib)) = (self.ix.get(a), self.ix.get(b)) else {
            return false;
        };
        self.sets[ia].intersection(&self.sets[ib]).next().is_some()
    }

    /// Number of cells in the model.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total size of all points-to sets (a precision metric: smaller is
    /// more precise, for the same program).
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(BTreeSet::len).sum()
    }

    /// The points-to set of the *value* of expression `id`, as cells —
    /// `None` if the expression was never evaluated during generation.
    /// This is the query alias backends use to refine a unification
    /// class: which objects may this pointer expression actually target?
    pub fn expr_points_to(&self, id: NodeId) -> Option<impl Iterator<Item = &Cell>> {
        let &v = self.expr_value.get(&id)?;
        Some(self.sets[v].iter().map(move |&j| &self.cells[j]))
    }
}

/// Analysis driver.
struct Gen {
    cells: Vec<Cell>,
    ix: HashMap<Cell, Ix>,
    /// Base facts `{target} ⊆ pts(node)`.
    bases: Vec<(Ix, Ix)>,
    /// Copy edges `pts(from) ⊆ pts(to)`.
    copies: Vec<(Ix, Ix)>,
    complexes: Vec<Complex>,
    current_fun: Option<String>,
    /// Declared array-ness / struct-ness of variables, to model decay and
    /// field bases.
    var_types: HashMap<Cell, TypeExpr>,
    struct_fields: HashMap<String, Vec<(String, TypeExpr)>>,
    /// Return-value set variable per function.
    returns: HashMap<String, Ix>,
    /// Parameter cells per function (for call wiring).
    params: HashMap<String, Vec<Cell>>,
    /// Value set-variable of every evaluated expression (see
    /// [`PointsTo::expr_points_to`]).
    expr_value: HashMap<NodeId, Ix>,
}

impl Gen {
    fn cell(&mut self, c: Cell) -> Ix {
        if let Some(&i) = self.ix.get(&c) {
            return i;
        }
        let i = self.cells.len();
        self.cells.push(c.clone());
        self.ix.insert(c, i);
        i
    }

    fn var_cell(&mut self, name: &str) -> Cell {
        if let Some(fun) = &self.current_fun {
            let local = Cell::Var(Some(fun.clone()), name.to_string());
            if self.ix.contains_key(&local) {
                return local;
            }
        }
        let global = Cell::Var(None, name.to_string());
        if self.ix.contains_key(&global) {
            return global;
        }
        // Unseen name: treat as function-local.
        Cell::Var(self.current_fun.clone(), name.to_string())
    }

    /// The set-variable holding the *value* of expression `e`, emitting
    /// constraints for its evaluation. Non-pointer expressions return a
    /// fresh empty node. Every evaluated expression's value node is
    /// recorded in `expr_value`.
    fn value_of(&mut self, e: &Expr) -> Ix {
        let ix = self.value_of_inner(e);
        self.expr_value.insert(e.id, ix);
        ix
    }

    fn value_of_inner(&mut self, e: &Expr) -> Ix {
        match &e.kind {
            ExprKind::Var(x) => {
                let c = self.var_cell(&x.name);
                // Array decay: the value of an array variable is a
                // pointer to its element cell.
                if let Some(TypeExpr::Array(_, _)) = self.var_types.get(&c) {
                    let fresh = self.fresh(e.id);
                    let (fun, name) = match &c {
                        Cell::Var(f, n) => (f.clone(), n.clone()),
                        _ => unreachable!(),
                    };
                    let elems = self.cell(Cell::ArrayElems(fun, name));
                    self.bases.push((fresh, elems));
                    return fresh;
                }
                self.cell(c)
            }
            ExprKind::Unary(UnOp::AddrOf, inner) => {
                let fresh = self.fresh(e.id);
                if let Some(target) = self.place_of(inner) {
                    self.bases.push((fresh, target));
                }
                fresh
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let q = self.value_of(inner);
                let fresh = self.fresh(e.id);
                self.complexes.push(Complex::LoadInto { q, p: fresh });
                fresh
            }
            ExprKind::Index(arr, idx) => {
                let _ = self.value_of(idx);
                let q = self.value_of(arr);
                let fresh = self.fresh(e.id);
                self.complexes.push(Complex::LoadInto { q, p: fresh });
                fresh
            }
            ExprKind::Field(base, fld) | ExprKind::Arrow(base, fld) => {
                let _ = self.value_of(base);
                match self.field_cell_of(base, fld) {
                    Some(c) => {
                        let i = self.cell(c);
                        // Reading the field: its contents.
                        let fresh = self.fresh(e.id);
                        self.copies.push((i, fresh));
                        fresh
                    }
                    None => self.fresh(e.id),
                }
            }
            ExprKind::Assign(lhs, rhs) => {
                let rv = self.value_of(rhs);
                self.assign_into(lhs, rv);
                rv
            }
            ExprKind::Call(f, args) => self.call(f, args, e.id),
            ExprKind::New(init) => {
                let iv = self.value_of(init);
                let heap = self.cell(Cell::Heap(e.id));
                // The heap cell's contents receive the initializer.
                self.copies.push((iv, heap));
                let fresh = self.fresh(e.id);
                self.bases.push((fresh, heap));
                fresh
            }
            ExprKind::Cast(_, inner) => self.value_of(inner),
            ExprKind::Unary(_, inner) => {
                let _ = self.value_of(inner);
                self.fresh(e.id)
            }
            ExprKind::Binary(_, a, b) => {
                let _ = self.value_of(a);
                let _ = self.value_of(b);
                self.fresh(e.id)
            }
            ExprKind::Int(_) => self.fresh(e.id),
        }
    }

    /// The cell an lvalue denotes, when statically nameable (variables,
    /// fields, array elements).
    fn place_of(&mut self, e: &Expr) -> Option<Ix> {
        match &e.kind {
            ExprKind::Var(x) => {
                let c = self.var_cell(&x.name);
                Some(self.cell(c))
            }
            ExprKind::Index(arr, _) => {
                // &a[i]: the element cell when `a` is a direct array
                // variable; otherwise fall back to the pointer's targets
                // (handled by the caller through value_of + Load/Store).
                if let ExprKind::Var(x) = &arr.kind {
                    let c = self.var_cell(&x.name);
                    if let Some(TypeExpr::Array(_, _)) = self.var_types.get(&c) {
                        let (fun, name) = match &c {
                            Cell::Var(f, n) => (f.clone(), n.clone()),
                            _ => unreachable!(),
                        };
                        let elems = Cell::ArrayElems(fun, name);
                        return Some(self.cell(elems));
                    }
                }
                None
            }
            ExprKind::Field(base, fld) | ExprKind::Arrow(base, fld) => {
                let c = self.field_cell_of(base, fld)?;
                Some(self.cell(c))
            }
            _ => None,
        }
    }

    /// Resolves a field access to its field-based cell using declared
    /// types (a lightweight, syntactic struct-type inference).
    fn field_cell_of(&mut self, base: &Expr, fld: &Ident) -> Option<Cell> {
        let sname = self.struct_of(base)?;
        Some(Cell::Field(sname, fld.name.to_string()))
    }

    /// Best-effort struct-name inference for a base expression.
    fn struct_of(&mut self, base: &Expr) -> Option<String> {
        match &base.kind {
            ExprKind::Var(x) => {
                let c = self.var_cell(&x.name);
                match self.var_types.get(&c)? {
                    TypeExpr::Struct(s) => Some(s.to_string()),
                    TypeExpr::Ptr(inner) | TypeExpr::Array(inner, _) => match &**inner {
                        TypeExpr::Struct(s) => Some(s.to_string()),
                        _ => None,
                    },
                    _ => None,
                }
            }
            ExprKind::Index(arr, _) | ExprKind::Unary(UnOp::Deref, arr) => self.struct_of(arr),
            ExprKind::Field(b, f) | ExprKind::Arrow(b, f) => {
                let s = self.struct_of(b)?;
                let fields = self.struct_fields.get(&s)?;
                let (_, fty) = fields.iter().find(|(n, _)| *n == f.name)?;
                match fty {
                    TypeExpr::Struct(s2) => Some(s2.to_string()),
                    TypeExpr::Ptr(inner) => match &**inner {
                        TypeExpr::Struct(s2) => Some(s2.to_string()),
                        _ => None,
                    },
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Assigns the set-variable `rv` into the lvalue `lhs`.
    fn assign_into(&mut self, lhs: &Expr, rv: Ix) {
        if let Some(place) = self.place_of(lhs) {
            self.copies.push((rv, place));
            return;
        }
        match &lhs.kind {
            ExprKind::Unary(UnOp::Deref, inner) => {
                let p = self.value_of(inner);
                self.complexes.push(Complex::StoreFrom { p, q: rv });
            }
            ExprKind::Index(arr, _) => {
                let p = self.value_of(arr);
                self.complexes.push(Complex::StoreFrom { p, q: rv });
            }
            _ => {}
        }
    }

    fn fresh(&mut self, id: NodeId) -> Ix {
        // One anonymous node per (expression, occurrence); NodeIds are
        // unique so this is stable.
        self.cell(Cell::Heap(NodeId(u32::MAX - id.0)))
    }

    fn call(&mut self, f: &Ident, args: &[Expr], at: NodeId) -> Ix {
        let arg_vals: Vec<Ix> = args.iter().map(|a| self.value_of(a)).collect();
        if let Some(params) = self.params.get(f.name.as_str()).cloned() {
            for (p, v) in params.iter().zip(arg_vals) {
                let pi = self.cell(p.clone());
                self.copies.push((v, pi));
            }
            if let Some(&r) = self.returns.get(f.name.as_str()) {
                let fresh = self.fresh(at);
                self.copies.push((r, fresh));
                return fresh;
            }
        }
        self.fresh(at)
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                let _ = self.value_of(e);
            }
            StmtKind::Decl { ty, name, init, .. } => {
                let fun = self.current_fun.clone();
                let c = Cell::Var(fun, name.name.to_string());
                self.cell(c.clone());
                self.var_types.insert(c.clone(), ty.clone());
                if let Some(e) = init {
                    let rv = self.value_of(e);
                    let i = self.cell(c);
                    self.copies.push((rv, i));
                }
            }
            StmtKind::Restrict { name, init, body } => {
                // As an alias analysis, restrict is just a binding.
                let rv = self.value_of(init);
                let fun = self.current_fun.clone();
                let c = Cell::Var(fun, name.name.to_string());
                let i = self.cell(c.clone());
                self.var_types.insert(c, TypeExpr::ptr(TypeExpr::Int));
                self.copies.push((rv, i));
                self.block(body);
            }
            StmtKind::Confine { expr, body } => {
                let _ = self.value_of(expr);
                self.block(body);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let _ = self.value_of(cond);
                self.block(then_blk);
                if let Some(e) = else_blk {
                    self.block(e);
                }
            }
            StmtKind::While { cond, body, step } => {
                let _ = self.value_of(cond);
                self.block(body);
                if let Some(step) = step {
                    let _ = self.value_of(step);
                }
            }
            StmtKind::Return(Some(e)) => {
                let rv = self.value_of(e);
                if let Some(fun) = self.current_fun.clone() {
                    if let Some(&r) = self.returns.get(&fun) {
                        self.copies.push((rv, r));
                    }
                }
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn block(&mut self, b: &localias_ast::Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }
}

/// Runs the inclusion-based analysis over a module.
///
/// # Example
///
/// ```
/// use localias_ast::parse_module;
/// use localias_alias::andersen::{analyze, Cell};
///
/// // Directional assignment: q gains nothing from p.
/// let m = parse_module(
///     "m",
///     "int a; int b; void f() { int *p = &a; int *q = &b; p = q; }",
/// )?;
/// let pts = analyze(&m);
/// let p = pts.var_points_to("f", "p");
/// let q = pts.var_points_to("f", "q");
/// assert_eq!(p.len(), 2, "{p:?}");
/// assert_eq!(q.len(), 1, "{q:?}");
/// # Ok::<(), localias_ast::ParseError>(())
/// ```
pub fn analyze(m: &Module) -> PointsTo {
    let mut gen = Gen {
        cells: Vec::new(),
        ix: HashMap::new(),
        bases: Vec::new(),
        copies: Vec::new(),
        complexes: Vec::new(),
        current_fun: None,
        var_types: HashMap::new(),
        struct_fields: HashMap::new(),
        returns: HashMap::new(),
        params: HashMap::new(),
        expr_value: HashMap::new(),
    };

    for s in m.structs() {
        gen.struct_fields.insert(
            s.name.name.to_string(),
            s.fields
                .iter()
                .map(|(n, t)| (n.name.to_string(), t.clone()))
                .collect(),
        );
        for (fname, fty) in &s.fields {
            let c = Cell::Field(s.name.name.to_string(), fname.name.to_string());
            gen.cell(c.clone());
            gen.var_types.insert(c, fty.clone());
        }
    }
    for g in m.globals() {
        let c = Cell::Var(None, g.name.name.to_string());
        gen.cell(c.clone());
        gen.var_types.insert(c, g.ty.clone());
        if let TypeExpr::Array(_, _) = g.ty {
            gen.cell(Cell::ArrayElems(None, g.name.name.to_string()));
        }
    }
    for f in m.functions() {
        let mut ps = Vec::new();
        for p in &f.params {
            let c = Cell::Var(Some(f.name.name.to_string()), p.name.name.to_string());
            gen.cell(c.clone());
            gen.var_types.insert(c.clone(), p.ty.clone());
            ps.push(c);
        }
        gen.params.insert(f.name.name.to_string(), ps);
        let r = gen.cell(Cell::Var(
            Some(f.name.name.to_string()),
            "<return>".to_string(),
        ));
        gen.returns.insert(f.name.name.to_string(), r);
    }
    for item in &m.items {
        if let ItemKind::Fun(f) = &item.kind {
            gen.current_fun = Some(f.name.name.to_string());
            gen.block(&f.body);
            gen.current_fun = None;
        }
    }

    // Solve: initialize bases, then iterate copies and complex
    // constraints to fixpoint.
    let n = gen.cells.len();
    let mut sets: Vec<BTreeSet<Ix>> = vec![BTreeSet::new(); n];
    for &(node, target) in &gen.bases {
        sets[node].insert(target);
    }
    loop {
        let mut changed = false;
        for &(from, to) in &gen.copies {
            if from != to {
                let add: Vec<Ix> = sets[from].difference(&sets[to]).copied().collect();
                if !add.is_empty() {
                    sets[to].extend(add);
                    changed = true;
                }
            }
        }
        for &cx in &gen.complexes {
            match cx {
                Complex::LoadInto { q, p } => {
                    let targets: Vec<Ix> = sets[q].iter().copied().collect();
                    for o in targets {
                        if o != p {
                            let add: Vec<Ix> = sets[o].difference(&sets[p]).copied().collect();
                            if !add.is_empty() {
                                sets[p].extend(add);
                                changed = true;
                            }
                        }
                    }
                }
                Complex::StoreFrom { p, q } => {
                    let targets: Vec<Ix> = sets[p].iter().copied().collect();
                    for o in targets {
                        if o != q {
                            let add: Vec<Ix> = sets[q].difference(&sets[o]).copied().collect();
                            if !add.is_empty() {
                                sets[o].extend(add);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Drop the anonymous expression nodes from reported sets? They are
    // never pointed *to* by named cells except via our synthetic scheme,
    // and keeping them is harmless for queries by name.
    PointsTo {
        cells: gen.cells,
        ix: gen.ix,
        sets,
        expr_value: gen.expr_value,
    }
}

/// Walks a module and reports, for every function, the named local
/// pointer variables and their points-to sets — a convenience for
/// comparisons and debugging.
pub fn summarize(m: &Module) -> Vec<(String, String, Vec<String>)> {
    let pts = analyze(m);
    let mut out = Vec::new();
    struct Decls(Vec<(String, String)>, Option<String>);
    impl Visitor for Decls {
        fn visit_expr(&mut self, e: &Expr) {
            walk_expr(self, e);
        }
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtKind::Decl { name, ty, .. } = &s.kind {
                if ty.is_ptr() {
                    if let Some(f) = &self.1 {
                        self.0.push((f.clone(), name.name.to_string()));
                    }
                }
            }
            localias_ast::visit::walk_stmt(self, s);
        }
    }
    for f in m.functions() {
        let mut d = Decls(Vec::new(), Some(f.name.name.to_string()));
        localias_ast::visit::walk_fun(&mut d, f);
        for (fun, var) in d.0 {
            let set: Vec<String> = pts
                .var_points_to(&fun, &var)
                .into_iter()
                .filter(|c| !matches!(c, Cell::Heap(id) if id.0 > u32::MAX / 2))
                .map(|c| c.to_string())
                .collect();
            out.push((fun, var, set));
        }
    }
    out
}
