#![warn(missing_docs)]

//! Unification-based (Steensgaard-style) may-alias analysis for Mini-C.
//!
//! This crate provides the aliasing substrate of *Checking and Inferring
//! Local Non-Aliasing* (PLDI 2003):
//!
//! * [`union_find`] — the disjoint-set structure;
//! * [`loc`] — abstract locations `ρ` and the [`loc::LocTable`];
//! * [`frozen`] — immutable, `Sync` snapshots of a resolved location
//!   table ([`loc::LocTable::freeze`]), for consumers that only query;
//! * [`ty`] — the analysis types `τ ::= int | ref ρ(τ) | ...` and their
//!   unification (the paper's Figure 4a);
//! * [`steensgaard`] — the typing walk that *is* the may-alias analysis,
//!   exposed both standalone ([`steensgaard::analyze`]) and as a generic
//!   walk with hooks ([`steensgaard::analyze_with`]) that `localias-core`
//!   uses to generate effect constraints;
//! * [`andersen`] — an inclusion-based (subset) points-to analysis over
//!   the same AST, for precision comparisons (the direction the paper's
//!   §8 leaves unexplored);
//! * [`backend`] — the pluggable freeze seam: [`backend::Backend`]
//!   selects whether the checker's frozen view is the verbatim
//!   unification capture or the Andersen-refined split of it.
//!
//! # Example
//!
//! ```
//! use localias_ast::parse_module;
//! use localias_alias::steensgaard::analyze;
//!
//! let m = parse_module("m", "void f(int *p) { int *q = p; *q = 1; }")?;
//! let aliases = analyze(&m);
//! assert!(aliases.state.mismatches.is_empty());
//! # Ok::<(), localias_ast::ParseError>(())
//! ```

pub mod andersen;
pub mod backend;
pub mod frozen;
pub mod fx;
pub mod loc;
pub mod steensgaard;
pub mod ty;
pub mod union_find;

pub use backend::{AliasBackend, AndersenBackend, Backend, SteensgaardBackend};
pub use frozen::FrozenLocs;
pub use fx::{FxHashMap, FxHashSet, FxHasher, FxMap, FxSet};
pub use loc::{Loc, LocTable};
pub use steensgaard::{
    analyze, analyze_with, BindSite, FunSig, Hooks, ModuleAliases, NoHooks, ScopeKind, State,
    VarId, VarInfo, VarKind,
};
pub use ty::{locs_of, unify, Ty, TypeMismatch};
pub use union_find::UnionFind;
