//! A union-find (disjoint set) structure with path compression and union
//! by rank.
//!
//! This is the workhorse underneath abstract-location unification: the
//! paper's Figure 4a type-equality rules reduce every `ρ1 = ρ2` constraint
//! to a `union`, and all later queries go through `find`.

/// Disjoint sets over the keys `0..len`.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates an empty structure.
    pub fn new() -> Self {
        UnionFind::default()
    }

    /// Adds a fresh singleton set and returns its key.
    pub fn push(&mut self) -> u32 {
        let key = self.parent.len() as u32;
        self.parent.push(key);
        self.rank.push(0);
        key
    }

    /// Number of keys (not number of sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if no keys have been created.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the canonical representative of `key`, compressing paths.
    ///
    /// # Panics
    ///
    /// Panics if `key` was not returned by [`UnionFind::push`].
    pub fn find(&mut self, key: u32) -> u32 {
        let mut root = key;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = key;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Finds the representative without mutation (no path compression).
    pub fn find_const(&self, key: u32) -> u32 {
        let mut root = key;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `Some((winner, loser))` — the surviving representative and
    /// the representative that was absorbed — or `None` if they were
    /// already in the same set. Callers that maintain per-representative
    /// side data merge `loser`'s data into `winner`'s.
    pub fn union(&mut self, a: u32, b: u32) -> Option<(u32, u32)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (winner, loser) = match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Equal => {
                self.rank[ra as usize] += 1;
                (ra, rb)
            }
        };
        self.parent[loser as usize] = winner;
        Some((winner, loser))
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new();
        let a = uf.push();
        let b = uf.push();
        assert_ne!(uf.find(a), uf.find(b));
        assert!(!uf.same(a, b));
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new();
        let a = uf.push();
        let b = uf.push();
        let c = uf.push();
        assert!(uf.union(a, b).is_some());
        assert!(uf.same(a, b));
        assert!(!uf.same(a, c));
        assert!(uf.union(b, c).is_some());
        assert!(uf.same(a, c));
        // Re-union is a no-op.
        assert!(uf.union(a, c).is_none());
    }

    #[test]
    fn winner_loser_reported() {
        let mut uf = UnionFind::new();
        let a = uf.push();
        let b = uf.push();
        let (winner, loser) = uf.union(a, b).unwrap();
        assert!(winner == a || winner == b);
        assert_ne!(winner, loser);
        assert_eq!(uf.find(loser), winner);
    }

    #[test]
    fn transitive_chains() {
        let mut uf = UnionFind::new();
        let keys: Vec<u32> = (0..100).map(|_| uf.push()).collect();
        for w in keys.windows(2) {
            uf.union(w[0], w[1]);
        }
        let root = uf.find(keys[0]);
        for &k in &keys {
            assert_eq!(uf.find(k), root);
        }
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new();
        let keys: Vec<u32> = (0..20).map(|_| uf.push()).collect();
        for i in (0..18).step_by(2) {
            uf.union(keys[i], keys[i + 2]);
        }
        for &k in &keys {
            assert_eq!(uf.find_const(k), uf.find(k));
        }
    }
}
