//! An FxHash-style multiplicative hasher for analysis-internal keys.
//!
//! Both the effect solver (small integer keys: `Loc`, `EffVar`) and the
//! typing walk (short identifier strings) spend real time probing hash
//! maps; SipHash's per-lookup cost dwarfs the one-multiply mix below.
//! Not DoS-resistant — fine for keys the analyses allocate themselves.
//!
//! This is the workspace's single `FxHasher` home: `localias-cqual`
//! re-exports it (the checker's hot maps use the [`FxHashMap`] /
//! [`FxHashSet`] spellings). It lives here rather than in
//! `localias-core` because this crate is the root-most analysis crate —
//! `core` and `cqual` both already depend on it. Map iteration order is
//! never observable in reports (every ordered artifact is assembled from
//! deterministic schedules), so consumers may not rely on it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash-style hasher. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        // The golden-ratio multiplier used by rustc's FxHash.
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time so string keys (identifiers) stay cheap.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Alias for [`FxMap`] under the conventional rustc name.
pub type FxHashMap<K, V> = FxMap<K, V>;

/// Alias for [`FxSet`] under the conventional rustc name.
pub type FxHashSet<T> = FxSet<T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_roundtrip_mixed_keys() {
        let mut m: FxMap<String, u32> = FxMap::default();
        for i in 0..100u32 {
            m.insert(format!("key_{i}"), i);
        }
        for i in 0..100u32 {
            assert_eq!(m.get(&format!("key_{i}")), Some(&i));
        }
        let mut ints: FxMap<u64, u64> = FxMap::default();
        for i in 0..1000u64 {
            ints.insert(i, i * 2);
        }
        assert_eq!(ints.get(&999), Some(&1998));
    }

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut set = FxHashSet::default();
        for i in 0..10_000u32 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
        let mut strs = FxHashSet::default();
        for i in 0..10_000u32 {
            strs.insert(format!("fun{i:04}"));
        }
        assert_eq!(strs.len(), 10_000);
    }

    #[test]
    fn tail_bytes_participate_in_the_hash() {
        fn h(b: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        }
        assert_ne!(h(b"abcdefgh1"), h(b"abcdefgh2"));
        assert_ne!(h(b"ab"), h(b"ba"), "tail byte order is mixed");
    }
}
