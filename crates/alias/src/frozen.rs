//! Read-only snapshots of a fully-resolved [`LocTable`].
//!
//! Every query on a live [`LocTable`] goes through union-find `find`,
//! which path-compresses — a mutation. That `&mut` requirement is what
//! historically forced the flow-sensitive lock checker to take the whole
//! analysis mutably and therefore to run strictly sequentially. Once
//! unification is over, though, the equivalence classes never change
//! again: [`LocTable::freeze`] performs one full path-compression pass
//! and snapshots the `Loc → representative` mapping (plus the
//! multiplicity and taint bits the checker consults) into a
//! [`FrozenLocs`], whose lookups need only `&self` and which is `Send +
//! Sync` — the substrate for checking independent functions in parallel.
//!
//! The invariant a freeze guarantees: for every key `l` allocated before
//! the freeze, `frozen.find(l) == table.find(l)`, `frozen.multiplicity(l)
//! == table.multiplicity(l)`, and `frozen.is_tainted(l) ==
//! table.is_tainted(l)` — forever, because nothing can mutate the
//! snapshot.

use crate::loc::{LocTable, Multiplicity};
use crate::Loc;
use localias_obs as obs;

/// An immutable resolution table over the abstract locations of one
/// analysis run. See the module docs for the freezing invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenLocs {
    /// Canonical representative of every key, fully compressed.
    rep: Vec<u32>,
    /// Per-key (post-resolution) multiplicity of the key's class.
    mult: Vec<Multiplicity>,
    /// Per-key taint flag of the key's class.
    tainted: Vec<bool>,
}

impl FrozenLocs {
    pub(crate) fn capture(table: &mut LocTable) -> FrozenLocs {
        let n = table.len();
        let mut rep = Vec::with_capacity(n);
        let mut mult = Vec::with_capacity(n);
        let mut tainted = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let l = Loc(i);
            rep.push(table.find(l).0);
            mult.push(table.multiplicity(l));
            tainted.push(table.is_tainted(l));
        }
        FrozenLocs { rep, mult, tainted }
    }

    /// Builds a snapshot directly from parallel per-key tables — the
    /// constructor alias *backends* other than the live Steensgaard table
    /// use (e.g. the Andersen refinement, which splits classes and so
    /// cannot be captured from any `LocTable`).
    ///
    /// `rep` must be idempotent (`rep[rep[l]] == rep[l]` for every key):
    /// the checker resolves through a single lookup, exactly like the
    /// capture of a path-compressed union-find.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ, or (debug builds) if `rep`
    /// is not idempotent or names an out-of-range key.
    pub fn from_parts(rep: Vec<u32>, mult: Vec<Multiplicity>, tainted: Vec<bool>) -> FrozenLocs {
        assert_eq!(rep.len(), mult.len());
        assert_eq!(rep.len(), tainted.len());
        debug_assert!(rep.iter().all(|&r| (r as usize) < rep.len()));
        debug_assert!(rep.iter().all(|&r| rep[r as usize] == r), "rep idempotent");
        FrozenLocs { rep, mult, tainted }
    }

    /// Number of location keys covered by the snapshot.
    pub fn len(&self) -> usize {
        self.rep.len()
    }

    /// Returns `true` if the snapshot covers no locations.
    pub fn is_empty(&self) -> bool {
        self.rep.is_empty()
    }

    /// Canonical representative of `l`'s class.
    ///
    /// # Panics
    ///
    /// Panics if `l` was allocated after the freeze.
    #[inline]
    pub fn find(&self, l: Loc) -> Loc {
        obs::count(obs::Counter::AliasFindOps, 1);
        Loc(self.rep[l.index()])
    }

    /// Returns `true` if `a` and `b` denote the same location class.
    #[inline]
    pub fn same(&self, a: Loc, b: Loc) -> bool {
        self.rep[a.index()] == self.rep[b.index()]
    }

    /// The multiplicity of `l`'s class.
    #[inline]
    pub fn multiplicity(&self, l: Loc) -> Multiplicity {
        self.mult[l.index()]
    }

    /// Returns `true` if `l`'s class was tainted by a type mismatch.
    #[inline]
    pub fn is_tainted(&self, l: Loc) -> bool {
        self.tainted[l.index()]
    }

    /// Whether `l` may be strongly updated: its class stands for at most
    /// one concrete object and the alias analysis never lost track of it
    /// (the immutable counterpart of `localias-cqual`'s
    /// `strong_updatable`).
    #[inline]
    pub fn strong_updatable(&self, l: Loc) -> bool {
        self.multiplicity(l) <= Multiplicity::One && !self.is_tainted(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ty;

    #[test]
    fn frozen_matches_live_table() {
        let mut t = LocTable::new();
        let locs: Vec<Loc> = (0..32)
            .map(|i| {
                let m = match i % 3 {
                    0 => Multiplicity::Zero,
                    1 => Multiplicity::One,
                    _ => Multiplicity::Many,
                };
                t.fresh_with(format!("l{i}"), Ty::Int, m)
            })
            .collect();
        for w in locs.chunks(4) {
            t.union_raw(w[0], w[1]);
            t.union_raw(w[2], w[3]);
        }
        t.taint(locs[5]);

        let frozen = t.freeze();
        assert_eq!(frozen.len(), t.len());
        for &l in &locs {
            assert_eq!(frozen.find(l), t.find(l), "{l}");
            assert_eq!(frozen.multiplicity(l), t.multiplicity(l), "{l}");
            assert_eq!(frozen.is_tainted(l), t.is_tainted(l), "{l}");
        }
        for &a in &locs {
            for &b in &locs {
                assert_eq!(frozen.same(a, b), t.same(a, b));
            }
        }
    }

    #[test]
    fn frozen_is_immutable_under_later_unions() {
        let mut t = LocTable::new();
        let a = t.fresh("a", Ty::Int);
        let b = t.fresh("b", Ty::Int);
        let frozen = t.freeze();
        assert!(!frozen.same(a, b));
        // Later unification does not retroactively change the snapshot.
        t.union_raw(a, b);
        assert!(!frozen.same(a, b));
        assert!(t.same(a, b));
    }

    #[test]
    fn strong_updatable_matches_checker_rule() {
        let mut t = LocTable::new();
        let one = t.fresh_with("x", Ty::Lock, Multiplicity::One);
        let many = t.fresh_with("arr[]", Ty::Lock, Multiplicity::Many);
        let tainted = t.fresh_with("y", Ty::Lock, Multiplicity::One);
        t.taint(tainted);
        let zero = t.fresh("z", Ty::Lock);
        let f = t.freeze();
        assert!(f.strong_updatable(one));
        assert!(f.strong_updatable(zero));
        assert!(!f.strong_updatable(many));
        assert!(!f.strong_updatable(tainted));
    }

    #[test]
    fn freeze_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<FrozenLocs>();
    }
}
