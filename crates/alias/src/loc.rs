//! Abstract locations `ρ` and the location table.
//!
//! An abstract location stands for a set of concrete memory objects: a
//! variable, the (collapsed) elements of an array, a struct field class,
//! or a heap allocation site. Two program quantities that may alias are
//! mapped to the *same* abstract location — the defining property of the
//! paper's unification-based (Steensgaard-style) may-alias analysis.

use crate::ty::Ty;
use crate::union_find::UnionFind;
use localias_obs as obs;
use std::fmt;

/// An abstract location `ρ`.
///
/// Values are stable keys into a [`LocTable`]; always compare them through
/// [`LocTable::find`] (or after canonicalization), since unification can
/// merge two distinct keys into one equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u32);

impl Loc {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ{}", self.0)
    }
}

/// How many concrete objects an abstract location may stand for.
///
/// This drives the flow-sensitive checker's strong/weak update decision:
/// only a location known to stand for *at most one* concrete object may be
/// strongly updated. `restrict`/`confine` work precisely by introducing a
/// fresh location `ρ'` of multiplicity [`Multiplicity::One`] for a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Multiplicity {
    /// A placeholder that has not (yet) been matched with any object
    /// (e.g. the pointee structure invented when lowering a declared
    /// pointer type).
    Zero,
    /// Exactly one concrete object (a single variable, or the private
    /// copy a `restrict`/`confine` binds).
    One,
    /// Possibly many objects (array elements, field classes shared by all
    /// struct instances, heap allocation sites, or the union of several
    /// single objects).
    Many,
}

impl Multiplicity {
    /// Combines the multiplicities of two merged location classes.
    pub fn join(self, other: Multiplicity) -> Multiplicity {
        use Multiplicity::*;
        match (self, other) {
            (Zero, x) | (x, Zero) => x,
            (One, One) => Many,
            _ => Many,
        }
    }
}

/// Per-location metadata (kept on the canonical representative).
#[derive(Debug, Clone)]
struct LocInfo {
    /// Debug name, e.g. `locks[]` or `dev.mu`.
    name: String,
    /// The type of the value stored at this location.
    content: Ty,
    /// `true` if the location's identity was laundered through a type
    /// mismatch (e.g. an incompatible cast). Tainted locations can never
    /// be restricted or confined — the alias analysis cannot vouch for
    /// them. This models the paper's §7 observation that "our underlying
    /// may-alias analysis is unable to verify the addition of confine
    /// without programmer intervention (e.g., a type cast)".
    tainted: bool,
    /// How many concrete objects the class may stand for.
    mult: Multiplicity,
    /// The multiplicity this *key* was allocated with, before any
    /// unification joined it into a class. Never mutated; alternative
    /// alias backends recompute class multiplicities from these when they
    /// split a Steensgaard class into finer pieces.
    created: Multiplicity,
    /// `true` if [`LocTable::raise_multiplicity`] was applied to the
    /// class (a failed `restrict`/`confine` forcing `ρ'` to `Many`).
    /// Such classes carry checker-visible state beyond what the creation
    /// multiplicities encode, so backends must not re-derive their
    /// multiplicity.
    raised: bool,
}

/// The table of all abstract locations for one analysis run, with their
/// union-find structure, content types and taint flags.
#[derive(Debug, Clone, Default)]
pub struct LocTable {
    uf: UnionFind,
    info: Vec<LocInfo>,
    /// `(winner, loser)` pairs recorded by unifications since the last
    /// [`LocTable::take_merges`]; consumers maintaining per-location side
    /// tables (e.g. the effect solver's `ε_ρ` variables) replay these.
    merges: Vec<(Loc, Loc)>,
}

impl LocTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LocTable::default()
    }

    /// Allocates a fresh placeholder location ([`Multiplicity::Zero`])
    /// named `name` holding values of type `content`.
    pub fn fresh(&mut self, name: impl Into<String>, content: Ty) -> Loc {
        self.fresh_with(name, content, Multiplicity::Zero)
    }

    /// Allocates a fresh location with an explicit multiplicity.
    pub fn fresh_with(&mut self, name: impl Into<String>, content: Ty, mult: Multiplicity) -> Loc {
        obs::count(obs::Counter::AliasFreshLocs, 1);
        let key = self.uf.push();
        self.info.push(LocInfo {
            name: name.into(),
            content,
            tainted: false,
            mult,
            created: mult,
            raised: false,
        });
        Loc(key)
    }

    /// The multiplicity of `l`'s class.
    pub fn multiplicity(&mut self, l: Loc) -> Multiplicity {
        let r = self.find(l);
        self.info[r.index()].mult
    }

    /// Raises the multiplicity of `l`'s class to at least `m` (this is a
    /// plain maximum, unlike the additive [`Multiplicity::join`] used when
    /// two classes merge).
    pub fn raise_multiplicity(&mut self, l: Loc, m: Multiplicity) {
        let r = self.find(l);
        let cur = self.info[r.index()].mult;
        self.info[r.index()].mult = cur.max(m);
        self.info[r.index()].raised = true;
    }

    /// The multiplicity key `l` was allocated with ([`LocTable::fresh`] /
    /// [`LocTable::fresh_with`]) — a per-*key* property that unification
    /// never changes, unlike [`LocTable::multiplicity`].
    pub fn created_multiplicity(&self, l: Loc) -> Multiplicity {
        self.info[l.index()].created
    }

    /// Returns `true` if [`LocTable::raise_multiplicity`] was ever
    /// applied to `l`'s class (directly or to a class later merged in).
    pub fn is_raised(&mut self, l: Loc) -> bool {
        let r = self.find(l);
        self.info[r.index()].raised
    }

    /// Number of allocated location keys (not equivalence classes).
    pub fn len(&self) -> usize {
        self.uf.len()
    }

    /// Returns `true` if no locations exist.
    pub fn is_empty(&self) -> bool {
        self.uf.is_empty()
    }

    /// Canonical representative of `l`.
    pub fn find(&mut self, l: Loc) -> Loc {
        obs::count(obs::Counter::AliasFindOps, 1);
        Loc(self.uf.find(l.0))
    }

    /// Canonical representative without path compression.
    pub fn find_const(&self, l: Loc) -> Loc {
        Loc(self.uf.find_const(l.0))
    }

    /// Returns `true` if `a` and `b` denote the same location class —
    /// i.e. the analysis considers them may-aliases.
    pub fn same(&mut self, a: Loc, b: Loc) -> bool {
        self.uf.same(a.0, b.0)
    }

    /// The content type stored at `l`'s class.
    pub fn content(&mut self, l: Loc) -> Ty {
        let r = self.find(l);
        self.info[r.index()].content.clone()
    }

    /// The content type of `l`'s class, without path compression or
    /// cloning — the read the incremental anchor walk uses on an
    /// already-frozen table.
    pub fn content_const(&self, l: Loc) -> &Ty {
        let r = self.find_const(l);
        &self.info[r.index()].content
    }

    /// Overwrites the content type of `l`'s class.
    pub fn set_content(&mut self, l: Loc, ty: Ty) {
        let r = self.find(l);
        self.info[r.index()].content = ty;
    }

    /// Debug name of `l`'s class.
    pub fn name(&mut self, l: Loc) -> String {
        let r = self.find(l);
        self.info[r.index()].name.clone()
    }

    /// Marks `l`'s class tainted (see [`LocTable::is_tainted`]).
    pub fn taint(&mut self, l: Loc) {
        let r = self.find(l);
        self.info[r.index()].tainted = true;
    }

    /// Returns `true` if `l`'s class has been tainted by a type mismatch.
    pub fn is_tainted(&mut self, l: Loc) -> bool {
        let r = self.find(l);
        self.info[r.index()].tainted
    }

    /// Unifies the classes of `a` and `b` *without* touching their content
    /// types; returns the `(winner, loser)` pair if a merge happened.
    ///
    /// This is the raw operation; almost all callers want
    /// [`crate::ty::unify`] instead, which also unifies contents.
    pub fn union_raw(&mut self, a: Loc, b: Loc) -> Option<(Loc, Loc)> {
        let merged = self.uf.union(a.0, b.0).map(|(w, l)| (Loc(w), Loc(l)));
        if let Some((winner, loser)) = merged {
            obs::count(obs::Counter::AliasUnifications, 1);
            // Keep the earlier-created name for stable diagnostics, merge
            // taint.
            if loser.0 < winner.0 {
                let name = self.info[loser.index()].name.clone();
                self.info[winner.index()].name = name;
            }
            let t = self.info[loser.index()].tainted;
            self.info[winner.index()].tainted |= t;
            let raised = self.info[loser.index()].raised;
            self.info[winner.index()].raised |= raised;
            let m = self.info[loser.index()].mult;
            let w = self.info[winner.index()].mult;
            self.info[winner.index()].mult = w.join(m);
            self.merges.push((winner, loser));
        }
        merged
    }

    /// Drains the `(winner, loser)` merge log.
    pub fn take_merges(&mut self) -> Vec<(Loc, Loc)> {
        std::mem::take(&mut self.merges)
    }

    /// Freezes the table's current equivalence classes into an immutable
    /// [`crate::frozen::FrozenLocs`] snapshot: one full path-compression
    /// pass, then a read-only `Loc → representative` table (plus the
    /// multiplicity/taint bits) whose lookups need only `&self`.
    ///
    /// The table itself stays usable (freezing only compresses paths);
    /// unifications performed *after* the freeze are not reflected in the
    /// snapshot.
    pub fn freeze(&mut self) -> crate::frozen::FrozenLocs {
        crate::frozen::FrozenLocs::capture(self)
    }

    /// All canonical representatives currently live.
    pub fn canonical_locs(&mut self) -> Vec<Loc> {
        let mut out = Vec::new();
        for i in 0..self.len() as u32 {
            if self.uf.find(i) == i {
                out.push(Loc(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_locations_are_distinct() {
        let mut t = LocTable::new();
        let a = t.fresh("a", Ty::Int);
        let b = t.fresh("b", Ty::Int);
        assert!(!t.same(a, b));
        assert_eq!(t.name(a), "a");
        assert_eq!(t.content(b), Ty::Int);
    }

    #[test]
    fn union_merges_taint_and_logs() {
        let mut t = LocTable::new();
        let a = t.fresh("a", Ty::Int);
        let b = t.fresh("b", Ty::Int);
        t.taint(b);
        assert!(!t.is_tainted(a));
        t.union_raw(a, b);
        assert!(t.is_tainted(a));
        assert!(t.same(a, b));
        let merges = t.take_merges();
        assert_eq!(merges.len(), 1);
        assert!(t.take_merges().is_empty(), "merge log drains");
    }

    #[test]
    fn earlier_name_wins() {
        let mut t = LocTable::new();
        let a = t.fresh("first", Ty::Int);
        let b = t.fresh("second", Ty::Int);
        t.union_raw(b, a);
        assert_eq!(t.name(a), "first");
        assert_eq!(t.name(b), "first");
    }

    #[test]
    fn created_multiplicity_survives_union_and_raise() {
        let mut t = LocTable::new();
        let a = t.fresh_with("a", Ty::Int, Multiplicity::One);
        let b = t.fresh_with("b", Ty::Int, Multiplicity::One);
        t.union_raw(a, b);
        assert_eq!(t.multiplicity(a), Multiplicity::Many, "class joins");
        assert_eq!(t.created_multiplicity(a), Multiplicity::One);
        assert_eq!(t.created_multiplicity(b), Multiplicity::One);
        assert!(!t.is_raised(a));
        t.raise_multiplicity(b, Multiplicity::Many);
        assert!(t.is_raised(a), "raised is a class property");
        assert_eq!(t.created_multiplicity(a), Multiplicity::One);
    }

    #[test]
    fn raised_propagates_through_union() {
        let mut t = LocTable::new();
        let a = t.fresh("a", Ty::Int);
        let b = t.fresh("b", Ty::Int);
        t.raise_multiplicity(b, Multiplicity::Many);
        assert!(!t.is_raised(a));
        t.union_raw(a, b);
        assert!(t.is_raised(a));
    }

    #[test]
    fn canonical_locs_shrink_under_union() {
        let mut t = LocTable::new();
        let locs: Vec<Loc> = (0..10).map(|i| t.fresh(format!("l{i}"), Ty::Int)).collect();
        assert_eq!(t.canonical_locs().len(), 10);
        for w in locs.windows(2) {
            t.union_raw(w[0], w[1]);
        }
        assert_eq!(t.canonical_locs().len(), 1);
    }
}
