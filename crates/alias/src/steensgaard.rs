//! The unification-based may-alias analysis (Steensgaard-style), shared
//! typing walk, and its hook interface.
//!
//! The paper's constraint generation (its Figure 3) interleaves two
//! activities over one AST traversal: *typing* (assigning every expression
//! an analysis type, unifying at assignments and calls — the may-alias
//! analysis itself) and *effect bookkeeping* (recording reads, writes and
//! allocations, scope extents, and binder sites). This module implements
//! the typing walk once, generically over a [`Hooks`] implementation:
//!
//! * with the no-op [`NoHooks`], [`analyze`] is a plain Steensgaard
//!   analysis — `restrict`/`confine` degrade to ordinary `let`s, which is
//!   exactly the conservative baseline the paper starts from;
//! * `localias-core` supplies hooks that emit the paper's effect
//!   constraints and give `restrict` bindings their fresh location `ρ'`.
//!
//! ## Modelling choices
//!
//! * **Arrays collapse** to a single element location (the imprecision
//!   that makes Figure 1's lock array need `restrict` at all).
//! * **Struct fields are field-based**: one location per `(struct, field)`
//!   pair, shared by all instances. This is coarser than instance-based
//!   models and is again exactly the kind of conflation `confine`
//!   recovers from locally.
//! * **Locals whose address is never taken are registers**: reading or
//!   writing them is not a location effect (the paper's `let`-bound names
//!   likewise have effect-free uses via its (Var) rule). Their role in
//!   confine's referential transparency is handled syntactically by
//!   `localias-core`.
//! * **Unknown externs are effect-free and alias-free** aside from
//!   unifying argument types with the (per-extern) parameter types. The
//!   corpus declares its externs, so this stays honest there.

use crate::fx::{FxMap, FxSet};
use crate::loc::{Loc, LocTable};
use crate::ty::{unify, Ty, TypeMismatch};
use localias_ast::{
    BinOp, BindingKind, Block, Expr, ExprKind, FunDef, Ident, ItemKind, Module, NodeId, Param,
    Stmt, StmtKind, TypeExpr, UnOp,
};

/// A dense identifier for a variable binding (global, parameter or local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a variable is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// A local (or parameter) whose address is never taken: reads/writes
    /// are not location effects.
    Register,
    /// A variable with addressable storage at the given location.
    Addressed(Loc),
}

/// Metadata about one variable binding.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Storage classification.
    pub kind: VarKind,
    /// The variable's *value* type (for an [`VarKind::Addressed`] variable
    /// this equals the content type of its location).
    pub ty: Ty,
    /// Enclosing function, or `None` for globals.
    pub fun: Option<String>,
}

/// The signature of a defined or extern function.
#[derive(Debug, Clone)]
pub struct FunSig {
    /// Parameter value types (shared across all call sites — the analysis
    /// is context-insensitive, like the paper's).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// `true` for `extern` declarations (no body).
    pub is_extern: bool,
}

/// Why a scope was entered (reported to [`Hooks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// A function body; carries the function item's node id.
    Fun(NodeId),
    /// An ordinary `{ ... }` block (or `if`/`while` body).
    Block(NodeId),
    /// The body of a `restrict x = e { ... }` statement.
    RestrictBody(NodeId),
    /// The body of a `confine (e) { ... }` statement.
    ConfineBody(NodeId),
}

/// Where a variable was bound (reported to [`Hooks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindSite {
    /// A global declaration.
    Global,
    /// A function parameter; `restrict` is the C99-style qualifier.
    Param {
        /// Whether the parameter is `restrict`-qualified.
        restrict: bool,
    },
    /// A block-local declaration with the given binding kind.
    Decl {
        /// `let` or `restrict`.
        binding: BindingKind,
        /// Whether the declaration has an initializer.
        has_init: bool,
    },
    /// The scoped `restrict x = e { ... }` statement.
    RestrictStmt,
}

/// The mutable analysis state threaded through the walk and exposed to
/// hooks.
#[derive(Debug)]
pub struct State {
    /// All abstract locations.
    pub locs: LocTable,
    /// Per-expression value type, indexed by [`NodeId`].
    pub expr_ty: Vec<Option<Ty>>,
    /// Per-expression lvalue location (for expressions that denote
    /// storage), indexed by [`NodeId`].
    pub expr_lval: Vec<Option<Loc>>,
    /// Resolved variable for each `Var` expression, indexed by [`NodeId`].
    pub var_of_expr: Vec<Option<VarId>>,
    /// All variable bindings.
    pub vars: Vec<VarInfo>,
    /// Field-based field locations: `(struct name, field name) → loc`.
    pub fields: FxMap<(String, String), Loc>,
    /// Function signatures by name.
    pub funs: FxMap<String, FunSig>,
    /// Per defined function, the *bound* parameter value types in
    /// declaration order — i.e. the types the parameter variables carry
    /// after any binding hooks ran (a restrict parameter's pointee is
    /// its fresh ρ′, not the signature's ρ). For duplicate definitions
    /// the first body wins, matching the variable table's scan order.
    pub param_tys: FxMap<String, Vec<Ty>>,
    /// Type mismatches found (standard typing errors; the analyses treat
    /// the involved locations as tainted rather than aborting).
    pub mismatches: Vec<TypeMismatch>,
    /// Scope stack of name → var bindings.
    env: Vec<FxMap<String, VarId>>,
    /// Names of variables whose address is taken somewhere in the module.
    addr_taken: FxSet<String>,
    /// Current function name during body walks.
    current_fun: Option<String>,
}

impl State {
    fn new(m: &Module) -> Self {
        State {
            locs: LocTable::new(),
            expr_ty: vec![None; m.node_count as usize],
            expr_lval: vec![None; m.node_count as usize],
            var_of_expr: vec![None; m.node_count as usize],
            vars: Vec::new(),
            fields: FxMap::default(),
            funs: FxMap::default(),
            param_tys: FxMap::default(),
            mismatches: Vec::new(),
            env: Vec::new(),
            addr_taken: FxSet::default(),
            current_fun: None,
        }
    }

    /// Lowers a syntactic type to an analysis type, creating fresh
    /// locations for pointer/array structure.
    pub fn lower(&mut self, ty: &TypeExpr, hint: &str) -> Ty {
        match ty {
            TypeExpr::Int => Ty::Int,
            TypeExpr::Lock => Ty::Lock,
            TypeExpr::Void => Ty::Void,
            TypeExpr::Struct(s) => Ty::Struct(s.to_string()),
            TypeExpr::Ptr(inner) => {
                let content = self.lower(inner, hint);
                let l = self.locs.fresh(format!("*{hint}"), content);
                Ty::Ref(l)
            }
            TypeExpr::Array(elem, _) => {
                // Arrays collapse: the declared object's value is a
                // pointer to the single element location, which stands for
                // many concrete objects.
                let content = self.lower(elem, hint);
                let l = self.locs.fresh_with(
                    format!("{hint}[]"),
                    content,
                    crate::loc::Multiplicity::Many,
                );
                Ty::Ref(l)
            }
        }
    }

    /// The field location for `(struct_name, field)`, creating it (with
    /// content lowered from `ty`) on first use.
    pub fn field_loc(&mut self, struct_name: &str, field: &str, ty: Option<&TypeExpr>) -> Loc {
        if let Some(&l) = self
            .fields
            .get(&(struct_name.to_string(), field.to_string()))
        {
            return l;
        }
        let hint = format!("{struct_name}.{field}");
        let content = match ty {
            Some(t) => self.lower(t, &hint),
            None => Ty::Unknown,
        };
        // Field-based field classes stand for one field per instance —
        // possibly many objects.
        let l = self
            .locs
            .fresh_with(hint, content, crate::loc::Multiplicity::Many);
        self.fields
            .insert((struct_name.to_string(), field.to_string()), l);
        l
    }

    fn push_scope(&mut self) {
        self.env.push(FxMap::default());
    }

    fn pop_scope(&mut self) {
        self.env.pop();
    }

    fn bind(&mut self, name: &str, info: VarInfo) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(info);
        self.env
            .last_mut()
            .expect("bind outside any scope")
            .insert(name.to_string(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        for frame in self.env.iter().rev() {
            if let Some(&id) = frame.get(name) {
                return Some(id);
            }
        }
        None
    }

    /// Records and returns the value type of expression `e`.
    fn set_ty(&mut self, e: &Expr, ty: Ty) -> Ty {
        self.expr_ty[e.id.index()] = Some(ty.clone());
        ty
    }

    /// Unifies, collecting mismatches into the state.
    pub fn unify(&mut self, a: &Ty, b: &Ty) -> Ty {
        unify(&mut self.locs, a, b, &mut self.mismatches)
    }

    /// The function whose body is currently being walked (available to
    /// hooks).
    pub fn current_fun(&self) -> Option<&str> {
        self.current_fun.as_deref()
    }
}

/// Callbacks invoked by the typing walk. All methods have no-op defaults;
/// see the module docs for who overrides what.
#[allow(unused_variables)]
pub trait Hooks {
    /// A location is read at expression/statement `at`.
    fn on_read(&mut self, st: &mut State, loc: Loc, at: NodeId) {}
    /// A location is written at `at`.
    fn on_write(&mut self, st: &mut State, loc: Loc, at: NodeId) {}
    /// A location is allocated (`new`) at `at`.
    fn on_alloc(&mut self, st: &mut State, loc: Loc, at: NodeId) {}
    /// A call to a *defined* (non-extern, non-intrinsic) function.
    fn on_call(&mut self, st: &mut State, callee: &str, at: NodeId) {}
    /// A scope was entered.
    fn enter_scope(&mut self, st: &mut State, kind: ScopeKind) {}
    /// A scope was exited.
    fn exit_scope(&mut self, st: &mut State, kind: ScopeKind) {}
    /// A variable is about to be bound with initializer type `init_ty`;
    /// the returned type becomes the variable's value type. The default
    /// returns `init_ty` unchanged; `localias-core` overrides this to give
    /// `restrict` binders (and inference candidates) a fresh `ρ'`.
    fn bind_ty(&mut self, st: &mut State, site: BindSite, init_ty: Ty, at: NodeId) -> Ty {
        init_ty
    }
    /// A variable was bound.
    fn on_bind(&mut self, st: &mut State, var: VarId, site: BindSite, at: NodeId) {}
    /// The expression of a `confine (e) { ... }` statement, evaluated once
    /// before its body. Hooks for confine checking live in
    /// `localias-core`.
    fn on_confine_expr(&mut self, st: &mut State, expr: &Expr, body: &Block, at: NodeId) {}
    /// Called just before the expression of a `confine` statement is
    /// evaluated (so a hook can capture its effect `L1`).
    fn on_confine_start(&mut self, st: &mut State, at: NodeId) {}
    /// Called before the `index`-th statement of block `block` is walked,
    /// and once more with `index == total` after the last statement. This
    /// lets `localias-core` scope `confine?` candidates to statement
    /// sub-ranges of a block (the §7 heuristic).
    fn on_stmt_index(&mut self, st: &mut State, block: NodeId, index: usize, total: usize) {}
    /// Offered every expression before normal evaluation; returning
    /// `Some(ty)` short-circuits the walk with that type (used to replace
    /// occurrences of a confined expression by its binder, §6).
    fn intercept_expr(&mut self, st: &mut State, e: &Expr) -> Option<Ty> {
        None
    }
    /// Offered every normally-evaluated expression after evaluation; the
    /// returned type replaces `ty` (used to re-type the defining
    /// occurrence of a confined expression).
    fn after_expr(&mut self, st: &mut State, e: &Expr, ty: Ty) -> Ty {
        ty
    }
}

/// The no-op hook set: plain Steensgaard analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {}

/// The result of the standalone may-alias analysis.
#[derive(Debug)]
pub struct ModuleAliases {
    /// The analysis state (location table, per-expression types, ...).
    pub state: State,
}

impl ModuleAliases {
    /// Returns `true` if the storage denoted by lvalue expressions `a` and
    /// `b` may alias (same abstract location class).
    ///
    /// Returns `false` when either expression does not denote storage.
    pub fn may_alias(&mut self, a: NodeId, b: NodeId) -> bool {
        match (
            self.state.expr_lval[a.index()],
            self.state.expr_lval[b.index()],
        ) {
            (Some(la), Some(lb)) => self.state.locs.same(la, lb),
            _ => false,
        }
    }

    /// The abstract location an lvalue expression denotes, if any.
    pub fn lval_loc(&mut self, e: NodeId) -> Option<Loc> {
        self.state.expr_lval[e.index()].map(|l| self.state.locs.find(l))
    }

    /// The pointee location of a pointer-valued expression, if any.
    pub fn pointee(&mut self, e: NodeId) -> Option<Loc> {
        match self.state.expr_ty[e.index()] {
            Some(Ty::Ref(l)) => Some(self.state.locs.find(l)),
            _ => None,
        }
    }
}

/// Runs the plain (hook-free) may-alias analysis over a module.
///
/// # Example
///
/// ```
/// use localias_ast::parse_module;
/// use localias_alias::steensgaard::analyze;
///
/// let m = parse_module("m", "void f(int *p) { int *q = p; *q = 1; }")?;
/// let aliases = analyze(&m);
/// assert!(aliases.state.mismatches.is_empty());
/// # Ok::<(), localias_ast::ParseError>(())
/// ```
pub fn analyze(m: &Module) -> ModuleAliases {
    let (state, _) = analyze_with(m, NoHooks);
    ModuleAliases { state }
}

/// Runs the typing walk with caller-supplied hooks, returning the final
/// state and the hooks back.
pub fn analyze_with<H: Hooks>(m: &Module, hooks: H) -> (State, H) {
    let mut w = Walker {
        st: State::new(m),
        hooks,
    };
    w.module(m);
    (w.st, w.hooks)
}

struct Walker<H: Hooks> {
    st: State,
    hooks: H,
}

impl<H: Hooks> Walker<H> {
    fn module(&mut self, m: &Module) {
        // Pass 0: which names have their address taken anywhere?
        self.collect_addr_taken(m);

        // Pass 1: struct field locations (so field types exist even if a
        // field is used before its struct's textual definition).
        for s in m.structs() {
            for (fname, fty) in &s.fields {
                self.st.field_loc(&s.name.name, &fname.name, Some(fty));
            }
        }

        // Pass 2: globals.
        self.st.push_scope();
        for item in &m.items {
            if let ItemKind::Global(g) = &item.kind {
                let ty = self.st.lower(&g.ty, &g.name.name);
                // Globals always have addressable storage (one object).
                let l = self.st.locs.fresh_with(
                    g.name.name.clone(),
                    ty.clone(),
                    crate::loc::Multiplicity::One,
                );
                let var = self.st.bind(
                    &g.name.name,
                    VarInfo {
                        name: g.name.name.to_string(),
                        kind: VarKind::Addressed(l),
                        ty,
                        fun: None,
                    },
                );
                self.hooks
                    .on_bind(&mut self.st, var, BindSite::Global, g.id);
            }
        }

        // Pass 3: function signatures (defined + extern), so calls in any
        // order unify against shared parameter types.
        for item in &m.items {
            match &item.kind {
                ItemKind::Fun(f) => self.declare_fun(&f.name.name, &f.params, &f.ret, false),
                ItemKind::Extern(e) => self.declare_fun(&e.name.name, &e.params, &e.ret, true),
                _ => {}
            }
        }

        // Pass 4: function bodies.
        for item in &m.items {
            if let ItemKind::Fun(f) = &item.kind {
                self.fun(f);
            }
        }
        self.st.pop_scope();
    }

    fn collect_addr_taken(&mut self, m: &Module) {
        struct Collect<'a>(&'a mut FxSet<String>);
        impl localias_ast::visit::Visitor for Collect<'_> {
            fn visit_expr(&mut self, e: &Expr) {
                if let ExprKind::Unary(UnOp::AddrOf, inner) = &e.kind {
                    if let ExprKind::Var(x) = &inner.kind {
                        self.0.insert(x.name.to_string());
                    }
                }
                localias_ast::visit::walk_expr(self, e);
            }
        }
        let mut c = Collect(&mut self.st.addr_taken);
        localias_ast::visit::walk_module(&mut c, m);
    }

    fn declare_fun(&mut self, name: &str, params: &[Param], ret: &TypeExpr, is_extern: bool) {
        if self.st.funs.contains_key(name) {
            return;
        }
        let params = params
            .iter()
            .map(|p| {
                let hint = format!("{name}.{}", p.name.name);
                self.st.lower(&p.ty, &hint)
            })
            .collect();
        let ret = self.st.lower(ret, &format!("{name}.ret"));
        self.st.funs.insert(
            name.to_string(),
            FunSig {
                params,
                ret,
                is_extern,
            },
        );
    }

    fn fun(&mut self, f: &FunDef) {
        self.st.current_fun = Some(f.name.name.to_string());
        self.hooks.enter_scope(&mut self.st, ScopeKind::Fun(f.id));
        self.st.push_scope();

        let sig = self.st.funs[f.name.name.as_str()].clone();
        let mut bound_tys = Vec::with_capacity(f.params.len());
        for (p, sig_ty) in f.params.iter().zip(&sig.params) {
            let site = BindSite::Param {
                restrict: p.restrict,
            };
            let value_ty = self.hooks.bind_ty(&mut self.st, site, sig_ty.clone(), f.id);
            bound_tys.push(value_ty.clone());
            let kind = self.var_kind(&p.name.name, &value_ty);
            let fun = self.st.current_fun.clone();
            let var = self.st.bind(
                &p.name.name,
                VarInfo {
                    name: p.name.name.to_string(),
                    kind,
                    ty: value_ty,
                    fun,
                },
            );
            self.hooks.on_bind(&mut self.st, var, site, f.id);
        }
        self.st
            .param_tys
            .entry(f.name.name.to_string())
            .or_insert(bound_tys);

        self.block_inner(&f.body);

        self.st.pop_scope();
        self.hooks.exit_scope(&mut self.st, ScopeKind::Fun(f.id));
        self.st.current_fun = None;
    }

    /// Picks a storage classification for a new variable; address-taken
    /// variables get a fresh location whose content is the value type.
    fn var_kind(&mut self, name: &str, value_ty: &Ty) -> VarKind {
        if self.st.addr_taken.contains(name) {
            let l = self.st.locs.fresh_with(
                name.to_string(),
                value_ty.clone(),
                crate::loc::Multiplicity::One,
            );
            VarKind::Addressed(l)
        } else {
            VarKind::Register
        }
    }

    fn scoped_block(&mut self, b: &Block, kind: ScopeKind) {
        self.hooks.enter_scope(&mut self.st, kind);
        self.st.push_scope();
        self.block_inner(b);
        self.st.pop_scope();
        self.hooks.exit_scope(&mut self.st, kind);
    }

    fn block_inner(&mut self, b: &Block) {
        let total = b.stmts.len();
        for (i, s) in b.stmts.iter().enumerate() {
            self.hooks.on_stmt_index(&mut self.st, b.id, i, total);
            self.stmt(s);
        }
        self.hooks.on_stmt_index(&mut self.st, b.id, total, total);
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                self.rval(e);
            }
            StmtKind::Decl {
                binding,
                ty,
                name,
                init,
            } => {
                let declared = self.st.lower(ty, &name.name);
                let init_ty = match init {
                    Some(e) => {
                        let t = self.rval(e);
                        self.st.unify(&declared, &t)
                    }
                    None => declared,
                };
                let site = BindSite::Decl {
                    binding: *binding,
                    has_init: init.is_some(),
                };
                let value_ty = self.hooks.bind_ty(&mut self.st, site, init_ty, s.id);
                let kind = self.var_kind(&name.name, &value_ty);
                let fun = self.st.current_fun.clone();
                let var = self.st.bind(
                    &name.name,
                    VarInfo {
                        name: name.name.to_string(),
                        kind,
                        ty: value_ty,
                        fun,
                    },
                );
                self.hooks.on_bind(&mut self.st, var, site, s.id);
            }
            StmtKind::Restrict { name, init, body } => {
                let init_ty = self.rval(init);
                let site = BindSite::RestrictStmt;
                let value_ty = self.hooks.bind_ty(&mut self.st, site, init_ty, s.id);
                self.hooks
                    .enter_scope(&mut self.st, ScopeKind::RestrictBody(s.id));
                self.st.push_scope();
                let kind = self.var_kind(&name.name, &value_ty);
                let fun = self.st.current_fun.clone();
                let var = self.st.bind(
                    &name.name,
                    VarInfo {
                        name: name.name.to_string(),
                        kind,
                        ty: value_ty,
                        fun,
                    },
                );
                self.hooks.on_bind(&mut self.st, var, site, s.id);
                self.block_inner(body);
                self.st.pop_scope();
                self.hooks
                    .exit_scope(&mut self.st, ScopeKind::RestrictBody(s.id));
            }
            StmtKind::Confine { expr, body } => {
                self.hooks.on_confine_start(&mut self.st, s.id);
                self.rval(expr);
                self.hooks.on_confine_expr(&mut self.st, expr, body, s.id);
                self.scoped_block(body, ScopeKind::ConfineBody(s.id));
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let t = self.rval(cond);
                self.expect_scalar(&t);
                self.scoped_block(then_blk, ScopeKind::Block(then_blk.id));
                if let Some(e) = else_blk {
                    self.scoped_block(e, ScopeKind::Block(e.id));
                }
            }
            StmtKind::While { cond, body, step } => {
                let t = self.rval(cond);
                self.expect_scalar(&t);
                self.scoped_block(body, ScopeKind::Block(body.id));
                if let Some(step) = step {
                    self.rval(step);
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let t = self.rval(e);
                    if let Some(f) = self.st.current_fun.clone() {
                        let ret = self.st.funs[&f].ret.clone();
                        self.st.unify(&ret, &t);
                    }
                }
            }
            // Control transfers have no typing or effect content.
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.scoped_block(b, ScopeKind::Block(b.id)),
        }
    }

    /// Conditions may be ints or pointers (null tests); anything else is a
    /// mismatch.
    fn expect_scalar(&mut self, t: &Ty) {
        match t {
            Ty::Int | Ty::Ref(_) | Ty::Unknown => {}
            other => {
                let other = other.to_string();
                self.st.mismatches.push(TypeMismatch {
                    left: other,
                    right: "scalar".to_string(),
                });
            }
        }
    }

    /// Computes the lvalue location of `e`, or `None` if `e` does not
    /// denote storage (e.g. a register variable or a literal).
    fn lval(&mut self, e: &Expr) -> Option<Loc> {
        let loc = match &e.kind {
            ExprKind::Var(x) => {
                let var = self.resolve(x, e.id)?;
                match self.st.vars[var.index()].kind {
                    VarKind::Addressed(l) => Some(l),
                    VarKind::Register => None,
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let t = self.rval(inner);
                self.deref_loc(&t)
            }
            ExprKind::Index(arr, idx) => {
                let it = self.rval(idx);
                self.st.unify(&it, &Ty::Int);
                let at = self.rval(arr);
                self.deref_loc(&at)
            }
            ExprKind::Field(base, fname) => {
                // Field-based: we need the struct name from the base's
                // type; the base's own storage is irrelevant.
                let bt = self.base_struct_ty(base, false);
                self.struct_field(bt, fname)
            }
            ExprKind::Arrow(base, fname) => {
                let bt = self.base_struct_ty(base, true);
                self.struct_field(bt, fname)
            }
            _ => None,
        };
        if let Some(l) = loc {
            self.st.expr_lval[e.id.index()] = Some(l);
        }
        loc
    }

    /// Type of the struct a field access goes through. `through_ptr` for
    /// `e->f`.
    fn base_struct_ty(&mut self, base: &Expr, through_ptr: bool) -> Option<String> {
        let t = if through_ptr {
            let pt = self.rval(base);
            match self.deref_loc(&pt) {
                Some(l) => {
                    // Reading through the pointer to reach the struct.
                    self.hooks.on_read(&mut self.st, l, base.id);
                    self.st.locs.content(l)
                }
                None => Ty::Unknown,
            }
        } else {
            // `e.f`: evaluate `e` only for its type; a struct-typed
            // lvalue's storage is not read by taking a field.
            match self.lval(base) {
                Some(l) => self.st.locs.content(l),
                None => self.rval(base),
            }
        };
        match t {
            Ty::Struct(s) => Some(s),
            _ => {
                self.st.mismatches.push(TypeMismatch {
                    left: t.to_string(),
                    right: "a struct".to_string(),
                });
                None
            }
        }
    }

    fn struct_field(&mut self, struct_name: Option<String>, fname: &Ident) -> Option<Loc> {
        let s = struct_name?;
        Some(self.st.field_loc(&s, &fname.name, None))
    }

    /// Pointee location of a pointer type, creating a tainted placeholder
    /// for `Unknown` and recording a mismatch otherwise.
    fn deref_loc(&mut self, t: &Ty) -> Option<Loc> {
        match t {
            Ty::Ref(l) => Some(self.st.locs.find(*l)),
            Ty::Unknown => {
                let l = self.st.locs.fresh("<unknown>", Ty::Unknown);
                self.st.locs.taint(l);
                Some(l)
            }
            other => {
                self.st.mismatches.push(TypeMismatch {
                    left: other.to_string(),
                    right: "a pointer".to_string(),
                });
                None
            }
        }
    }

    fn resolve(&mut self, x: &Ident, at: NodeId) -> Option<VarId> {
        match self.st.lookup(&x.name) {
            Some(v) => {
                self.st.var_of_expr[at.index()] = Some(v);
                Some(v)
            }
            None => {
                self.st.mismatches.push(TypeMismatch {
                    left: format!("unbound variable `{}`", x.name),
                    right: "a binding".to_string(),
                });
                None
            }
        }
    }

    /// Evaluates `e` for its value, recording its type and emitting
    /// read/write/alloc hook events.
    fn rval(&mut self, e: &Expr) -> Ty {
        if let Some(ty) = self.hooks.intercept_expr(&mut self.st, e) {
            return self.st.set_ty(e, ty);
        }
        let ty = match &e.kind {
            ExprKind::Int(_) => Ty::Int,
            ExprKind::Var(x) => match self.resolve(x, e.id) {
                Some(v) => {
                    let info = self.st.vars[v.index()].clone();
                    match info.kind {
                        VarKind::Register => info.ty,
                        VarKind::Addressed(l) => {
                            self.st.expr_lval[e.id.index()] = Some(l);
                            self.hooks.on_read(&mut self.st, l, e.id);
                            self.st.locs.content(l)
                        }
                    }
                }
                None => Ty::Unknown,
            },
            ExprKind::Unary(UnOp::Deref, inner) => {
                let t = self.rval(inner);
                match self.deref_loc(&t) {
                    Some(l) => {
                        self.st.expr_lval[e.id.index()] = Some(l);
                        self.hooks.on_read(&mut self.st, l, e.id);
                        self.st.locs.content(l)
                    }
                    None => Ty::Unknown,
                }
            }
            ExprKind::Unary(UnOp::AddrOf, inner) => match self.lval(inner) {
                Some(l) => Ty::Ref(l),
                None => {
                    self.st.mismatches.push(TypeMismatch {
                        left: "&<non-lvalue>".to_string(),
                        right: "an lvalue".to_string(),
                    });
                    Ty::Unknown
                }
            },
            ExprKind::Unary(UnOp::Neg | UnOp::Not, inner) => {
                let t = self.rval(inner);
                self.st.unify(&t, &Ty::Int);
                Ty::Int
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.rval(a);
                let tb = self.rval(b);
                match op {
                    BinOp::Eq | BinOp::Ne => {
                        // Pointer comparisons are allowed and do *not*
                        // unify their operands (comparing is not aliasing).
                        match (&ta, &tb) {
                            (Ty::Ref(_), Ty::Ref(_)) => {}
                            _ => {
                                self.st.unify(&ta, &Ty::Int);
                                self.st.unify(&tb, &Ty::Int);
                            }
                        }
                    }
                    _ => {
                        self.st.unify(&ta, &Ty::Int);
                        self.st.unify(&tb, &Ty::Int);
                    }
                }
                Ty::Int
            }
            ExprKind::Assign(lhs, rhs) => {
                let rt = self.rval(rhs);
                match &lhs.kind {
                    // Assignment to a register variable updates its value
                    // type but is not a location effect.
                    ExprKind::Var(x) => match self.resolve(x, lhs.id) {
                        Some(v) => {
                            let info = self.st.vars[v.index()].clone();
                            match info.kind {
                                VarKind::Register => {
                                    let merged = self.st.unify(&info.ty, &rt);
                                    self.st.vars[v.index()].ty = merged.clone();
                                    merged
                                }
                                VarKind::Addressed(l) => {
                                    self.st.expr_lval[lhs.id.index()] = Some(l);
                                    let content = self.st.locs.content(l);
                                    let merged = self.st.unify(&content, &rt);
                                    self.st.locs.set_content(l, merged.clone());
                                    self.hooks.on_write(&mut self.st, l, e.id);
                                    merged
                                }
                            }
                        }
                        None => Ty::Unknown,
                    },
                    _ => match self.lval(lhs) {
                        Some(l) => {
                            let content = self.st.locs.content(l);
                            let merged = self.st.unify(&content, &rt);
                            self.st.locs.set_content(l, merged.clone());
                            self.hooks.on_write(&mut self.st, l, e.id);
                            merged
                        }
                        None => {
                            self.st.mismatches.push(TypeMismatch {
                                left: "assignment target".to_string(),
                                right: "an lvalue".to_string(),
                            });
                            rt
                        }
                    },
                }
            }
            ExprKind::Call(f, args) => self.call(f, args, e.id),
            ExprKind::Index(arr, idx) => {
                let it = self.rval(idx);
                self.st.unify(&it, &Ty::Int);
                let at = self.rval(arr);
                match self.deref_loc(&at) {
                    Some(l) => {
                        self.st.expr_lval[e.id.index()] = Some(l);
                        self.hooks.on_read(&mut self.st, l, e.id);
                        self.st.locs.content(l)
                    }
                    None => Ty::Unknown,
                }
            }
            ExprKind::Field(base, fname) => {
                let bt = self.base_struct_ty(base, false);
                match self.struct_field(bt, fname) {
                    Some(l) => {
                        self.st.expr_lval[e.id.index()] = Some(l);
                        self.hooks.on_read(&mut self.st, l, e.id);
                        self.st.locs.content(l)
                    }
                    None => Ty::Unknown,
                }
            }
            ExprKind::Arrow(base, fname) => {
                let bt = self.base_struct_ty(base, true);
                match self.struct_field(bt, fname) {
                    Some(l) => {
                        self.st.expr_lval[e.id.index()] = Some(l);
                        self.hooks.on_read(&mut self.st, l, e.id);
                        self.st.locs.content(l)
                    }
                    None => Ty::Unknown,
                }
            }
            ExprKind::New(init) => {
                let t = self.rval(init);
                // An allocation site may execute many times.
                let l = self.st.locs.fresh_with(
                    format!("new{}", e.id),
                    t,
                    crate::loc::Multiplicity::Many,
                );
                self.hooks.on_alloc(&mut self.st, l, e.id);
                Ty::Ref(l)
            }
            ExprKind::Cast(ty, inner) => {
                let src = self.rval(inner);
                let dst = self.st.lower(ty, "cast");
                // Compatible casts unify cleanly; incompatible ones record
                // a mismatch and taint — losing the ability to restrict or
                // confine anything laundered through the cast.
                self.st.unify(&src, &dst)
            }
        };
        let ty = self.hooks.after_expr(&mut self.st, e, ty);
        self.st.set_ty(e, ty)
    }

    fn call(&mut self, f: &Ident, args: &[Expr], at: NodeId) -> Ty {
        let arg_tys: Vec<Ty> = args.iter().map(|a| self.rval(a)).collect();
        if localias_ast::intrinsics::is_change_type(&f.name) {
            // change_type(e): writes the lock state at e's pointee.
            for t in &arg_tys {
                if let Ty::Ref(l) = t {
                    let l = self.st.locs.find(*l);
                    let content = self.st.locs.content(l);
                    self.st.unify(&content, &Ty::Lock);
                    let merged = self.st.locs.content(l);
                    self.st.locs.set_content(l, merged);
                    self.hooks.on_write(&mut self.st, l, at);
                } else {
                    self.st.mismatches.push(TypeMismatch {
                        left: t.to_string(),
                        right: "lock*".to_string(),
                    });
                }
            }
            return Ty::Void;
        }
        let sig = match self.st.funs.get(f.name.as_str()) {
            Some(sig) => sig.clone(),
            None => {
                // Implicit extern: parameters adopt the argument types;
                // the return type is unknown.
                let sig = FunSig {
                    params: arg_tys.clone(),
                    ret: Ty::Unknown,
                    is_extern: true,
                };
                self.st.funs.insert(f.name.to_string(), sig.clone());
                sig
            }
        };
        if sig.params.len() != arg_tys.len() {
            self.st.mismatches.push(TypeMismatch {
                left: format!("{} arguments to `{}`", arg_tys.len(), f.name),
                right: format!("{}", sig.params.len()),
            });
        }
        for (a, p) in arg_tys.iter().zip(&sig.params) {
            self.st.unify(a, p);
        }
        if !sig.is_extern {
            self.hooks.on_call(&mut self.st, &f.name, at);
        }
        sig.ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;
    use localias_ast::visit::{walk_module, Visitor};

    /// Finds the first expression satisfying `pred` in source order.
    fn find_expr(m: &Module, pred: impl Fn(&Expr) -> bool) -> NodeId {
        struct Find<F> {
            pred: F,
            found: Option<NodeId>,
        }
        impl<F: Fn(&Expr) -> bool> Visitor for Find<F> {
            fn visit_expr(&mut self, e: &Expr) {
                if self.found.is_none() && (self.pred)(e) {
                    self.found = Some(e.id);
                }
                localias_ast::visit::walk_expr(self, e);
            }
        }
        let mut f = Find { pred, found: None };
        walk_module(&mut f, m);
        f.found.expect("expression not found")
    }

    fn deref_of(m: &Module, name: &str) -> NodeId {
        find_expr(m, |e| match &e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => {
                matches!(&inner.kind, ExprKind::Var(x) if x.name == name)
            }
            _ => false,
        })
    }

    #[test]
    fn copies_alias() {
        let m = parse_module("m", "void f(int *p) { int *q = p; *p = 1; *q = 2; }").unwrap();
        let mut a = analyze(&m);
        let dp = deref_of(&m, "p");
        let dq = deref_of(&m, "q");
        assert!(a.may_alias(dp, dq));
        assert!(a.state.mismatches.is_empty());
    }

    #[test]
    fn distinct_allocations_do_not_alias() {
        let m = parse_module(
            "m",
            "void f() { int *p = new 0; int *q = new 0; *p = 1; *q = 2; }",
        )
        .unwrap();
        let mut a = analyze(&m);
        let dp = deref_of(&m, "p");
        let dq = deref_of(&m, "q");
        assert!(!a.may_alias(dp, dq));
    }

    #[test]
    fn assignment_unifies() {
        let m = parse_module(
            "m",
            "void f() { int *p = new 0; int *q = new 1; q = p; *p = 1; *q = 2; }",
        )
        .unwrap();
        let mut a = analyze(&m);
        let dp = deref_of(&m, "p");
        let dq = deref_of(&m, "q");
        assert!(a.may_alias(dp, dq), "q = p must unify pointees");
    }

    #[test]
    fn array_elements_collapse() {
        let m = parse_module(
            "m",
            "lock locks[8]; void f(int i, int j) { spin_lock(&locks[i]); spin_lock(&locks[j]); }",
        )
        .unwrap();
        let mut a = analyze(&m);
        struct Idx(Vec<NodeId>);
        impl Visitor for Idx {
            fn visit_expr(&mut self, e: &Expr) {
                if matches!(e.kind, ExprKind::Index(_, _)) {
                    self.0.push(e.id);
                }
                localias_ast::visit::walk_expr(self, e);
            }
        }
        let mut v = Idx(Vec::new());
        walk_module(&mut v, &m);
        assert_eq!(v.0.len(), 2);
        assert!(
            a.may_alias(v.0[0], v.0[1]),
            "all elements of a lock array share one location"
        );
    }

    #[test]
    fn calls_unify_args_with_params() {
        let m = parse_module(
            "m",
            r#"
            int g;
            void callee(int *x) { *x = 1; }
            void caller() { int *p = &g; callee(p); *p = 2; }
            "#,
        )
        .unwrap();
        let mut a = analyze(&m);
        let dx = deref_of(&m, "x");
        let dp = deref_of(&m, "p");
        assert!(a.may_alias(dx, dp));
    }

    #[test]
    fn struct_fields_are_field_based() {
        let m = parse_module(
            "m",
            r#"
            struct dev { lock mu; int n; };
            struct dev a;
            struct dev b;
            void f() { a.n = 1; b.n = 2; a.mu; }
            "#,
        )
        .unwrap();
        let mut an = analyze(&m);
        struct Fields(Vec<(String, NodeId)>);
        impl Visitor for Fields {
            fn visit_expr(&mut self, e: &Expr) {
                if let ExprKind::Field(_, f) = &e.kind {
                    self.0.push((f.name.to_string(), e.id));
                }
                localias_ast::visit::walk_expr(self, e);
            }
        }
        let mut v = Fields(Vec::new());
        walk_module(&mut v, &m);
        let ns: Vec<NodeId> =
            v.0.iter()
                .filter(|(n, _)| n == "n")
                .map(|&(_, id)| id)
                .collect();
        let mu: Vec<NodeId> =
            v.0.iter()
                .filter(|(n, _)| n == "mu")
                .map(|&(_, id)| id)
                .collect();
        assert!(an.may_alias(ns[0], ns[1]), "field-based: a.n aliases b.n");
        assert!(!an.may_alias(ns[0], mu[0]), "different fields do not alias");
    }

    #[test]
    fn registers_have_no_storage() {
        let m = parse_module("m", "void f(int x) { x = 3; }").unwrap();
        let mut a = analyze(&m);
        let lhs = find_expr(&m, |e| matches!(&e.kind, ExprKind::Var(v) if v.name == "x"));
        assert_eq!(a.lval_loc(lhs), None);
    }

    #[test]
    fn address_taken_locals_get_storage() {
        let m = parse_module("m", "void f() { int x = 0; int *p = &x; *p = 1; x = 2; }").unwrap();
        let mut a = analyze(&m);
        let dp = deref_of(&m, "p");
        // *p and x share storage.
        let x_use = find_expr(
            &m,
            |e| matches!(&e.kind, ExprKind::Var(v) if v.name == "x" && e.span != localias_ast::Span::DUMMY),
        );
        let _ = x_use;
        let lx = a.state.vars.iter().position(|v| v.name == "x").unwrap();
        match a.state.vars[lx].kind {
            VarKind::Addressed(l) => {
                let dl = a.lval_loc(dp).unwrap();
                let l = a.state.locs.find(l);
                assert_eq!(dl, l);
            }
            VarKind::Register => panic!("x must be addressed"),
        }
    }

    #[test]
    fn incompatible_cast_taints() {
        let m = parse_module("m", "void f(lock *l) { int x = (int) l; spin_lock(l); }").unwrap();
        let mut a = analyze(&m);
        assert!(!a.state.mismatches.is_empty());
        let dl = find_expr(&m, |e| matches!(&e.kind, ExprKind::Var(v) if v.name == "l"));
        if let Some(Ty::Ref(loc)) = a.state.expr_ty[dl.index()].clone() {
            assert!(a.state.locs.is_tainted(loc));
        } else {
            panic!("l should be a pointer");
        }
    }

    #[test]
    fn compatible_pointer_cast_keeps_tracking() {
        let m = parse_module("m", "void f(int *p) { int *q = (int*) p; *q = 1; *p = 2; }").unwrap();
        let mut a = analyze(&m);
        let dp = deref_of(&m, "p");
        let dq = deref_of(&m, "q");
        assert!(a.may_alias(dp, dq));
        assert!(a.state.mismatches.is_empty());
    }

    #[test]
    fn unbound_variable_reports_mismatch() {
        let m = parse_module("m", "void f() { zz = 1; }").unwrap();
        let a = analyze(&m);
        assert!(a
            .state
            .mismatches
            .iter()
            .any(|e| e.left.contains("unbound")));
    }

    #[test]
    fn restrict_stmt_in_plain_analysis_degrades_to_let() {
        // Without core's hooks, restrict behaves like let: aliases merge.
        let m = parse_module("m", "void f(int *q) { restrict p = q { *p = 1; } *q = 2; }").unwrap();
        let mut a = analyze(&m);
        let dp = deref_of(&m, "p");
        let dq = deref_of(&m, "q");
        assert!(a.may_alias(dp, dq));
    }

    #[test]
    fn arrow_field_access() {
        let m = parse_module(
            "m",
            r#"
            struct dev { lock mu; };
            void f(struct dev *d, struct dev *e) { spin_lock(&d->mu); spin_lock(&e->mu); }
            "#,
        )
        .unwrap();
        let mut a = analyze(&m);
        struct Mu(Vec<NodeId>);
        impl Visitor for Mu {
            fn visit_expr(&mut self, e: &Expr) {
                if matches!(&e.kind, ExprKind::Arrow(_, f) if f.name == "mu") {
                    self.0.push(e.id);
                }
                localias_ast::visit::walk_expr(self, e);
            }
        }
        let mut v = Mu(Vec::new());
        walk_module(&mut v, &m);
        assert!(a.may_alias(v.0[0], v.0[1]), "field-based ->mu conflates");
    }

    #[test]
    fn return_unifies_with_signature() {
        let m = parse_module(
            "m",
            r#"
            int g;
            int *get() { return &g; }
            void f() { int *p = get(); *p = 1; }
            "#,
        )
        .unwrap();
        let mut a = analyze(&m);
        let dp = deref_of(&m, "p");
        let g_loc = {
            let v = a.state.vars.iter().position(|v| v.name == "g").unwrap();
            match a.state.vars[v].kind {
                VarKind::Addressed(l) => a.state.locs.find(l),
                _ => panic!("global must be addressed"),
            }
        };
        assert_eq!(a.lval_loc(dp), Some(g_loc));
    }
}
