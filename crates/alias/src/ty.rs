//! Analysis types `τ ::= int | ref ρ(τ) | ...` and unification.
//!
//! These are the paper's types with the pointee type stored *in the
//! location table* rather than inline: a pointer type is `Ref(ρ)` and the
//! pointee type is `LocTable::content(ρ)`. This makes unification of
//! recursive structures terminate naturally (union the locations first,
//! then unify contents only if the classes were actually distinct) and
//! gives us the paper's memoized `locs(τ)` for free — `locs(Ref(ρ))` is
//! `{ρ} ∪ locs(content(ρ))`, a reachability query over location classes.

use crate::loc::{Loc, LocTable};
use std::collections::HashSet;
use std::fmt;

/// An analysis type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// The integer type.
    Int,
    /// A lock value (the state the flow-sensitive checker tracks lives at
    /// the *location holding* the lock, not in the type).
    Lock,
    /// The unit/void type (function returns only).
    Void,
    /// A struct value; field locations are tracked field-based via the
    /// `(struct, field) → location` table in
    /// [`crate::steensgaard::State`].
    Struct(String),
    /// A pointer to abstract location `ρ`.
    Ref(Loc),
    /// A value whose type the analysis lost track of (e.g. through an
    /// incompatible cast). Unifies with anything and taints involved
    /// locations.
    Unknown,
}

impl Ty {
    /// Returns the pointee location if this is a pointer type.
    pub fn pointee(&self) -> Option<Loc> {
        match self {
            Ty::Ref(l) => Some(*l),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Lock => write!(f, "lock"),
            Ty::Void => write!(f, "void"),
            Ty::Struct(s) => write!(f, "struct {s}"),
            Ty::Ref(l) => write!(f, "ref {l}"),
            Ty::Unknown => write!(f, "?"),
        }
    }
}

/// A record of a type mismatch discovered during unification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeMismatch {
    /// The two irreconcilable types, printed.
    pub left: String,
    /// See `left`.
    pub right: String,
}

impl fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type mismatch: {} vs {}", self.left, self.right)
    }
}

/// Unifies `a` and `b` in `table`, returning the merged type.
///
/// Implements the paper's Figure 4a:
///
/// * `ref ρ1(τ1) = ref ρ2(τ2)` unions `ρ1, ρ2` and unifies `τ1, τ2`;
/// * base types must match exactly;
/// * [`Ty::Unknown`] absorbs anything.
///
/// On a genuine mismatch the involved pointer locations are **tainted**
/// (they can no longer be restricted/confined), a [`TypeMismatch`] is
/// appended to `mismatches`, and `Unknown` is returned — the analysis
/// stays total and conservative rather than failing.
pub fn unify(table: &mut LocTable, a: &Ty, b: &Ty, mismatches: &mut Vec<TypeMismatch>) -> Ty {
    match (a, b) {
        (Ty::Unknown, other) | (other, Ty::Unknown) => {
            // Losing type information taints any pointer structure it
            // touches.
            if let Ty::Ref(l) = other {
                table.taint(*l);
            }
            other.clone()
        }
        (Ty::Int, Ty::Int) => Ty::Int,
        (Ty::Lock, Ty::Lock) => Ty::Lock,
        (Ty::Void, Ty::Void) => Ty::Void,
        (Ty::Struct(s1), Ty::Struct(s2)) if s1 == s2 => Ty::Struct(s1.clone()),
        (Ty::Ref(l1), Ty::Ref(l2)) => {
            let r1 = table.find(*l1);
            let r2 = table.find(*l2);
            if r1 == r2 {
                return Ty::Ref(r1);
            }
            // Union first so recursive structures terminate, then unify
            // the two old contents into the winner.
            let c1 = table.content(r1);
            let c2 = table.content(r2);
            let (winner, _) = table.union_raw(r1, r2).expect("distinct classes");
            let merged = unify(table, &c1, &c2, mismatches);
            table.set_content(winner, merged);
            Ty::Ref(winner)
        }
        (x, y) => {
            mismatches.push(TypeMismatch {
                left: x.to_string(),
                right: y.to_string(),
            });
            for t in [x, y] {
                if let Ty::Ref(l) = t {
                    table.taint(*l);
                }
            }
            Ty::Unknown
        }
    }
}

/// Computes `locs(τ)`: every location reachable from `τ` through content
/// types, canonicalized.
///
/// The constraint-generation pass avoids calling this in inner loops (it
/// maintains the paper's memoizing `ε_τ` variables instead); it is used
/// for small queries and in tests as the ground truth the memoization must
/// agree with.
pub fn locs_of(table: &mut LocTable, ty: &Ty) -> HashSet<Loc> {
    let mut out = HashSet::new();
    let mut stack = vec![ty.clone()];
    while let Some(t) = stack.pop() {
        if let Ty::Ref(l) = t {
            let r = table.find(l);
            if out.insert(r) {
                stack.push(table.content(r));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_base_types() {
        let mut t = LocTable::new();
        let mut errs = Vec::new();
        assert_eq!(unify(&mut t, &Ty::Int, &Ty::Int, &mut errs), Ty::Int);
        assert_eq!(unify(&mut t, &Ty::Lock, &Ty::Lock, &mut errs), Ty::Lock);
        assert!(errs.is_empty());
    }

    #[test]
    fn unify_refs_unions_locations() {
        let mut t = LocTable::new();
        let mut errs = Vec::new();
        let l1 = t.fresh("a", Ty::Int);
        let l2 = t.fresh("b", Ty::Int);
        let merged = unify(&mut t, &Ty::Ref(l1), &Ty::Ref(l2), &mut errs);
        assert!(t.same(l1, l2));
        assert_eq!(merged, Ty::Ref(t.find(l1)));
        assert!(errs.is_empty());
    }

    #[test]
    fn unify_refs_recursively_unifies_contents() {
        let mut t = LocTable::new();
        let mut errs = Vec::new();
        // l1: ref -> a (int), l2: ref -> b (int); unify(ref l1, ref l2)
        // must also merge a and b.
        let a = t.fresh("a", Ty::Int);
        let b = t.fresh("b", Ty::Int);
        let l1 = t.fresh("p", Ty::Ref(a));
        let l2 = t.fresh("q", Ty::Ref(b));
        unify(&mut t, &Ty::Ref(l1), &Ty::Ref(l2), &mut errs);
        assert!(t.same(a, b), "pointee locations must merge");
        assert!(errs.is_empty());
    }

    #[test]
    fn cyclic_unification_terminates() {
        let mut t = LocTable::new();
        let mut errs = Vec::new();
        // Two self-referential locations: content(l) = Ref(l).
        let l1 = t.fresh("c1", Ty::Unknown);
        t.set_content(l1, Ty::Ref(l1));
        let l2 = t.fresh("c2", Ty::Unknown);
        t.set_content(l2, Ty::Ref(l2));
        unify(&mut t, &Ty::Ref(l1), &Ty::Ref(l2), &mut errs);
        assert!(t.same(l1, l2));
    }

    #[test]
    fn mismatch_taints_and_records() {
        let mut t = LocTable::new();
        let mut errs = Vec::new();
        let l = t.fresh("p", Ty::Int);
        let out = unify(&mut t, &Ty::Ref(l), &Ty::Int, &mut errs);
        assert_eq!(out, Ty::Unknown);
        assert_eq!(errs.len(), 1);
        assert!(t.is_tainted(l));
    }

    #[test]
    fn unknown_absorbs_and_taints() {
        let mut t = LocTable::new();
        let mut errs = Vec::new();
        let l = t.fresh("p", Ty::Int);
        let out = unify(&mut t, &Ty::Unknown, &Ty::Ref(l), &mut errs);
        assert_eq!(out, Ty::Ref(l));
        assert!(t.is_tainted(l), "flowing through Unknown taints");
        assert!(errs.is_empty());
    }

    #[test]
    fn locs_of_reaches_through_contents() {
        let mut t = LocTable::new();
        let a = t.fresh("a", Ty::Int);
        let p = t.fresh("p", Ty::Ref(a));
        let locs = locs_of(&mut t, &Ty::Ref(p));
        assert_eq!(locs.len(), 2);
        assert!(locs.contains(&t.find(a)));
        assert!(locs.contains(&t.find(p)));
    }

    #[test]
    fn locs_of_handles_cycles() {
        let mut t = LocTable::new();
        let l = t.fresh("c", Ty::Unknown);
        t.set_content(l, Ty::Ref(l));
        let locs = locs_of(&mut t, &Ty::Ref(l));
        assert_eq!(locs.len(), 1);
    }
}
