//! Integration tests of the may-alias analysis on richer pointer shapes:
//! multi-level pointers, pointer-holding structs, externs, and the
//! taint/multiplicity metadata downstream analyses rely on.

use localias_alias::loc::Multiplicity;
use localias_alias::steensgaard::analyze;
use localias_alias::Ty;
use localias_ast::visit::{walk_expr, walk_module, Visitor};
use localias_ast::{parse_module, Expr, ExprKind, Module, NodeId, UnOp};

fn parse(src: &str) -> Module {
    parse_module("alias-test", src).expect("parse")
}

/// All `*name` dereference expression ids, in source order.
fn derefs_of(m: &Module, name: &str) -> Vec<NodeId> {
    struct D<'a>(&'a str, Vec<NodeId>);
    impl Visitor for D<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Unary(UnOp::Deref, inner) = &e.kind {
                if matches!(&inner.kind, ExprKind::Var(x) if x.name == self.0) {
                    self.1.push(e.id);
                }
            }
            walk_expr(self, e);
        }
    }
    let mut d = D(name, Vec::new());
    walk_module(&mut d, m);
    d.1
}

#[test]
fn double_pointers_unify_by_level() {
    let m = parse(
        r#"
        void f(int **pp, int **qq) {
            qq = pp;
            **pp = 1;
            **qq = 2;
        }
        "#,
    );
    let mut a = analyze(&m);
    assert!(a.state.mismatches.is_empty());
    // The inner pointees must have merged: find *pp and *qq types.
    let dpp = derefs_of(&m, "pp")[0];
    let dqq = derefs_of(&m, "qq")[0];
    let tp = a.state.expr_ty[dpp.index()].clone().unwrap();
    let tq = a.state.expr_ty[dqq.index()].clone().unwrap();
    match (tp, tq) {
        (Ty::Ref(l1), Ty::Ref(l2)) => assert!(a.state.locs.same(l1, l2)),
        other => panic!("expected pointer types, got {other:?}"),
    }
}

#[test]
fn pointer_in_struct_flows_through_field() {
    let m = parse(
        r#"
        struct box { int *ptr; };
        struct box b;
        int target;
        void f(int *p) {
            b.ptr = &target;
            p = b.ptr;
            *p = 1;
        }
        "#,
    );
    let mut a = analyze(&m);
    assert!(a.state.mismatches.is_empty());
    let dp = derefs_of(&m, "p")[0];
    // *p must be the `target` global's location.
    let target_loc = {
        let v = a
            .state
            .vars
            .iter()
            .position(|v| v.name == "target")
            .unwrap();
        match a.state.vars[v].kind {
            localias_alias::VarKind::Addressed(l) => a.state.locs.find(l),
            _ => panic!("globals are addressed"),
        }
    };
    assert_eq!(a.lval_loc(dp), Some(target_loc));
}

#[test]
fn extern_args_unify_with_each_other() {
    // Two calls to the same extern unify their arguments' types with the
    // (shared, per-extern) parameter type — conservative aliasing through
    // an unknown boundary.
    let m = parse(
        r#"
        extern void sink(int *p);
        int a;
        int b;
        void f() {
            sink(&a);
            sink(&b);
        }
        "#,
    );
    let mut an = analyze(&m);
    let (la, lb) = {
        let pos = |n: &str| an.state.vars.iter().position(|v| v.name == n).expect("var");
        let loc = |an: &mut localias_alias::ModuleAliases, i: usize| match an.state.vars[i].kind {
            localias_alias::VarKind::Addressed(l) => an.state.locs.find(l),
            _ => panic!("addressed"),
        };
        let (pa, pb) = (pos("a"), pos("b"));
        (loc(&mut an, pa), loc(&mut an, pb))
    };
    assert!(
        an.state.locs.same(la, lb),
        "extern parameter conflates its arguments"
    );
    // And the merged class no longer counts as a single object.
    assert_eq!(an.state.locs.multiplicity(la), Multiplicity::Many);
}

#[test]
fn separate_arrays_do_not_alias() {
    let m = parse(
        r#"
        lock left[4];
        lock right[4];
        void f(int i) {
            spin_lock(&left[i]);
            spin_lock(&right[i]);
        }
        "#,
    );
    let mut a = analyze(&m);
    struct Idx(Vec<NodeId>);
    impl Visitor for Idx {
        fn visit_expr(&mut self, e: &Expr) {
            if matches!(e.kind, ExprKind::Index(_, _)) {
                self.0.push(e.id);
            }
            walk_expr(self, e);
        }
    }
    let mut v = Idx(Vec::new());
    walk_module(&mut v, &m);
    assert!(!a.may_alias(v.0[0], v.0[1]));
}

#[test]
fn conditional_assignment_unifies_both_sources() {
    let m = parse(
        r#"
        int x;
        int y;
        void f(int c) {
            int *p = &x;
            if (c) { p = &y; }
            *p = 1;
        }
        "#,
    );
    let mut a = analyze(&m);
    let dp = derefs_of(&m, "p")[0];
    let lp = a.lval_loc(dp).unwrap();
    // p's pointee class covers both x and y (flow-insensitive), and is
    // therefore not strongly updatable.
    assert_eq!(a.state.locs.multiplicity(lp), Multiplicity::Many);
}

#[test]
fn heap_chain_through_double_new() {
    let m = parse(
        r#"
        void f() {
            int **pp = new (new (7));
            **pp = 8;
        }
        "#,
    );
    let a = analyze(&m);
    assert!(a.state.mismatches.is_empty());
}

#[test]
fn comparison_does_not_unify() {
    let m = parse(
        r#"
        void f() {
            int *p = new (1);
            int *q = new (2);
            if (p == q) { *p = 3; }
            *q = 4;
        }
        "#,
    );
    let mut a = analyze(&m);
    let dp = derefs_of(&m, "p")[0];
    let dq = derefs_of(&m, "q")[0];
    assert!(
        !a.may_alias(dp, dq),
        "== must not merge pointees (comparison is not assignment)"
    );
}

#[test]
fn int_to_pointer_cast_taints() {
    let m = parse(
        r#"
        void f(int cookie) {
            int *p = (int*) cookie;
            *p = 1;
        }
        "#,
    );
    let mut a = analyze(&m);
    assert!(!a.state.mismatches.is_empty(), "int→ptr cast is a mismatch");
    let dp = derefs_of(&m, "p")[0];
    if let Some(l) = a.lval_loc(dp) {
        assert!(a.state.locs.is_tainted(l));
    }
}

#[test]
fn stress_many_chained_copies() {
    // A long chain of copies must land in one class, in near-linear time.
    let mut src = String::from("int g;\nvoid f() {\n    int *p0 = &g;\n");
    for i in 1..200 {
        src.push_str(&format!("    int *p{i} = p{};\n", i - 1));
    }
    src.push_str("    *p199 = 1;\n}\n");
    let m = parse(&src);
    let mut a = analyze(&m);
    let d = derefs_of(&m, "p199")[0];
    let g_loc = {
        let v = a.state.vars.iter().position(|v| v.name == "g").unwrap();
        match a.state.vars[v].kind {
            localias_alias::VarKind::Addressed(l) => a.state.locs.find(l),
            _ => panic!(),
        }
    };
    assert_eq!(a.lval_loc(d), Some(g_loc));
}
