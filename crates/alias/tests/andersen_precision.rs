//! Tests of the Andersen-style analysis, including the precision
//! comparison against the unification analysis that motivates it.

use localias_alias::andersen::{analyze, Cell};
use localias_alias::steensgaard;
use localias_ast::visit::{walk_expr, walk_module, Visitor};
use localias_ast::{parse_module, Expr, ExprKind, Module, NodeId, UnOp};

fn parse(src: &str) -> Module {
    parse_module("andersen", src).expect("parse")
}

fn names(cells: Vec<Cell>) -> Vec<String> {
    let mut v: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
    v.sort();
    v
}

#[test]
fn address_of_and_copy() {
    let m = parse("int a; void f() { int *p = &a; int *q = p; }");
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("f", "p")), ["a"]);
    assert_eq!(names(pts.var_points_to("f", "q")), ["a"]);
}

#[test]
fn directional_assignment_is_asymmetric() {
    // The textbook Steensgaard-vs-Andersen separator: after `p = q`,
    // p ⊇ {a, b} but q stays {b}.
    let m = parse("int a; int b; void f() { int *p = &a; int *q = &b; p = q; }");
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("f", "p")), ["a", "b"]);
    assert_eq!(names(pts.var_points_to("f", "q")), ["b"]);
}

#[test]
fn loads_and_stores() {
    let m = parse(
        r#"
        int a;
        int b;
        void f() {
            int *pa = &a;
            int **pp = &pa;
            *pp = &b;       // store: pa may now be a or b
            int *out = *pp; // load: out sees pa's targets
        }
        "#,
    );
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("f", "pa")), ["a", "b"]);
    assert_eq!(names(pts.var_points_to("f", "out")), ["a", "b"]);
}

#[test]
fn heap_cells_are_per_site() {
    let m = parse("void f() { int *p = new (1); int *q = new (2); }");
    let pts = analyze(&m);
    let p = pts.var_points_to("f", "p");
    let q = pts.var_points_to("f", "q");
    assert_eq!(p.len(), 1);
    assert_eq!(q.len(), 1);
    assert_ne!(p, q, "distinct sites get distinct cells");
}

#[test]
fn array_elements_collapse_but_stay_directional() {
    let m = parse(
        r#"
        lock locks[8];
        lock spare;
        void f(int i) {
            lock *l = &locks[i];
            lock *s = &spare;
        }
        "#,
    );
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("f", "l")), ["locks[]"]);
    assert_eq!(names(pts.var_points_to("f", "s")), ["spare"]);
    let l = Cell::Var(Some("f".into()), "l".into());
    let s = Cell::Var(Some("f".into()), "s".into());
    assert!(!pts.may_point_same(&l, &s));
}

#[test]
fn calls_copy_arguments_and_returns() {
    let m = parse(
        r#"
        int g;
        int *identity(int *x) { return x; }
        void f() {
            int *p = identity(&g);
            *p = 1;
        }
        "#,
    );
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("identity", "x")), ["g"]);
    assert_eq!(names(pts.var_points_to("f", "p")), ["g"]);
}

#[test]
fn fields_are_field_based() {
    let m = parse(
        r#"
        struct dev { lock mu; struct dev *next; };
        struct dev pool[4];
        void f(int i) {
            struct dev *d = &pool[i];
            lock *l = &d->mu;
            struct dev *n = d->next;
        }
        "#,
    );
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("f", "l")), ["dev.mu"]);
    // next's contents are unconstrained (never assigned): empty.
    assert!(pts.var_points_to("f", "n").is_empty());
}

#[test]
fn strictly_more_precise_than_unification_on_the_separator() {
    // Under unification, `p = q` merges p's and q's pointee classes, so a
    // write through q may-alias a after the merge. Under inclusion, q
    // still cannot reach `a`.
    let src = r#"
        int a;
        int b;
        void f() {
            int *p = &a;
            int *q = &b;
            p = q;
            *q = 7;
        }
    "#;
    let m = parse(src);

    // Andersen: *q writes only b.
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("f", "q")), ["b"]);

    // Steensgaard: the deref of q lands in a class that also covers a.
    let mut uni = steensgaard::analyze(&m);
    struct FindDeref(Option<NodeId>);
    impl Visitor for FindDeref {
        fn visit_expr(&mut self, e: &Expr) {
            if self.0.is_none() {
                if let ExprKind::Unary(UnOp::Deref, inner) = &e.kind {
                    if matches!(&inner.kind, ExprKind::Var(x) if x.name == "q") {
                        self.0 = Some(e.id);
                    }
                }
            }
            walk_expr(self, e);
        }
    }
    let mut fd = FindDeref(None);
    walk_module(&mut fd, &m);
    let dq = fd.0.expect("deref of q");
    let q_class = uni.lval_loc(dq).expect("class");
    let a_loc = {
        let i = uni
            .state
            .vars
            .iter()
            .position(|v| v.name == "a")
            .expect("a");
        match uni.state.vars[i].kind {
            localias_alias::VarKind::Addressed(l) => uni.state.locs.find(l),
            _ => panic!("a is addressed"),
        }
    };
    assert_eq!(
        q_class, a_loc,
        "unification conflates q's pointee with a — the imprecision \
         Andersen avoids"
    );
}

#[test]
fn summarize_reports_pointer_locals() {
    let m = parse(
        r#"
        int g;
        void f() {
            int *p = &g;
            int x = 0;
        }
        "#,
    );
    let summary = localias_alias::andersen::summarize(&m);
    assert_eq!(summary.len(), 1);
    assert_eq!(summary[0].0, "f");
    assert_eq!(summary[0].1, "p");
    assert_eq!(summary[0].2, ["g"]);
}

#[test]
fn flow_insensitivity_still_joins_branches() {
    let m = parse(
        r#"
        int a;
        int b;
        void f(int c) {
            int *p = &a;
            if (c) { p = &b; }
        }
        "#,
    );
    let pts = analyze(&m);
    assert_eq!(names(pts.var_points_to("f", "p")), ["a", "b"]);
}

#[test]
fn total_size_is_a_sane_metric() {
    let m = parse("int a; void f() { int *p = &a; }");
    let pts = analyze(&m);
    assert!(pts.total_size() >= 1);
    assert!(pts.cell_count() >= 2);
}
