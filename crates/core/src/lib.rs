#![warn(missing_docs)]

//! `restrict`/`confine` checking and inference — the primary contribution
//! of *Checking and Inferring Local Non-Aliasing* (Aiken, Foster, Kodumal
//! & Terauchi, PLDI 2003).
//!
//! The crate offers one entry point, [`analyze`], configured by
//! [`Options`]:
//!
//! * **Checking** (§3–§4): with default options, explicit `restrict`
//!   parameters/declarations/statements and explicit `confine` statements
//!   are verified against the type-and-effect system; violations are
//!   reported per annotation with a [`Reason`].
//! * **Restrict inference** (§5): `Options::infer_restrict` treats every
//!   initialized pointer declaration as a `let-or-restrict` and computes
//!   the unique maximal set that can soundly be `restrict`.
//! * **Confine inference** (§6–§7): [`infer_confines`] proposes
//!   `confine?` candidates with the paper's block heuristic
//!   ([`heuristic::propose_confines`]), solves, and keeps the outermost
//!   successes.
//!
//! # Example: checking the paper's Figure 1
//!
//! ```
//! use localias_ast::parse_module;
//! use localias_core::{analyze, Options};
//!
//! let m = parse_module(
//!     "fig1",
//!     r#"
//!     lock locks[8];
//!     extern void work();
//!     void do_with_lock(lock *restrict l) {
//!         spin_lock(l);
//!         work();
//!         spin_unlock(l);
//!     }
//!     void foo(int i) { do_with_lock(&locks[i]); }
//!     "#,
//! )?;
//! let a = analyze(&m, Options::default());
//! assert!(a.restricts.iter().all(|r| r.ok()));
//! # Ok::<(), localias_ast::ParseError>(())
//! ```

pub mod gen;
pub mod heuristic;
pub mod outcome;

pub use gen::{Gen, Options};
pub use heuristic::{
    propose_confines, propose_confines_general, select_outermost, ConfineCandidate,
};
pub use outcome::{CandidateOutcome, ConfineOutcome, ConfineSite, Diag, Reason, RestrictOutcome};

use localias_alias::{analyze_with, Backend, FrozenLocs, Loc, State};
use localias_ast::visit::{walk_module, Visitor};
use localias_ast::{Module, NodeId, StmtKind};
use localias_effects::{solve_with, ConstraintSystem, Solution};
use localias_obs as obs;
use std::collections::HashMap;

/// The complete result of one module analysis.
#[derive(Debug)]
pub struct Analysis {
    /// The typing/aliasing state (location table with final unifications
    /// and multiplicities, per-expression types, variables, signatures).
    pub state: State,
    /// The solved constraint system.
    pub cs: ConstraintSystem,
    /// The least solution (with conditional constraints fired).
    pub solution: Solution,
    /// Free-standing diagnostics (malformed annotations etc.).
    pub diags: Vec<Diag>,
    /// Verdicts on explicit `restrict` annotations.
    pub restricts: Vec<RestrictOutcome>,
    /// Verdicts on §5 `let-or-restrict` candidates (inference mode only).
    pub candidates: Vec<CandidateOutcome>,
    /// Verdicts on `confine` annotations and `confine?` candidates.
    pub confines: Vec<ConfineOutcome>,
    /// The `(Down)`-masked effect-summary variable of each defined
    /// function; resolve through [`Analysis::function_effect`].
    pub fun_effects: HashMap<String, localias_effects::EffVar>,
}

impl Analysis {
    /// The solved effect summary of a defined function: the locations it
    /// may read/write/allocate, as visible to its callers (after the
    /// `(Down)` mask).
    pub fn function_effect(
        &self,
        name: &str,
    ) -> Vec<(localias_alias::Loc, localias_effects::KindMask)> {
        match self.fun_effects.get(name) {
            Some(&v) => self.solution.set(&self.cs, v),
            None => Vec::new(),
        }
    }

    /// Freezes the analysis' abstract-location table into an immutable,
    /// `Sync` [`FrozenLocs`] snapshot (see
    /// [`localias_alias::loc::LocTable::freeze`]).
    ///
    /// After the analysis pipeline completes no further unifications
    /// happen, so the snapshot answers every later `find`/multiplicity/
    /// taint query identically to the live table — with `&self`, from any
    /// thread.
    pub fn freeze(&mut self) -> FrozenLocs {
        self.state.locs.freeze()
    }

    /// The locations the downstream checker consults *by identity*: the
    /// `(ρ, ρ')` pairs of every restrict/candidate/confine outcome, plus
    /// the pointee `ρ_p` of every `restrict` parameter (explicit or
    /// inferred as a restricted candidate). The checker transfers lock
    /// state across scope boundaries and retargets summaries through
    /// these exact keys, so a refining alias backend must leave their
    /// classes untouched — see [`Analysis::freeze_with`].
    pub fn pinned_locs(&self, m: &Module) -> Vec<Loc> {
        let mut pinned = Vec::new();
        let push_pair = |locs: Option<(Loc, Loc)>, pinned: &mut Vec<Loc>| {
            if let Some((a, b)) = locs {
                pinned.push(a);
                pinned.push(b);
            }
        };
        for r in &self.restricts {
            push_pair(r.locs, &mut pinned);
        }
        for c in &self.candidates {
            push_pair(c.locs, &mut pinned);
        }
        for c in &self.confines {
            push_pair(c.locs, &mut pinned);
        }
        // Parameter pointees the checker may retarget through (matching
        // the checker's own restrict test: explicit annotation OR an
        // inferred restricted candidate on that function × name).
        let inferred: std::collections::HashSet<(NodeId, &str)> = self
            .candidates
            .iter()
            .filter(|c| c.restricted)
            .map(|c| (c.at, c.name.as_str()))
            .collect();
        for f in m.functions() {
            let Some(tys) = self.state.param_tys.get(f.name.name.as_str()) else {
                continue;
            };
            for (p, ty) in f.params.iter().zip(tys) {
                if p.restrict || inferred.contains(&(f.id, p.name.name.as_str())) {
                    if let Some(l) = ty.pointee() {
                        pinned.push(l);
                    }
                }
            }
        }
        pinned
    }

    /// Freezes the location table through the selected alias [`Backend`].
    ///
    /// [`Backend::Steensgaard`] is the verbatim capture of
    /// [`Analysis::freeze`] (byte-identical snapshot); [`Backend::Andersen`]
    /// refines that capture by splitting unification classes the
    /// inclusion-based points-to analysis proves independent, never
    /// touching classes that hold a [`Analysis::pinned_locs`] key.
    pub fn freeze_with(&mut self, backend: Backend, m: &Module) -> FrozenLocs {
        let pinned = self.pinned_locs(m);
        backend.dispatch().freeze(m, &mut self.state, &pinned)
    }

    /// `true` if every explicit annotation checked and the module has no
    /// standard type errors.
    pub fn clean(&self) -> bool {
        self.diags.is_empty()
            && self.state.mismatches.is_empty()
            && self.restricts.iter().all(|r| r.ok())
            && self.confines.iter().filter(|c| c.explicit).all(|c| c.ok())
    }
}

/// Runs the full analysis over one module.
pub fn analyze(m: &Module, opts: Options) -> Analysis {
    let _span = obs::span!("core.analyze");
    let _hist = obs::hist_timer!(obs::Hist::AnalyzeModule);
    obs::count(obs::Counter::ModulesAnalyzed, 1);
    let (mut state, mut gen) = {
        let _s = obs::span!("core.alias");
        let hooks = Gen::new(opts);
        let (mut state, mut gen) = analyze_with(m, hooks);
        gen.finalize(&mut state);
        (state, gen)
    };
    let mut cs = std::mem::take(&mut gen.cs);
    let mut loc_vars = std::mem::take(&mut gen.loc_vars);
    let solution = {
        let _s = obs::span!("core.solve");
        solve_with(&mut cs, &mut state.locs, &mut loc_vars)
    };
    gen.cs = cs;
    gen.loc_vars = loc_vars;
    let _outcomes_span = obs::span!("core.outcomes");
    let (cs, mut diags, restricts, candidates, confines, fun_effects) =
        gen.into_outcomes(&mut state, &solution);
    for d in &mut diags {
        d.span = m.span_of(d.at);
    }
    Analysis {
        state,
        cs,
        solution,
        diags,
        restricts,
        candidates,
        confines,
        fun_effects,
    }
}

/// Checks a module's explicit annotations (no inference).
pub fn check(m: &Module) -> Analysis {
    analyze(m, Options::default())
}

/// Runs §5 restrict inference: every initialized pointer declaration is a
/// `let-or-restrict`.
pub fn infer_restricts(m: &Module) -> Analysis {
    analyze(
        m,
        Options {
            infer_restrict: true,
            ..Options::default()
        },
    )
}

/// Extension: infers `restrict` qualifiers for unannotated pointer
/// *parameters* (the annotation the paper's Figure 1 asks the programmer
/// to write by hand). Candidate verdicts land in [`Analysis::candidates`]
/// keyed by the function node and parameter name.
pub fn infer_param_restricts(m: &Module) -> Analysis {
    analyze(
        m,
        Options {
            infer_restrict_params: true,
            ..Options::default()
        },
    )
}

/// The result of confine inference: the analysis plus which candidate
/// outcomes were selected (outermost successes per confined expression).
#[derive(Debug)]
pub struct ConfineInference {
    /// The underlying analysis (candidate verdicts are in
    /// [`Analysis::confines`]).
    pub analysis: Analysis,
    /// The proposed candidates, parallel to the non-explicit entries of
    /// `analysis.confines`.
    pub candidates: Vec<ConfineCandidate>,
    /// Indices (into `candidates`) of the outermost successful confines.
    pub chosen: Vec<usize>,
}

/// Runs §6 confine inference with the §7 block heuristic and §6.2
/// outermost-scope selection.
pub fn infer_confines(m: &Module) -> ConfineInference {
    infer_confines_from(m, propose_confines(m))
}

/// Confine inference with the *general* §7 strategy: per-occurrence
/// candidates let safe sub-regions survive even when the heuristic's
/// min–max range fails (e.g. interleaved critical sections of aliased
/// locks).
pub fn infer_confines_general(m: &Module) -> ConfineInference {
    infer_confines_from(m, heuristic::propose_confines_general(m))
}

fn infer_confines_from(m: &Module, candidates: Vec<ConfineCandidate>) -> ConfineInference {
    let analysis = analyze(
        m,
        Options {
            confine_candidates: candidates.clone(),
            ..Options::default()
        },
    );
    // The first `candidates.len()` confine outcomes correspond 1:1 to the
    // proposed candidates (units are created eagerly in that order).
    let successes: Vec<bool> = analysis.confines[..candidates.len()]
        .iter()
        .map(|c| c.ok())
        .collect();
    let parents = block_parents(m);
    let enclosing = |a: &ConfineCandidate, b: &ConfineCandidate| encloses(&parents, a, b);
    let chosen = select_outermost(&candidates, &successes, &enclosing);
    ConfineInference {
        analysis,
        candidates,
        chosen,
    }
}

/// Lazily computed per-module analyses, shared across experiment modes.
///
/// The §7 experiment measures every module under three lock-checking
/// modes. Two of them (no-confine and all-strong) differ only in how the
/// flow-sensitive checker treats updates — they consume the *same* base
/// analysis — and only confine mode needs the separate
/// [`infer_confines`] run (candidate confines re-type in-scope
/// expressions to fresh `ρ'` locations, which must not leak into the
/// other modes). `SharedAnalysis` memoizes both, so a three-mode sweep
/// runs two analysis pipelines per module instead of three.
///
/// Sharing the base analysis across modes is sound because the checker
/// never mutates it: each mode consumes a frozen location snapshot
/// ([`SharedAnalysis::base_frozen`]/[`SharedAnalysis::confine_frozen`]),
/// which answers resolution queries immutably and never changes which
/// locations are equal.
///
/// The snapshots are produced through the selected alias [`Backend`]
/// ([`Analysis::freeze_with`]) and memoized *per backend*: the base and
/// confine analyses themselves are backend-invariant (the typing walk is
/// always the unification analysis), so switching backends re-freezes but
/// never re-analyzes.
#[derive(Debug)]
pub struct SharedAnalysis<'m> {
    module: &'m Module,
    backend: Backend,
    base: Option<Analysis>,
    confine: Option<ConfineInference>,
    base_frozen: [Option<FrozenLocs>; Backend::ALL.len()],
    confine_frozen: [Option<FrozenLocs>; Backend::ALL.len()],
}

impl<'m> SharedAnalysis<'m> {
    /// Creates an empty cache for `module` with the default
    /// ([`Backend::Steensgaard`]) alias backend; nothing is computed yet.
    pub fn new(module: &'m Module) -> Self {
        Self::new_with_backend(module, Backend::Steensgaard)
    }

    /// Creates an empty cache for `module` freezing through `backend`.
    pub fn new_with_backend(module: &'m Module, backend: Backend) -> Self {
        SharedAnalysis {
            module,
            backend,
            base: None,
            confine: None,
            base_frozen: [None, None],
            confine_frozen: [None, None],
        }
    }

    /// The module under analysis.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The alias backend frozen snapshots are produced through.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Switches the alias backend for subsequent `*_frozen` calls. Cheap:
    /// analyses are backend-invariant and snapshots are memoized per
    /// backend, so flipping back and forth never recomputes anything
    /// already done.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The plain checking analysis ([`check`]), computed on first use.
    pub fn base(&mut self) -> &mut Analysis {
        if self.base.is_none() {
            self.base = Some(check(self.module));
        }
        self.base.as_mut().expect("just computed")
    }

    /// The confine-inference result ([`infer_confines`]), computed on
    /// first use.
    pub fn confine(&mut self) -> &mut ConfineInference {
        if self.confine.is_none() {
            self.confine = Some(infer_confines(self.module));
        }
        self.confine.as_mut().expect("just computed")
    }

    /// The base analysis together with its frozen location snapshot —
    /// the `freeze()` step of the pipeline. Both are computed on first
    /// use and memoized; the returned references are immutable, so any
    /// number of checker threads can share them.
    pub fn base_frozen(&mut self) -> (&Analysis, &FrozenLocs) {
        let (backend, module) = (self.backend, self.module);
        if self.base_frozen[backend.index()].is_none() {
            let frozen = self.base().freeze_with(backend, module);
            self.base_frozen[backend.index()] = Some(frozen);
        }
        (
            self.base.as_ref().expect("base computed"),
            self.base_frozen[backend.index()]
                .as_ref()
                .expect("just computed"),
        )
    }

    /// The confine-inference analysis together with its frozen location
    /// snapshot, computed on first use.
    pub fn confine_frozen(&mut self) -> (&Analysis, &FrozenLocs) {
        let (backend, module) = (self.backend, self.module);
        if self.confine_frozen[backend.index()].is_none() {
            let frozen = self.confine().analysis.freeze_with(backend, module);
            self.confine_frozen[backend.index()] = Some(frozen);
        }
        (
            &self.confine.as_ref().expect("confine computed").analysis,
            self.confine_frozen[backend.index()]
                .as_ref()
                .expect("just computed"),
        )
    }

    /// Both frozen analyses at once — `(base, confine)` — for callers
    /// that interleave modes over one borrow (e.g. the incremental
    /// rechecker, which keeps per-analysis check contexts alive across
    /// its three mode passes). Each separate `base_frozen()` /
    /// `confine_frozen()` call reborrows `&mut self` and so invalidates
    /// the other's references; this forces both memoizations first and
    /// then hands out shared references together.
    pub fn both_frozen(&mut self) -> ((&Analysis, &FrozenLocs), (&Analysis, &FrozenLocs)) {
        self.base_frozen();
        self.confine_frozen();
        let ix = self.backend.index();
        (
            (
                self.base.as_ref().expect("base computed"),
                self.base_frozen[ix].as_ref().expect("base frozen"),
            ),
            (
                &self.confine.as_ref().expect("confine computed").analysis,
                self.confine_frozen[ix].as_ref().expect("confine frozen"),
            ),
        )
    }
}

/// Maps each block to `(parent block, index of the containing statement)`.
/// Function bodies have no parent.
pub fn block_parents(m: &Module) -> HashMap<NodeId, (NodeId, usize)> {
    struct P {
        out: HashMap<NodeId, (NodeId, usize)>,
        stack: Vec<(NodeId, usize)>,
    }
    impl Visitor for P {
        fn visit_block(&mut self, b: &localias_ast::Block) {
            if let Some(&(parent, idx)) = self.stack.last() {
                self.out.insert(b.id, (parent, idx));
            }
            for (i, s) in b.stmts.iter().enumerate() {
                self.stack.push((b.id, i));
                self.visit_stmt(s);
                self.stack.pop();
            }
        }
        fn visit_stmt(&mut self, s: &localias_ast::Stmt) {
            match &s.kind {
                StmtKind::Restrict { body, .. }
                | StmtKind::Confine { body, .. }
                | StmtKind::While { body, .. }
                | StmtKind::Block(body) => self.visit_block(body),
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    self.visit_block(then_blk);
                    if let Some(e) = else_blk {
                        self.visit_block(e);
                    }
                }
                _ => {}
            }
        }
    }
    let mut p = P {
        out: HashMap::new(),
        stack: Vec::new(),
    };
    walk_module(&mut p, m);
    p.out
}

/// Does candidate `a` enclose candidate `b` (strictly)?
pub fn encloses(
    parents: &HashMap<NodeId, (NodeId, usize)>,
    a: &ConfineCandidate,
    b: &ConfineCandidate,
) -> bool {
    if a.block == b.block {
        return a.start <= b.start && b.end <= a.end && (a.start, a.end) != (b.start, b.end);
    }
    // Walk b's ancestry looking for a's block.
    let mut cur = b.block;
    while let Some(&(parent, idx)) = parents.get(&cur) {
        if parent == a.block {
            return a.start <= idx && idx <= a.end;
        }
        cur = parent;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_alias::loc::Multiplicity;
    use localias_alias::Ty;
    use localias_ast::parse_module;
    use localias_ast::visit::{walk_expr, walk_module as wm};
    use localias_ast::{Expr, ExprKind};

    fn parse(src: &str) -> Module {
        parse_module("test", src).expect("parse")
    }

    /// The first argument's node id of call expression `call`.
    fn find_first_arg(m: &Module, call: NodeId) -> NodeId {
        struct F {
            call: NodeId,
            found: Option<NodeId>,
        }
        impl Visitor for F {
            fn visit_expr(&mut self, e: &Expr) {
                if e.id == self.call {
                    if let ExprKind::Call(_, args) = &e.kind {
                        self.found = Some(args[0].id);
                    }
                }
                walk_expr(self, e);
            }
        }
        let mut f = F { call, found: None };
        wm(&mut f, m);
        f.found.expect("call args")
    }

    /// First expression matching `pred`, by a fresh walk.
    fn find_expr(m: &Module, pred: impl Fn(&Expr) -> bool) -> NodeId {
        struct F<P> {
            pred: P,
            found: Option<NodeId>,
        }
        impl<P: Fn(&Expr) -> bool> Visitor for F<P> {
            fn visit_expr(&mut self, e: &Expr) {
                if self.found.is_none() && (self.pred)(e) {
                    self.found = Some(e.id);
                }
                walk_expr(self, e);
            }
        }
        let mut f = F { pred, found: None };
        wm(&mut f, m);
        f.found.expect("expr")
    }

    // ---- Checking ---------------------------------------------------------

    #[test]
    fn figure1_restrict_param_checks() {
        let m = parse(
            r#"
            lock locks[8];
            extern void work();
            void do_with_lock(lock *restrict l) {
                spin_lock(l);
                work();
                spin_unlock(l);
            }
            void foo(int i) { do_with_lock(&locks[i]); }
            "#,
        );
        let a = check(&m);
        assert_eq!(a.restricts.len(), 1);
        assert!(a.restricts[0].ok(), "{:?}", a.restricts[0]);
        assert!(a.clean());
    }

    #[test]
    fn deref_of_alias_in_scope_fails() {
        // The paper's §2 first example: *q is invalid inside p's restrict.
        let m = parse("void f(int *q) { restrict p = q { *p = 1; *q = 2; } }");
        let a = check(&m);
        assert_eq!(a.restricts.len(), 1);
        assert!(a.restricts[0].reasons.contains(&Reason::AliasAccessed));
    }

    #[test]
    fn deref_of_alias_after_scope_is_fine() {
        let m = parse("void f(int *q) { restrict p = q { *p = 1; } *q = 2; }");
        let a = check(&m);
        assert!(a.restricts[0].ok(), "{:?}", a.restricts[0]);
    }

    #[test]
    fn local_copies_are_allowed() {
        // §2: copies of the restricted pointer may be used inside.
        let m = parse("void f(int *q) { restrict p = q { int *r = p; *r = 1; } }");
        let a = check(&m);
        assert!(a.restricts[0].ok(), "{:?}", a.restricts[0]);
    }

    #[test]
    fn escaping_copy_fails() {
        // §2: `x = p` lets a copy escape.
        let m = parse(
            r#"
            int *x;
            void f(int *q) { restrict p = q { x = p; } }
            "#,
        );
        let a = check(&m);
        assert!(
            a.restricts[0].reasons.contains(&Reason::Escapes),
            "{:?}",
            a.restricts[0]
        );
    }

    #[test]
    fn rebinding_in_inner_scope_works() {
        // §2: restrict r = p inside restrict p's scope; *r valid, *p
        // invalid inside, valid outside.
        let valid =
            parse("void f(int *q) { restrict p = q { restrict r = p { *r = 1; } *p = 2; } }");
        let a = check(&valid);
        assert!(a.restricts.iter().all(|r| r.ok()), "{:?}", a.restricts);

        let invalid =
            parse("void f(int *q) { restrict p = q { restrict r = p { *r = 1; *p = 2; } } }");
        let a = check(&invalid);
        // The inner restrict (of p's location) is violated by *p.
        assert!(
            a.restricts
                .iter()
                .any(|r| r.reasons.contains(&Reason::AliasAccessed)),
            "{:?}",
            a.restricts
        );
    }

    #[test]
    fn double_restrict_of_same_location_fails() {
        // §3's "sneaky program": restricting the same location twice in
        // nested scopes with both names used.
        let m = parse("void f(int *x) { restrict y = x { restrict z = x { *y = 1; *z = 2; } } }");
        let a = check(&m);
        assert!(
            a.restricts.iter().any(|r| !r.ok()),
            "nested double restrict must fail: {:?}",
            a.restricts
        );
    }

    #[test]
    fn restrict_through_function_call_fails() {
        // Accessing the restricted location through a global alias inside
        // a called function is still an access in the scope.
        let m = parse(
            r#"
            int g;
            void touch() { g = 1; }
            void f() {
                int *q = &g;
                restrict p = q { touch(); *p = 2; }
            }
            "#,
        );
        let a = check(&m);
        assert!(
            a.restricts[0].reasons.contains(&Reason::AliasAccessed),
            "call effects must count: {:?}",
            a.restricts[0]
        );
    }

    #[test]
    fn unrelated_function_call_is_fine() {
        let m = parse(
            r#"
            int g;
            int h;
            void touch() { h = 1; }
            void f() {
                int *q = &g;
                restrict p = q { touch(); *p = 2; }
            }
            "#,
        );
        let a = check(&m);
        assert!(a.restricts[0].ok(), "{:?}", a.restricts[0]);
    }

    #[test]
    fn down_masks_temporaries() {
        // The callee's effect on its own temporaries must not leak into
        // callers ((Down) at the function boundary), or g's restrict
        // would spuriously fail.
        let m = parse(
            r#"
            int g;
            void tmp() { int *t = new 0; *t = 1; }
            void f() {
                int *q = &g;
                restrict p = q { tmp(); *p = 2; }
            }
            "#,
        );
        let a = check(&m);
        assert!(a.restricts[0].ok(), "{:?}", a.restricts[0]);
    }

    #[test]
    fn restrict_decl_scope_is_rest_of_block() {
        let m = parse("void f(int *q) { restrict int *p = q; *p = 1; *q = 2; }");
        let a = check(&m);
        assert!(
            a.restricts[0].reasons.contains(&Reason::AliasAccessed),
            "{:?}",
            a.restricts[0]
        );

        let m = parse("void f(int *q) { *q = 2; restrict int *p = q; *p = 1; }");
        let a = check(&m);
        assert!(a.restricts[0].ok(), "uses before the decl don't count");
    }

    #[test]
    fn restrict_of_non_pointer_is_diagnosed() {
        let m = parse("void f(int x) { restrict p = x { p; } }");
        let a = check(&m);
        assert!(!a.diags.is_empty());
    }

    // ---- Restrict inference (§5) -------------------------------------------

    #[test]
    fn candidate_without_alias_use_is_restricted() {
        let m = parse("void f(int *q) { int *p = q; *p = 1; }");
        let a = infer_restricts(&m);
        assert_eq!(a.candidates.len(), 1);
        assert!(a.candidates[0].restricted, "{:?}", a.candidates);
    }

    #[test]
    fn candidate_with_alias_use_is_let() {
        let m = parse("void f(int *q) { int *p = q; *p = 1; *q = 2; }");
        let a = infer_restricts(&m);
        assert_eq!(a.candidates.len(), 1);
        assert!(!a.candidates[0].restricted, "{:?}", a.candidates);
    }

    #[test]
    fn candidate_that_escapes_is_let() {
        let m = parse(
            r#"
            int *g;
            void f(int *q) { int *p = q; g = p; }
            "#,
        );
        let a = infer_restricts(&m);
        assert!(!a.candidates[0].restricted, "{:?}", a.candidates);
    }

    #[test]
    fn inference_is_maximal() {
        // Two independent candidates: both can be restricts.
        let m = parse(
            r#"
            void f(int *q, int *r) {
                int *a = q;
                int *b = r;
                *a = 1;
                *b = 2;
            }
            "#,
        );
        let a = infer_restricts(&m);
        assert_eq!(a.candidates.len(), 2);
        assert!(
            a.candidates.iter().all(|c| c.restricted),
            "{:?}",
            a.candidates
        );
    }

    #[test]
    fn chained_aliases_demote_together() {
        // b = a's value; using *b and *q in b's scope demotes both a and
        // b (they are the same location as q).
        let m = parse(
            r#"
            void f(int *q) {
                int *a = q;
                int *b = a;
                *b = 1;
                *q = 2;
            }
            "#,
        );
        let a = infer_restricts(&m);
        assert!(
            a.candidates.iter().all(|c| !c.restricted),
            "{:?}",
            a.candidates
        );
    }

    // ---- Confine (§6) -------------------------------------------------------

    #[test]
    fn explicit_confine_checks_and_enables_strong_updates() {
        let m = parse(
            r#"
            lock locks[4];
            extern void work();
            void f(int i) {
                confine (&locks[i]) {
                    spin_lock(&locks[i]);
                    work();
                    spin_unlock(&locks[i]);
                }
            }
            "#,
        );
        let mut a = check(&m);
        let explicit: Vec<_> = a.confines.iter().filter(|c| c.explicit).cloned().collect();
        assert_eq!(explicit.len(), 1);
        assert!(explicit[0].ok(), "{:?}", explicit[0]);

        // The spin_lock argument inside the scope is re-typed to the
        // fresh ρ' of multiplicity One — i.e., strongly updatable.
        let arg = find_expr(
            &m,
            |e| matches!(&e.kind, ExprKind::Call(f, _) if f.name == "spin_lock"),
        );
        let arg = find_first_arg(&m, arg);
        match a.state.expr_ty[arg.index()].clone() {
            Some(Ty::Ref(l)) => {
                assert_eq!(a.state.locs.multiplicity(l), Multiplicity::One);
            }
            other => panic!("expected pointer, got {other:?}"),
        }
    }

    #[test]
    fn confine_with_alias_access_fails() {
        let m = parse(
            r#"
            lock locks[4];
            void f(int i, int j) {
                confine (&locks[i]) {
                    spin_lock(&locks[i]);
                    spin_unlock(&locks[j]);
                }
            }
            "#,
        );
        let a = check(&m);
        let explicit: Vec<_> = a.confines.iter().filter(|c| c.explicit).collect();
        assert!(
            explicit[0].reasons.contains(&Reason::AliasAccessed),
            "{:?}",
            explicit[0]
        );
    }

    #[test]
    fn confine_with_reassigned_index_fails() {
        let m = parse(
            r#"
            lock locks[4];
            void f(int i) {
                confine (&locks[i]) {
                    spin_lock(&locks[i]);
                    i = i + 1;
                    spin_unlock(&locks[i]);
                }
            }
            "#,
        );
        let a = check(&m);
        let explicit: Vec<_> = a.confines.iter().filter(|c| c.explicit).collect();
        assert!(
            explicit[0].reasons.contains(&Reason::RegisterReassigned),
            "{:?}",
            explicit[0]
        );
    }

    #[test]
    fn confine_inference_recovers_figure1_without_annotations() {
        let m = parse(
            r#"
            lock locks[4];
            extern void work();
            void f(int i) {
                spin_lock(&locks[i]);
                work();
                spin_unlock(&locks[i]);
            }
            "#,
        );
        let inf = infer_confines(&m);
        assert!(!inf.chosen.is_empty(), "{:?}", inf.analysis.confines);
        // The chosen candidate enables a strong update at the lock sites.
        let mut a = inf.analysis;
        let arg = find_expr(
            &m,
            |e| matches!(&e.kind, ExprKind::Call(f, _) if f.name == "spin_lock"),
        );
        let arg = find_first_arg(&m, arg);
        match a.state.expr_ty[arg.index()].clone() {
            Some(Ty::Ref(l)) => {
                assert_eq!(a.state.locs.multiplicity(l), Multiplicity::One);
            }
            other => panic!("expected pointer, got {other:?}"),
        }
    }

    #[test]
    fn confine_inference_rejects_cross_element_access() {
        let m = parse(
            r#"
            lock locks[4];
            extern void work();
            void f(int i, int j) {
                spin_lock(&locks[i]);
                spin_lock(&locks[j]);
                spin_unlock(&locks[j]);
                spin_unlock(&locks[i]);
            }
            "#,
        );
        let inf = infer_confines(&m);
        // &locks[i] and &locks[j] share one abstract location. The outer
        // (i) region contains j's accesses and must fail; the inner (j)
        // region contains no stale-alias access and is confinable.
        let chosen_keys: Vec<&str> = inf
            .chosen
            .iter()
            .map(|&k| inf.candidates[k].key.as_str())
            .collect();
        assert!(
            !chosen_keys.contains(&"&(locks[i])"),
            "outer region must fail: {:?}",
            inf.analysis.confines
        );
        assert!(
            chosen_keys.contains(&"&(locks[j])"),
            "inner region is sound: {:?}",
            inf.analysis.confines
        );
    }

    #[test]
    fn confine_inference_picks_outermost_scope() {
        let m = parse(
            r#"
            lock mu;
            extern void work();
            void f(int c) {
                if (c) {
                    spin_lock(&mu);
                    work();
                    spin_unlock(&mu);
                }
            }
            "#,
        );
        let inf = infer_confines(&m);
        assert_eq!(inf.chosen.len(), 1, "{:?}", inf.analysis.confines);
        let chosen = &inf.candidates[inf.chosen[0]];
        let f = m.function("f").unwrap();
        assert_eq!(
            chosen.block, f.body.id,
            "outermost (function-body) scope must win: {chosen:?}"
        );
    }

    #[test]
    fn confine_inference_handles_struct_locks() {
        let m = parse(
            r#"
            struct dev { lock mu; int n; };
            struct dev devs[8];
            extern void work();
            void f(int i) {
                struct dev *d = &devs[i];
                spin_lock(&d->mu);
                d->n = d->n + 1;
                spin_unlock(&d->mu);
            }
            "#,
        );
        let inf = infer_confines(&m);
        assert!(
            !inf.chosen.is_empty(),
            "&d->mu should be confinable: {:?}",
            inf.analysis.confines
        );
    }

    #[test]
    fn confine_inference_rejects_write_to_read_input() {
        // The confined expression *q reads pp's storage (address-taken);
        // the scope writes it — not referentially transparent.
        let m = parse(
            r#"
            lock a;
            lock b;
            void f() {
                lock *pp = &a;
                lock **q = &pp;
                spin_lock(*q);
                pp = &b;
                spin_unlock(*q);
            }
            "#,
        );
        let inf = infer_confines(&m);
        assert!(
            inf.chosen.is_empty(),
            "writing pp must block confining *q: {:?}",
            inf.analysis.confines
        );
    }

    #[test]
    fn cast_taints_and_blocks_confine() {
        let m = parse(
            r#"
            lock locks[4];
            int sink;
            void f(int i) {
                sink = (int) (&locks[i]);
                spin_lock(&locks[i]);
                spin_unlock(&locks[i]);
            }
            "#,
        );
        let inf = infer_confines(&m);
        assert!(
            inf.chosen.is_empty(),
            "tainted locations must not confine: {:?}",
            inf.analysis.confines
        );
    }

    // ---- Interprocedural shape ---------------------------------------------

    #[test]
    fn restrict_param_isolates_callers() {
        // Two callers with different lock elements; the restrict
        // parameter still checks because accesses go through ρ'.
        let m = parse(
            r#"
            lock locks[8];
            lock other[8];
            void with(lock *restrict l) { spin_lock(l); spin_unlock(l); }
            void a(int i) { with(&locks[i]); }
            void b(int i) { with(&other[i]); }
            "#,
        );
        let a = check(&m);
        assert!(a.restricts[0].ok(), "{:?}", a.restricts[0]);
    }

    #[test]
    fn block_parents_and_encloses() {
        let m = parse(
            r#"
            lock mu;
            void f(int c) { if (c) { spin_lock(&mu); spin_unlock(&mu); } }
            "#,
        );
        let parents = block_parents(&m);
        let f = m.function("f").unwrap();
        // One inner block (the if-then) whose parent is the body.
        assert!(parents.values().any(|&(p, i)| p == f.body.id && i == 0));
    }

    // ---- (Down) ablation -----------------------------------------------------

    #[test]
    fn down_masks_callee_local_effects_from_summaries() {
        // §3.1: "e may have subexpressions that allocate temporary
        // storage and have effects on that storage" — (Down) removes
        // those from the function's visible effect. The ablation switch
        // shows exactly what leaks without it.
        let m = parse(
            r#"
            int g;
            void tmp() {
                int *t = new (0);
                *t = 1;
            }
            void toucher() { g = 2; }
            "#,
        );
        let with_down = analyze(&m, Options::default());
        assert!(
            with_down.function_effect("tmp").is_empty(),
            "tmp's effects are all on dead temporaries: {:?}",
            with_down.function_effect("tmp")
        );
        assert_eq!(
            with_down.function_effect("toucher").len(),
            1,
            "the global write is visible"
        );

        let without_down = analyze(
            &m,
            Options {
                apply_down: false,
                ..Options::default()
            },
        );
        assert!(
            !without_down.function_effect("tmp").is_empty(),
            "ablation: the temporary's alloc/write leaks into the summary"
        );
    }

    #[test]
    fn recursive_functions_keep_compact_summaries_with_down() {
        // The paper: without effect removal, extra locations accumulate
        // through recursive calls. Each recursion level allocates a
        // temporary; (Down) keeps the summary to just the visible part.
        let m = parse(
            r#"
            int g;
            void walk(int n) {
                if (n > 0) {
                    int *frame = new (n);
                    *frame = n;
                    g = *frame;
                    walk(n - 1);
                }
            }
            "#,
        );
        let with_down = analyze(&m, Options::default());
        let masked = with_down.function_effect("walk");
        assert_eq!(masked.len(), 1, "only the write to g survives: {masked:?}");

        let without_down = analyze(
            &m,
            Options {
                apply_down: false,
                ..Options::default()
            },
        );
        let leaked = without_down.function_effect("walk");
        assert!(
            leaked.len() > masked.len(),
            "ablation: frame's location pollutes the recursive summary: {leaked:?}"
        );
    }

    // ---- Parameter restrict inference (extension) -----------------------------

    #[test]
    fn figure1_param_restrict_is_inferred() {
        // The annotation the paper adds by hand is inferable: inside
        // do_with_lock, l is the sole access path to its referent.
        let m = parse(
            r#"
            lock locks[8];
            extern void work();
            void do_with_lock(lock *l) {
                spin_lock(l);
                work();
                spin_unlock(l);
            }
            void foo(int i) { do_with_lock(&locks[i]); }
            "#,
        );
        let a = infer_param_restricts(&m);
        let l = a
            .candidates
            .iter()
            .find(|c| c.name == "l")
            .expect("candidate for l");
        assert!(l.restricted, "{:?}", a.candidates);
    }

    #[test]
    fn param_with_global_alias_access_stays_unrestricted() {
        // The callee also reaches the lock array through a global index:
        // l is not the sole access path.
        let m = parse(
            r#"
            lock locks[8];
            int hot;
            void bad(lock *l) {
                spin_lock(l);
                spin_unlock(&locks[hot]);
            }
            void foo(int i) { bad(&locks[i]); }
            "#,
        );
        let a = infer_param_restricts(&m);
        let l = a
            .candidates
            .iter()
            .find(|c| c.name == "l")
            .expect("candidate for l");
        assert!(!l.restricted, "{:?}", a.candidates);
    }

    #[test]
    fn escaping_param_stays_unrestricted() {
        let m = parse(
            r#"
            lock *stash;
            void keep(lock *l) { stash = l; }
            "#,
        );
        let a = infer_param_restricts(&m);
        let l = a
            .candidates
            .iter()
            .find(|c| c.name == "l")
            .expect("candidate for l");
        assert!(!l.restricted, "escape must demote: {:?}", a.candidates);
    }

    #[test]
    fn non_pointer_params_are_not_candidates() {
        let m = parse("void f(int x, int *p) { *p = x; }");
        let a = infer_param_restricts(&m);
        assert_eq!(a.candidates.len(), 1);
        assert_eq!(a.candidates[0].name, "p");
        assert!(a.candidates[0].restricted);
    }

    /// Two locks only conflated by Steensgaard's flow-insensitivity:
    /// `g` merges their classes through pointer assignments, while every
    /// lock operation in `f` consults them independently.
    const SPLITTABLE: &str = r#"
        lock a;
        lock b;
        extern void work();
        void f() {
            spin_lock(&a); work(); spin_unlock(&a);
            spin_lock(&b); work(); spin_unlock(&b);
        }
        void g() {
            lock *x;
            lock *y;
            x = &a;
            y = &b;
            x = y;
        }
    "#;

    #[test]
    fn freeze_with_steensgaard_is_identical_to_freeze() {
        let m = parse(SPLITTABLE);
        let mut a = check(&m);
        let plain = a.freeze();
        let via_backend = a.freeze_with(Backend::Steensgaard, &m);
        assert_eq!(plain, via_backend);
    }

    #[test]
    fn freeze_with_andersen_refines_conflated_locks() {
        let m = parse(SPLITTABLE);
        let mut a = check(&m);
        let coarse = a.freeze();
        let la = loc_of_global(&a, "a");
        let lb = loc_of_global(&a, "b");
        assert!(coarse.same(la, lb), "Steensgaard conflates a and b");
        assert!(!coarse.strong_updatable(la));
        let fine = a.freeze_with(Backend::Andersen, &m);
        assert!(!fine.same(la, lb), "Andersen splits a from b");
        assert!(fine.strong_updatable(fine.find(la)));
        assert!(fine.strong_updatable(fine.find(lb)));
    }

    #[test]
    fn pinned_locs_cover_outcomes_and_restrict_params() {
        let m = parse(
            r#"
            lock locks[8];
            extern void work();
            void do_with_lock(lock *restrict l) {
                spin_lock(l);
                work();
                spin_unlock(l);
            }
            void foo(int i) { do_with_lock(&locks[i]); }
            "#,
        );
        let a = check(&m);
        let pinned = a.pinned_locs(&m);
        assert!(!pinned.is_empty());
        for r in &a.restricts {
            let (rho, rho_p) = r.locs.expect("checked restrict has locs");
            assert!(pinned.contains(&rho));
            assert!(pinned.contains(&rho_p));
        }
    }

    #[test]
    fn shared_analysis_memoizes_frozen_per_backend() {
        let m = parse(SPLITTABLE);
        let mut shared = SharedAnalysis::new(&m);
        assert_eq!(shared.backend(), Backend::Steensgaard);
        let steens = shared.base_frozen().1.clone();
        shared.set_backend(Backend::Andersen);
        assert_eq!(shared.backend(), Backend::Andersen);
        let anders = shared.base_frozen().1.clone();
        assert_ne!(steens, anders, "backends produce different snapshots");
        // Flipping back serves the original memo, not a recomputation of
        // the analysis: the snapshot is identical.
        shared.set_backend(Backend::Steensgaard);
        assert_eq!(&steens, shared.base_frozen().1);
        // Confine mode runs end-to-end under Andersen too.
        let mut shared2 = SharedAnalysis::new_with_backend(&m, Backend::Andersen);
        let ((_, bf), (_, cf)) = shared2.both_frozen();
        assert!(!bf.is_empty());
        assert!(!cf.is_empty());
    }

    /// The canonical location of global `name` in `a`'s state.
    fn loc_of_global(a: &Analysis, name: &str) -> Loc {
        a.state
            .vars
            .iter()
            .find_map(|v| match (v.name == name && v.fun.is_none(), &v.kind) {
                (true, localias_alias::VarKind::Addressed(l)) => Some(*l),
                _ => None,
            })
            .expect("global location")
    }
}
