//! The §7 syntactic heuristic for placing `confine?` candidates.
//!
//! For each statement (including nested blocks) we track which
//! `change_type` argument expressions it contains. When two or more
//! statements of the same block contain `change_type` calls whose
//! arguments match syntactically, the smallest statement sub-range
//! covering them becomes a `confine?` candidate, and — per the paper —
//! the new sub-block no longer reports a `change_type` to its parent.
//! Adjacent candidates for the same expression are implicitly merged by
//! taking the min/max statement span. An argument seen in only one
//! statement of a block bubbles up to the enclosing block's statement.
//!
//! For §6.2 scope inference we additionally propose candidates at every
//! *enclosing* block (a one-statement range around the containing
//! statement), provided the expression's free variables are still in
//! scope there; after constraint solving the caller keeps the outermost
//! successful candidate ([`select_outermost`]).
//!
//! Candidates are pre-filtered syntactically: the expression must have a
//! confinable shape (§6.1's identifiers/fields/dereferences restriction)
//! and no variable free in the expression may be assigned anywhere in the
//! candidate range (the register-variable complement of the effect-based
//! referential-transparency check).

use crate::outcome::ConfineSite;
use localias_ast::visit::{walk_expr, Visitor};
use localias_ast::{intrinsics, pretty, Block, Expr, ExprKind, Module, NodeId, Stmt, StmtKind};
use std::collections::{HashMap, HashSet};

/// A proposed `confine?` site: confine `expr` around statements
/// `start..=end` of `block`.
#[derive(Debug, Clone)]
pub struct ConfineCandidate {
    /// The block whose statements are covered.
    pub block: NodeId,
    /// First covered statement index.
    pub start: usize,
    /// Last covered statement index (inclusive).
    pub end: usize,
    /// The confined expression (a clone of one syntactic occurrence).
    pub expr: Expr,
    /// The printed expression, used as the syntactic-match key.
    pub key: String,
}

impl ConfineCandidate {
    /// This candidate's site, for outcome reporting.
    pub fn site(&self) -> ConfineSite {
        ConfineSite::Range {
            block: self.block,
            start: self.start,
            end: self.end,
        }
    }
}

/// Free variable names of an expression.
fn free_vars(e: &Expr) -> HashSet<String> {
    struct Fv(HashSet<String>);
    impl Visitor for Fv {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Var(x) = &e.kind {
                self.0.insert(x.name.to_string());
            }
            walk_expr(self, e);
        }
    }
    let mut v = Fv(HashSet::new());
    v.visit_expr(e);
    v.0
}

/// Names assigned (as whole variables) anywhere within a statement.
fn assigned_vars(s: &Stmt, out: &mut HashSet<String>) {
    struct Av<'a>(&'a mut HashSet<String>);
    impl Visitor for Av<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Assign(lhs, _) = &e.kind {
                if let ExprKind::Var(x) = &lhs.kind {
                    self.0.insert(x.name.to_string());
                }
            }
            walk_expr(self, e);
        }
    }
    let mut v = Av(out);
    v.visit_stmt(s);
}

/// `change_type` argument expressions called *directly* in this
/// statement's own expressions, *not* descending into nested blocks
/// (those report through their own scan).
fn direct_change_type_args(s: &Stmt) -> Vec<Expr> {
    struct Args(Vec<Expr>);
    impl Visitor for Args {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call(f, args) = &e.kind {
                if intrinsics::is_change_type(&f.name) {
                    self.0.extend(args.iter().cloned());
                }
            }
            walk_expr(self, e);
        }
        // Do not descend into nested statements via blocks: visit_stmt
        // default recursion handles expressions of *this* statement only
        // because we never call it on child statements.
    }
    let mut v = Args(Vec::new());
    match &s.kind {
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                v.visit_expr(e);
            }
        }
        StmtKind::If { cond, .. } => v.visit_expr(cond),
        StmtKind::While { cond, step, .. } => {
            v.visit_expr(cond);
            if let Some(step) = step {
                v.visit_expr(step);
            }
        }
        StmtKind::Return(Some(e)) => v.visit_expr(e),
        StmtKind::Restrict { init, .. } => v.visit_expr(init),
        // An explicit confine already handles its own expression.
        StmtKind::Confine { .. }
        | StmtKind::Return(None)
        | StmtKind::Block(_)
        | StmtKind::Break
        | StmtKind::Continue => {}
    }
    v.0
}

/// The nested blocks of a statement, in order.
fn child_blocks(s: &Stmt) -> Vec<&Block> {
    match &s.kind {
        StmtKind::Block(b) | StmtKind::While { body: b, .. } => vec![b],
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            let mut v = vec![then_blk];
            if let Some(e) = else_blk {
                v.push(e);
            }
            v
        }
        StmtKind::Restrict { body, .. } | StmtKind::Confine { body, .. } => vec![body],
        _ => Vec::new(),
    }
}

struct Scan {
    /// Also propose per-occurrence singletons and disjoint adjacent pairs
    /// (the paper's *general* strategy, approximated with a bounded
    /// candidate set), not just the min–max heuristic range.
    general: bool,
    out: Vec<ConfineCandidate>,
    /// `(block id, stmt index)` for each enclosing block of the current
    /// position.
    ancestors: Vec<(NodeId, usize)>,
    /// Names assigned anywhere within each enclosing statement subtree —
    /// parallel to `ancestors`.
    ancestor_assigned: Vec<HashSet<String>>,
    /// Scoped environment: name → stack of `(depth, stmt index)` binding
    /// sites. Depth 0 is globals/params. Avoids cloning visibility sets
    /// per statement (which made the heuristic cost more than the whole
    /// analysis on large modules).
    env: HashMap<String, Vec<(usize, usize)>>,
    seen: HashSet<(NodeId, usize, usize, String)>,
}

impl Scan {
    fn push_candidate(&mut self, block: NodeId, start: usize, end: usize, expr: &Expr) {
        let key = pretty::print_expr(expr);
        if self.seen.insert((block, start, end, key.clone())) {
            self.out.push(ConfineCandidate {
                block,
                start,
                end,
                expr: expr.clone(),
                key,
            });
        }
    }

    fn bind(&mut self, name: &str, depth: usize, idx: usize, undo: &mut Vec<String>) {
        self.env
            .entry(name.to_string())
            .or_default()
            .push((depth, idx));
        undo.push(name.to_string());
    }

    fn unbind_all(&mut self, undo: Vec<String>) {
        for name in undo {
            if let Some(stack) = self.env.get_mut(&name) {
                stack.pop();
                if stack.is_empty() {
                    self.env.remove(&name);
                }
            }
        }
    }

    /// Is `name` visible just before statement `idx` at nesting `depth`
    /// (i.e. bound in a strictly enclosing scope, or earlier in the same
    /// block)?
    fn visible_before(&self, name: &str, depth: usize, idx: usize) -> bool {
        self.env.get(name).is_some_and(|stack| {
            stack
                .iter()
                .any(|&(d, i)| d < depth || (d == depth && i < idx))
        })
    }

    /// Scans a block at nesting `depth` (function body = 1). Returns the
    /// `change_type` argument keys (with an example expression) that
    /// remain *unconsumed* and bubble up.
    fn block(&mut self, b: &Block, depth: usize) -> HashMap<String, Expr> {
        // First pass: per-statement keys (direct + bubbled from nested
        // blocks) and assigned names; the scoped env evolves in place.
        let mut per_stmt_keys: Vec<HashMap<String, Expr>> = Vec::with_capacity(b.stmts.len());
        let mut per_stmt_assigned: Vec<HashSet<String>> = Vec::with_capacity(b.stmts.len());
        let mut undo: Vec<String> = Vec::new();
        for (i, s) in b.stmts.iter().enumerate() {
            let mut assigned = HashSet::new();
            assigned_vars(s, &mut assigned);
            per_stmt_assigned.push(assigned.clone());

            let mut keys: HashMap<String, Expr> = HashMap::new();
            for a in direct_change_type_args(s) {
                if a.is_confinable_shape() {
                    keys.entry(pretty::print_expr(&a)).or_insert(a);
                }
            }

            // Recurse into nested blocks with ancestry bookkeeping. A
            // scoped-restrict binder is visible inside its own body only.
            self.ancestors.push((b.id, i));
            self.ancestor_assigned.push(assigned);
            let mut inner_undo = Vec::new();
            if let StmtKind::Restrict { name, .. } = &s.kind {
                self.bind(&name.name, depth + 1, 0, &mut inner_undo);
            }
            for child in child_blocks(s) {
                for (k, e) in self.block(child, depth + 1) {
                    keys.entry(k).or_insert(e);
                }
            }
            self.unbind_all(inner_undo);
            self.ancestors.pop();
            self.ancestor_assigned.pop();

            if let StmtKind::Decl { name, .. } = &s.kind {
                self.bind(&name.name, depth, i, &mut undo);
            }
            per_stmt_keys.push(keys);
        }

        // Second pass: group by key across statements of this block.
        // (All of this block's declarations are in the env with their
        // statement index, so visibility at a range start is a lookup.)
        let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, keys) in per_stmt_keys.iter().enumerate() {
            for k in keys.keys() {
                by_key.entry(k.clone()).or_default().push(i);
            }
        }

        let mut bubbled: HashMap<String, Expr> = HashMap::new();
        let mut sorted_keys: Vec<&String> = by_key.keys().collect();
        sorted_keys.sort();
        for k in sorted_keys {
            let stmts = &by_key[k];
            let example = per_stmt_keys[stmts[0]][k].clone();
            if stmts.len() < 2 {
                bubbled.insert(k.clone(), example);
                continue;
            }
            let start = *stmts.first().expect("nonempty");
            let end = *stmts.last().expect("nonempty");

            // Syntactic referential-transparency pre-filter: no free
            // variable of the expression may be assigned in the range.
            let fv = free_vars(&example);
            let range_ok = |lo: usize,
                            hi: usize,
                            per_stmt_assigned: &[HashSet<String>],
                            fv: &HashSet<String>| {
                let assigned: HashSet<&String> =
                    per_stmt_assigned[lo..=hi].iter().flatten().collect();
                !fv.iter().any(|v| assigned.contains(v))
            };
            if !range_ok(start, end, &per_stmt_assigned, &fv) {
                // The general strategy may still find safe sub-ranges.
                if self.general {
                    for &si in stmts {
                        if range_ok(si, si, &per_stmt_assigned, &fv)
                            && fv.iter().all(|v| self.visible_before(v, depth, si))
                        {
                            self.push_candidate(b.id, si, si, &example);
                        }
                    }
                }
                continue;
            }
            // Free variables must be visible at the range start.
            if !fv.iter().all(|v| self.visible_before(v, depth, start)) {
                continue;
            }

            self.push_candidate(b.id, start, end, &example);

            if self.general {
                // Per-occurrence singletons and disjoint adjacent pairs —
                // if the full range fails to verify, a sub-region may
                // still succeed (the paper's greedy merge applied to a
                // bounded candidate ladder).
                for &si in stmts {
                    self.push_candidate(b.id, si, si, &example);
                }
                let mut k = 0;
                while k + 1 < stmts.len() {
                    let (lo, hi) = (stmts[k], stmts[k + 1]);
                    if range_ok(lo, hi, &per_stmt_assigned, &fv) {
                        self.push_candidate(b.id, lo, hi, &example);
                    }
                    k += 2;
                }
            }

            // §6.2 scope inference: also propose at every enclosing
            // block, outermost kept if it succeeds. Ancestor depth in the
            // stack is its index + 1 (function body = 1).
            for depth_ix in (0..self.ancestors.len()).rev() {
                let (ab, ai) = self.ancestors[depth_ix];
                let a_depth = depth_ix + 1;
                if !fv.iter().all(|v| self.visible_before(v, a_depth, ai)) {
                    break; // further out, still fewer names visible
                }
                if fv
                    .iter()
                    .any(|v| self.ancestor_assigned[depth_ix].contains(v))
                {
                    break; // the enclosing statement assigns a free var
                }
                self.push_candidate(ab, ai, ai, &example);
            }
        }
        self.unbind_all(undo);
        bubbled
    }
}

/// Proposes `confine?` candidates for every function in `m`.
///
/// # Example
///
/// ```
/// use localias_ast::parse_module;
/// use localias_core::heuristic::propose_confines;
///
/// let m = parse_module(
///     "m",
///     r#"
///     lock locks[4];
///     extern void work();
///     void f(int i) {
///         spin_lock(&locks[i]);
///         work();
///         spin_unlock(&locks[i]);
///     }
///     "#,
/// )?;
/// let cands = propose_confines(&m);
/// assert!(cands.iter().any(|c| c.key == "&(locks[i])" && c.start == 0 && c.end == 2));
/// # Ok::<(), localias_ast::ParseError>(())
/// ```
pub fn propose_confines(m: &Module) -> Vec<ConfineCandidate> {
    propose_with(m, false)
}

/// Proposes candidates with the paper's *general* §7 strategy
/// (approximated): in addition to the heuristic's min–max ranges, every
/// statement containing an occurrence gets a singleton candidate and
/// consecutive occurrences get disjoint pair candidates. After solving,
/// greedily keeping the outermost/largest successes reconstructs the
/// merged sub-blocks ("adjacent confines of the same expression can be
/// combined").
pub fn propose_confines_general(m: &Module) -> Vec<ConfineCandidate> {
    propose_with(m, true)
}

fn propose_with(m: &Module, general: bool) -> Vec<ConfineCandidate> {
    let mut scan = Scan {
        general,
        out: Vec::new(),
        ancestors: Vec::new(),
        ancestor_assigned: Vec::new(),
        env: HashMap::new(),
        seen: HashSet::new(),
    };
    let mut global_undo = Vec::new();
    for g in m.globals() {
        scan.bind(&g.name.name, 0, 0, &mut global_undo);
    }
    for f in m.functions() {
        let mut param_undo = Vec::new();
        for p in &f.params {
            scan.bind(&p.name.name, 0, 0, &mut param_undo);
        }
        let _ = scan.block(&f.body, 1);
        scan.unbind_all(param_undo);
    }
    scan.out
}

/// Keeps, for each confined expression key, only the outermost successful
/// candidates (drop successes nested inside another success for the same
/// key).
///
/// `candidates` and `successes` are parallel: `successes[i]` says whether
/// candidate `i` was verified. Containment is judged structurally: a
/// candidate is dropped if another successful candidate with the same key
/// encloses it (same block and covering range, or an ancestor block —
/// approximated here by the ancestry recorded during proposal; candidates
/// produced by [`propose_confines`] for the same key are totally ordered
/// by scope).
pub fn select_outermost(
    candidates: &[ConfineCandidate],
    successes: &[bool],
    enclosing: &dyn Fn(&ConfineCandidate, &ConfineCandidate) -> bool,
) -> Vec<usize> {
    let mut keep = Vec::new();
    'outer: for i in 0..candidates.len() {
        if !successes[i] {
            continue;
        }
        for j in 0..candidates.len() {
            if i != j
                && successes[j]
                && candidates[j].key == candidates[i].key
                && enclosing(&candidates[j], &candidates[i])
            {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;

    #[test]
    fn pairs_in_one_block_form_a_range() {
        let m = parse_module(
            "m",
            r#"
            lock locks[4];
            extern void work();
            void f(int i) {
                work();
                spin_lock(&locks[i]);
                work();
                spin_unlock(&locks[i]);
                work();
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        let c = cands
            .iter()
            .find(|c| c.key == "&(locks[i])")
            .expect("candidate for &locks[i]");
        assert_eq!((c.start, c.end), (1, 3));
    }

    #[test]
    fn single_site_bubbles_to_enclosing_block() {
        // lock in an if-branch, unlock at the outer level: the inner
        // block cannot pair them, the outer one can.
        let m = parse_module(
            "m",
            r#"
            lock mu;
            void f(int c) {
                if (c) {
                    spin_lock(&mu);
                }
                spin_unlock(&mu);
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        let f_body_cands: Vec<_> = cands.iter().filter(|c| c.key == "&(mu)").collect();
        assert!(
            f_body_cands.iter().any(|c| c.start == 0 && c.end == 1),
            "outer block pairs the bubbled keys: {f_body_cands:?}"
        );
    }

    #[test]
    fn assigned_index_blocks_candidate() {
        // `i` is reassigned between the lock and unlock: &locks[i] is not
        // referentially transparent, the heuristic must not propose it.
        let m = parse_module(
            "m",
            r#"
            lock locks[4];
            void f(int i) {
                spin_lock(&locks[i]);
                i = i + 1;
                spin_unlock(&locks[i]);
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        assert!(
            cands.iter().all(|c| c.key != "&(locks[i])"),
            "reassigned free variable must block the candidate: {cands:?}"
        );
    }

    #[test]
    fn non_confinable_shapes_are_skipped() {
        let m = parse_module(
            "m",
            r#"
            extern lock *get();
            void f() {
                spin_lock(get());
                spin_unlock(get());
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        assert!(cands.is_empty(), "calls are not confinable: {cands:?}");
    }

    #[test]
    fn different_arguments_do_not_pair() {
        let m = parse_module(
            "m",
            r#"
            lock a; lock b;
            void f() {
                spin_lock(&a);
                spin_unlock(&b);
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        assert!(cands.is_empty(), "&a and &b must not pair: {cands:?}");
    }

    #[test]
    fn enclosing_scopes_are_proposed() {
        let m = parse_module(
            "m",
            r#"
            lock mu;
            void f(int c) {
                if (c) {
                    spin_lock(&mu);
                    spin_unlock(&mu);
                }
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        // Minimal: inside the if-block; enclosing: the function body.
        assert!(cands.len() >= 2, "{cands:?}");
        assert!(cands.iter().any(|c| (c.start, c.end) == (0, 1)));
        assert!(cands.iter().any(|c| (c.start, c.end) == (0, 0)));
    }

    #[test]
    fn scoped_variables_do_not_escape_their_block() {
        // `d` is declared inside the inner block; an enclosing candidate
        // at function level would have `d` out of scope.
        let m = parse_module(
            "m",
            r#"
            struct dev { lock mu; };
            struct dev devs[4];
            void f(int i) {
                {
                    struct dev *d = &devs[i];
                    spin_lock(&d->mu);
                    spin_unlock(&d->mu);
                }
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        let inner: Vec<_> = cands.iter().filter(|c| c.key == "&(d->mu)").collect();
        assert!(!inner.is_empty());
        // All candidates for &d->mu must lie in the inner block (where d
        // is visible); the function body block must not host one.
        let f = m.function("f").unwrap();
        assert!(
            inner.iter().all(|c| c.block != f.body.id),
            "candidate must not float above d's scope: {inner:?}"
        );
    }

    #[test]
    fn select_outermost_prefers_enclosing_success() {
        let m = parse_module(
            "m",
            r#"
            lock mu;
            void f(int c) {
                if (c) {
                    spin_lock(&mu);
                    spin_unlock(&mu);
                }
            }
            "#,
        )
        .unwrap();
        let cands = propose_confines(&m);
        let successes = vec![true; cands.len()];
        let f = m.function("f").unwrap();
        let enclosing = |a: &ConfineCandidate, b: &ConfineCandidate| {
            // In this test the function body encloses the if-block.
            a.block == f.body.id && b.block != f.body.id
        };
        let kept = select_outermost(&cands, &successes, &enclosing);
        assert_eq!(kept.len(), 1);
        assert_eq!(cands[kept[0]].block, f.body.id);
    }
}
