//! Diagnostics and per-annotation/per-candidate outcomes.

use localias_ast::{NodeId, Span};
use std::fmt;

/// Why a `restrict`/`confine` was rejected (or an error reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reason {
    /// The restricted location is accessed through an alias other than
    /// the restricted name within the scope (`ρ ∈ L2`).
    AliasAccessed,
    /// The fresh location escapes the scope
    /// (`ρ' ∈ locs(Γ, τ1, τ2)`).
    Escapes,
    /// The confined expression has a write or allocation effect
    /// (violates referential transparency, §6.1).
    ConfinedExprHasSideEffect,
    /// A location the confined expression reads is written or allocated
    /// within the scope (violates referential transparency, §6.1).
    ScopeWritesConfinedInput,
    /// A register variable free in the confined expression is assigned
    /// within the scope (the syntactic complement of the effect-based
    /// referential-transparency check for effect-free locals).
    RegisterReassigned,
    /// The underlying may-alias analysis lost track of the location (a
    /// type mismatch or cast tainted it).
    Tainted,
    /// The annotated expression is not a pointer.
    NotAPointer,
    /// The confined expression's syntactic shape is not supported
    /// (contains a call, assignment, `new`, or arithmetic).
    NotConfinableShape,
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reason::AliasAccessed => "the location is accessed through an alias inside the scope",
            Reason::Escapes => "the restricted pointer escapes its scope",
            Reason::ConfinedExprHasSideEffect => {
                "the confined expression has a write or allocation effect"
            }
            Reason::ScopeWritesConfinedInput => {
                "the scope writes a location the confined expression reads"
            }
            Reason::RegisterReassigned => {
                "a variable the confined expression mentions is reassigned in the scope"
            }
            Reason::Tainted => "the alias analysis lost track of the location (cast?)",
            Reason::NotAPointer => "the expression is not a pointer",
            Reason::NotConfinableShape => {
                "the expression contains a call, assignment, or allocation"
            }
        };
        write!(f, "{s}")
    }
}

/// A diagnostic attached to a node.
#[derive(Debug, Clone)]
pub struct Diag {
    /// The node the diagnostic refers to.
    pub at: NodeId,
    /// Its span, when known.
    pub span: Span,
    /// The message.
    pub msg: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.msg, self.span)
    }
}

/// Verdict on one *explicit* `restrict` annotation (parameter,
/// declaration, or scoped statement).
#[derive(Debug, Clone)]
pub struct RestrictOutcome {
    /// The annotation's statement/function node.
    pub at: NodeId,
    /// The restricted name.
    pub name: String,
    /// Rejection reasons; empty means the annotation checks.
    pub reasons: Vec<Reason>,
    /// The original location `ρ` and the fresh scope-local `ρ'`
    /// (canonical at analysis end). Downstream flow-sensitive analyses
    /// use these to transfer state across the scope boundary.
    pub locs: Option<(localias_alias::Loc, localias_alias::Loc)>,
}

impl RestrictOutcome {
    /// Whether the annotation was verified.
    pub fn ok(&self) -> bool {
        self.reasons.is_empty()
    }
}

/// Verdict on one `let-or-restrict` inference candidate (§5).
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// The declaration's statement node.
    pub at: NodeId,
    /// The declared name.
    pub name: String,
    /// `true` if the binding can soundly be a `restrict`.
    pub restricted: bool,
    /// `(ρ, ρ')` for the candidate (after demotion the two are unified,
    /// so the pair is only distinct when `restricted`).
    pub locs: Option<(localias_alias::Loc, localias_alias::Loc)>,
}

/// Where a confine (candidate) lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfineSite {
    /// An explicit `confine (e) { ... }` statement.
    Stmt(NodeId),
    /// An inferred candidate covering statements `start..=end` of a block.
    Range {
        /// The block's node id.
        block: NodeId,
        /// First covered statement index.
        start: usize,
        /// Last covered statement index.
        end: usize,
    },
}

/// Verdict on one `confine` annotation or `confine?` candidate (§6).
#[derive(Debug, Clone)]
pub struct ConfineOutcome {
    /// Where the confine sits.
    pub site: ConfineSite,
    /// The confined expression, printed.
    pub expr: String,
    /// `true` for an explicit annotation (checked), `false` for an
    /// inference candidate.
    pub explicit: bool,
    /// Rejection reasons; empty means the confine holds (for candidates:
    /// inference succeeded).
    pub reasons: Vec<Reason>,
    /// `true` if the candidate never materialized (no occurrence of the
    /// expression was seen in its scope).
    pub unused: bool,
    /// The original location `ρ` and the fresh scope-local `ρ'` for
    /// materialized units.
    pub locs: Option<(localias_alias::Loc, localias_alias::Loc)>,
}

impl ConfineOutcome {
    /// Whether the confine was verified / successfully inferred.
    pub fn ok(&self) -> bool {
        self.reasons.is_empty() && !self.unused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_display() {
        for r in [
            Reason::AliasAccessed,
            Reason::Escapes,
            Reason::ConfinedExprHasSideEffect,
            Reason::ScopeWritesConfinedInput,
            Reason::RegisterReassigned,
            Reason::Tainted,
            Reason::NotAPointer,
            Reason::NotConfinableShape,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn outcome_ok() {
        let o = RestrictOutcome {
            at: NodeId(0),
            name: "p".into(),
            reasons: vec![],
            locs: None,
        };
        assert!(o.ok());
        let o = RestrictOutcome {
            at: NodeId(0),
            name: "p".into(),
            reasons: vec![Reason::Escapes],
            locs: None,
        };
        assert!(!o.ok());
    }
}
