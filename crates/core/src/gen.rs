//! Constraint generation: the paper's Figure 3 rules, §5 `let-or-restrict`
//! inference, and §6 `confine?` inference, implemented as [`Hooks`] over
//! the shared typing walk of `localias-alias`.
//!
//! ## Scope frames and effects
//!
//! Every lexical extent gets an effect variable; reads/writes/allocs are
//! included into the innermost frame, and a frame's effect flows into its
//! parent when it is popped. Function frames are the exception: their raw
//! body effect is *masked* by the `(Down)` rule — intersected with the
//! locations visible through globals and the function's own signature —
//! before becoming the function's effect summary, which call sites then
//! include. This is exactly the paper's §3.1 observation that `(Down)` is
//! only profitably applied at function boundaries.
//!
//! ## Environments
//!
//! `ε_Γ` is maintained incrementally (the paper's §4 memoization): each
//! binder allocates a fresh environment variable that includes the old
//! one plus the `ε_τ` chain of the bound type. The `ε_τ` chains
//! themselves (one variable per abstract location, containing its
//! `Mention` atom plus the chains of everything reachable from its
//! content type) are emitted *after* the walk, over the final unified
//! location structure, by [`Gen::finalize`].
//!
//! ## Restrict
//!
//! A `restrict` binder gives its name a fresh location `ρ'` sharing the
//! original `ρ`'s content. Checking emits `ρ ∉ L2` and `ρ' ∉
//! locs(Γ, τ1, τ_ret)` as checked disinclusions plus the `{ρ}`
//! restriction effect; inference replaces them with the §5 conditional
//! constraints whose firing demotes the candidate (unifies `ρ = ρ'`).
//!
//! ## Confine
//!
//! `confine` candidates watch for syntactic occurrences of their
//! expression inside their scope. The first occurrence is evaluated
//! normally with its effect captured (that is `L1`); every occurrence is
//! then re-typed to `ref ρ'(τ1)` with effect `p'` — the translation
//! `confine e1 in e2[e1/x] = restrict x = e1 in e2` performed without
//! rewriting the AST. Referential transparency adds the §6.1 guards: `L1`
//! must be write/alloc-free, and nothing `L1` reads may be written or
//! allocated in `L2`.

use crate::heuristic::ConfineCandidate;
use crate::outcome::{
    CandidateOutcome, ConfineOutcome, ConfineSite, Diag, Reason, RestrictOutcome,
};
use localias_alias::{BindSite, Hooks, Loc, ScopeKind, State, Ty, VarId, VarKind};
use localias_ast::visit::{walk_expr, Visitor};
use localias_ast::{pretty, Block, Expr, ExprKind, NodeId, Span};
use localias_effects::{
    Action, ConstraintSystem, EffVar, Effect, EffectKind, FlagId, Guard, KindMask, LocVars,
};
use std::collections::{HashMap, HashSet};

/// What to generate beyond plain checking.
#[derive(Debug)]
pub struct Options {
    /// Treat every initialized pointer declaration as a §5
    /// `let-or-restrict` candidate.
    pub infer_restrict: bool,
    /// `confine?` candidates (typically from
    /// [`crate::heuristic::propose_confines`]).
    pub confine_candidates: Vec<ConfineCandidate>,
    /// Treat every unannotated pointer parameter as a restrict candidate
    /// — the natural extension of §5 to function boundaries, inferring
    /// the annotation Figure 1 asks the programmer to write.
    pub infer_restrict_params: bool,
    /// Apply the `(Down)` rule at function boundaries (§3.1). On by
    /// default; turning it off is an *ablation* switch that demonstrates
    /// why the rule exists — without it, effects on callee-local
    /// temporaries leak into callers and restrict checking fails
    /// spuriously (and recursive functions over-unify).
    pub apply_down: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            infer_restrict: false,
            confine_candidates: Vec::new(),
            infer_restrict_params: false,
            apply_down: true,
        }
    }
}

/// Why a frame exists.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FrameKind {
    /// Top level.
    Module,
    /// A function body; carries the function name.
    Fun(String),
    /// A block / restrict body / confine body scope.
    Scope,
    /// One statement of a block.
    Stmt { block: NodeId },
    /// Captures the effect of evaluating a confined expression (`L1`).
    Capture,
}

#[derive(Debug)]
struct Frame {
    kind: FrameKind,
    eff: EffVar,
    /// Current `ε_Γ` for real scopes; `None` for stmt/capture frames.
    gamma: Option<EffVar>,
}

/// Per-function effect summary variables.
#[derive(Debug, Clone, Copy)]
struct FunEff {
    /// Unmasked body effect.
    raw: EffVar,
    /// `(Down)`-masked summary included at call sites.
    summary: EffVar,
}

/// A pending `restrict`/candidate binder between `bind_ty` and `on_bind`.
#[derive(Debug)]
struct PendingBind {
    rho: Loc,
    rho_p: Loc,
    gamma_pre: EffVar,
    explicit: bool,
}

/// State of one confine unit (explicit annotation or `confine?`
/// candidate).
#[derive(Debug)]
struct Unit {
    site: ConfineSite,
    key: String,
    /// Leftmost identifier of the key (interception pre-filter).
    root: Option<String>,
    explicit: bool,
    fun: Option<String>,
    /// The scope effect `L2`.
    l2: EffVar,
    /// `ε_Γ` snapshot at the confine point.
    gamma: EffVar,
    /// Enclosing effect the confine's own effects flow into.
    parent_eff: EffVar,
    /// Carries the confine's own restriction effect `{ρ}`: flows into
    /// the parent effect and into the `L2` of every *sibling* scope, but
    /// not into this unit's own `L2` (the `{ρ}` of the (Restrict)
    /// conclusion is outside `e2`).
    xeff: EffVar,
    /// Demotion flag (candidates) — set means "could not confine".
    demoted: FlagId,
    /// Reason flags: `(flag, reason)`; a set flag reports its reason.
    reason_flags: Vec<(FlagId, Reason)>,
    /// Reasons known before solving (shape, taint, ...).
    pre_reasons: Vec<Reason>,
    /// Filled at materialization.
    mat: Option<Mat>,
    /// `true` once the unit cannot proceed (bad shape / not a pointer).
    aborted: bool,
    active: bool,
}

#[derive(Debug)]
struct Mat {
    rho: Loc,
    rho_p: Loc,
    /// The occurrence-effect variable `p'`.
    p_var: EffVar,
}

/// A statement-range registration: statement effects of `block` with
/// index in `start..=end` flow into `l2`.
#[derive(Debug, Clone, Copy)]
struct RangeReg {
    start: usize,
    end: usize,
    l2: EffVar,
    /// The owning unit's restriction-effect variable, if the registration
    /// belongs to a confine unit (None for plain declaration scopes,
    /// whose restriction effect already flows through their statement
    /// frame).
    xeff: Option<EffVar>,
}

/// Leftmost identifier of an expression, owned (for unit records).
fn root_of(e: &Expr) -> Option<String> {
    Gen::leftmost_ident(e).map(str::to_string)
}

/// The pieces a restrict binder's constraints are wired from.
#[derive(Debug, Clone, Copy)]
struct RestrictWiring {
    /// The original location `ρ`.
    rho: Loc,
    /// The fresh scope-local `ρ'`.
    rho_p: Loc,
    /// `ε_Γ` before the binding (the escape check's environment).
    gamma_pre: EffVar,
    /// The scope effect `L2`.
    l2: EffVar,
    /// Where the restriction's own `{ρ}` effect flows.
    parent_eff: EffVar,
}

/// Which outcome a checked disinclusion tag belongs to.
#[derive(Debug, Clone, Copy)]
enum TagTarget {
    Restrict(usize),
    Confine(usize),
}

/// The constraint generator. Implements [`Hooks`]; drive it with
/// [`localias_alias::analyze_with`] and then [`Gen::finalize`].
#[derive(Debug)]
pub struct Gen {
    /// The constraint system under construction.
    pub cs: ConstraintSystem,
    /// Memoized per-location `ε_ρ` variables.
    pub loc_vars: LocVars,
    opts: Options,
    frames: Vec<Frame>,
    gamma_globals: EffVar,
    fun_effs: HashMap<String, FunEff>,
    struct_eps: HashMap<String, EffVar>,
    pending_bind: Option<PendingBind>,
    pending_confine_stmt: Vec<NodeId>,
    /// Explicit confine units awaiting their body scope, by stmt id.
    pending_body: HashMap<NodeId, usize>,
    units: Vec<Unit>,
    /// Active unit indices by expression key (outermost first).
    active_by_key: HashMap<String, Vec<usize>>,
    /// Reference counts of the leftmost identifiers of active keys — a
    /// cheap pre-filter so interception does not print every expression
    /// to a string.
    active_roots: HashMap<String, usize>,
    /// Range registrations (confine? candidates and decl scopes) by block.
    range_regs: HashMap<NodeId, Vec<RangeReg>>,
    /// Confine? candidates waiting to activate, by `(block, start)`.
    pending_ranges: HashMap<(NodeId, usize), Vec<usize>>,
    /// Stack of in-flight first-occurrence evaluations.
    awaiting: Vec<(NodeId, usize)>,
    /// Index of the statement currently being walked, per block.
    stmt_indices: HashMap<NodeId, usize>,
    /// Tag bookkeeping for checked disinclusions.
    tag_targets: Vec<(TagTarget, Reason)>,
    /// Outcome accumulators.
    pub diags: Vec<Diag>,
    restrict_outcomes: Vec<RestrictOutcome>,
    candidate_flags: Vec<(CandidateOutcome, FlagId)>,
    /// Failed explicit annotations whose `ρ'` must lose its
    /// strong-update eligibility after solving.
    mult_fixups: Vec<(usize, Loc)>,
}

impl Gen {
    /// Creates a generator for a module analysis with the given options.
    pub fn new(opts: Options) -> Self {
        let mut cs = ConstraintSystem::new();
        let gamma_globals = cs.fresh_var("ε_Γ globals");
        let module_eff = cs.fresh_var("module eff");
        let mut pending_ranges: HashMap<(NodeId, usize), Vec<usize>> = HashMap::new();
        let mut units = Vec::new();
        for (i, cand) in opts.confine_candidates.iter().enumerate() {
            pending_ranges
                .entry((cand.block, cand.start))
                .or_default()
                .push(i);
            // Units are created eagerly so indices line up with
            // `opts.confine_candidates`; variables are cheap.
            let l2 = cs.fresh_var("L2 confine?");
            let xeff = cs.fresh_var("xeff confine?");
            let demoted = cs.fresh_flag();
            let root = root_of(&cand.expr);
            units.push(Unit {
                site: cand.site(),
                key: cand.key.clone(),
                root,
                explicit: false,
                fun: None,
                l2,
                gamma: gamma_globals,   // overwritten at activation
                parent_eff: module_eff, // overwritten at activation
                xeff,
                demoted,
                reason_flags: Vec::new(),
                pre_reasons: Vec::new(),
                mat: None,
                aborted: false,
                active: false,
            });
        }
        Gen {
            cs,
            loc_vars: LocVars::new(),
            opts,
            frames: vec![Frame {
                kind: FrameKind::Module,
                eff: module_eff,
                gamma: Some(gamma_globals),
            }],
            gamma_globals,
            fun_effs: HashMap::new(),
            struct_eps: HashMap::new(),
            pending_bind: None,
            pending_confine_stmt: Vec::new(),
            pending_body: HashMap::new(),
            units,
            active_by_key: HashMap::new(),
            active_roots: HashMap::new(),
            range_regs: HashMap::new(),
            pending_ranges,
            awaiting: Vec::new(),
            stmt_indices: HashMap::new(),
            tag_targets: Vec::new(),
            diags: Vec::new(),
            restrict_outcomes: Vec::new(),
            candidate_flags: Vec::new(),
            mult_fixups: Vec::new(),
        }
    }

    // ---- Small helpers ----------------------------------------------------

    fn top_eff(&self) -> EffVar {
        self.frames.last().expect("frame stack never empty").eff
    }

    fn cur_gamma(&self) -> EffVar {
        self.frames
            .iter()
            .rev()
            .find_map(|f| f.gamma)
            .expect("module frame has gamma")
    }

    fn loc_var(&mut self, st: &mut State, l: Loc) -> EffVar {
        let r = st.locs.find(l);
        self.loc_vars.var_for(&mut self.cs, r)
    }

    fn struct_var(&mut self, name: &str) -> EffVar {
        if let Some(&v) = self.struct_eps.get(name) {
            return v;
        }
        let v = self.cs.fresh_var("ε_struct");
        self.struct_eps.insert(name.to_string(), v);
        v
    }

    /// `ε_τ` pieces of a type: the location chains reachable from it.
    fn ty_eps(&mut self, st: &mut State, ty: &Ty) -> Option<EffVar> {
        match ty {
            Ty::Ref(l) => Some(self.loc_var(st, *l)),
            Ty::Struct(s) => {
                let s = s.clone();
                Some(self.struct_var(&s))
            }
            _ => None,
        }
    }

    fn fun_eff(&mut self, name: &str) -> FunEff {
        if let Some(&fe) = self.fun_effs.get(name) {
            return fe;
        }
        let raw = self.cs.fresh_var("raw eff");
        let summary = self.cs.fresh_var("summary eff");
        let fe = FunEff { raw, summary };
        self.fun_effs.insert(name.to_string(), fe);
        fe
    }

    fn emit(&mut self, st: &mut State, kind: EffectKind, l: Loc) {
        let r = st.locs.find(l);
        let eff = self.top_eff();
        self.cs.include(Effect::atom(kind, r), eff);
    }

    /// The leftmost identifier of an expression (the cheap signature the
    /// interception pre-filter keys on).
    fn leftmost_ident(e: &Expr) -> Option<&str> {
        match &e.kind {
            ExprKind::Var(x) => Some(&x.name),
            ExprKind::Unary(_, i) | ExprKind::New(i) | ExprKind::Cast(_, i) => {
                Self::leftmost_ident(i)
            }
            ExprKind::Field(b, _) | ExprKind::Arrow(b, _) | ExprKind::Index(b, _) => {
                Self::leftmost_ident(b)
            }
            ExprKind::Binary(_, a, _) | ExprKind::Assign(a, _) => Self::leftmost_ident(a),
            ExprKind::Int(_) | ExprKind::Call(_, _) => None,
        }
    }

    fn activate_key(&mut self, ix: usize) {
        let key = self.units[ix].key.clone();
        if let Some(root) = self.units[ix].root.clone() {
            *self.active_roots.entry(root).or_insert(0) += 1;
        }
        self.active_by_key.entry(key).or_default().push(ix);
    }

    fn deactivate_key(&mut self, ix: usize) {
        if let Some(stack) = self.active_by_key.get_mut(&self.units[ix].key) {
            stack.retain(|&i| i != ix);
        }
        if let Some(root) = &self.units[ix].root {
            if let Some(n) = self.active_roots.get_mut(root) {
                *n -= 1;
                if *n == 0 {
                    self.active_roots.remove(root);
                }
            }
        }
    }

    fn tag(&mut self, target: TagTarget, reason: Reason) -> u32 {
        let t = self.tag_targets.len() as u32;
        self.tag_targets.push((target, reason));
        t
    }

    /// The escape set `locs(Γ, τ1, τ_ret)` for a restriction at the
    /// current point: `gamma_pre ∪ ε(content(ρ)) ∪ ε(return type)`.
    fn escape_var(&mut self, st: &mut State, gamma_pre: EffVar, rho: Loc) -> EffVar {
        let esc = self.cs.fresh_var("escape set");
        self.cs.include(Effect::var(gamma_pre), esc);
        let content = st.locs.content(rho);
        if let Some(v) = self.ty_eps(st, &content) {
            self.cs.include(Effect::var(v), esc);
        }
        if let Some(fun) = st.current_fun().map(str::to_string) {
            if let Some(sig) = st.funs.get(&fun) {
                let ret = sig.ret.clone();
                if let Some(v) = self.ty_eps(st, &ret) {
                    self.cs.include(Effect::var(v), esc);
                }
            }
        }
        esc
    }

    /// Registers a statement range for `block` and wires restriction
    /// effects between it and every already-registered range of the same
    /// block. A unit's `{ρ}` effect sits where the confine construct
    /// itself sits — *outside its own scope* — so:
    ///
    /// * an **enclosed** range's effect is visible to its encloser's
    ///   `L2` (the inner confine is a statement of the outer scope);
    /// * an **enclosing** range's effect is *not* visible to the inner
    ///   `L2`;
    /// * lexically impossible partial overlaps are wired both ways,
    ///   conservatively.
    ///
    /// Equal ranges count as the later registration nesting inside the
    /// earlier one (the paper's innermost-first translation order).
    fn register_range(&mut self, block: NodeId, reg: RangeReg) {
        let others: Vec<RangeReg> = self
            .range_regs
            .get(&block)
            .map(|v| v.to_vec())
            .unwrap_or_default();
        for other in others {
            let intersects = reg.start <= other.end && other.start <= reg.end;
            if !intersects {
                continue;
            }
            let other_encloses_reg = other.start <= reg.start && reg.end <= other.end;
            let reg_encloses_other = reg.start <= other.start && other.end <= reg.end;
            // `reg` nested in `other` (ties nest the newcomer inside).
            if other_encloses_reg {
                if let Some(x) = reg.xeff {
                    self.cs.include(Effect::var(x), other.l2);
                }
            } else if reg_encloses_other {
                if let Some(x) = other.xeff {
                    self.cs.include(Effect::var(x), reg.l2);
                }
            } else {
                if let Some(x) = other.xeff {
                    self.cs.include(Effect::var(x), reg.l2);
                }
                if let Some(x) = reg.xeff {
                    self.cs.include(Effect::var(x), other.l2);
                }
            }
        }
        self.range_regs.entry(block).or_default().push(reg);
    }

    /// Demotion action for an inference candidate.
    fn demote_action(rho: Loc, rho_p: Loc, flags: Vec<FlagId>) -> Action {
        Action {
            unify: vec![(rho, rho_p)],
            include: vec![],
            flags,
        }
    }

    // ---- Restrict wiring ---------------------------------------------------

    /// Wires an *explicit* restrict check: `ρ ∉ L2`, `ρ' ∉ esc`, and the
    /// `{ρ}` restriction effect into `wiring.parent_eff`.
    fn wire_restrict_check(&mut self, st: &mut State, name: &str, at: NodeId, w: RestrictWiring) {
        let RestrictWiring {
            rho,
            rho_p,
            gamma_pre,
            l2,
            parent_eff,
        } = w;
        let idx = self.restrict_outcomes.len();
        self.restrict_outcomes.push(RestrictOutcome {
            at,
            name: name.to_string(),
            reasons: Vec::new(),
            locs: Some((rho, rho_p)),
        });
        let t1 = self.tag(TagTarget::Restrict(idx), Reason::AliasAccessed);
        self.cs.check_not_in(rho, KindMask::ACCESS, l2, t1);
        let esc = self.escape_var(st, gamma_pre, rho);
        let t2 = self.tag(TagTarget::Restrict(idx), Reason::Escapes);
        self.cs.check_not_in(rho_p, KindMask::MENTION, esc, t2);
        self.cs
            .include(Effect::atom(EffectKind::Write, rho), parent_eff);
        self.mult_fixups.push((idx, rho_p));
    }

    /// Wires a §5 `let-or-restrict` candidate: conditional demotions plus
    /// the conditional extra effects.
    fn wire_restrict_candidate(
        &mut self,
        st: &mut State,
        name: &str,
        at: NodeId,
        w: RestrictWiring,
    ) {
        let RestrictWiring {
            rho,
            rho_p,
            gamma_pre,
            l2,
            parent_eff,
        } = w;
        let flag = self.cs.fresh_flag();
        self.candidate_flags.push((
            CandidateOutcome {
                at,
                name: name.to_string(),
                restricted: false, // patched after solving
                locs: Some((rho, rho_p)),
            },
            flag,
        ));
        // ρ accessed in the scope ⇒ must be a let.
        self.cs.conditional(
            Guard::LocIn {
                loc: rho,
                kinds: KindMask::ACCESS,
                var: l2,
            },
            Self::demote_action(rho, rho_p, vec![flag]),
        );
        // ρ' escapes ⇒ must be a let.
        let esc = self.escape_var(st, gamma_pre, rho);
        self.cs.conditional(
            Guard::LocIn {
                loc: rho_p,
                kinds: KindMask::MENTION,
                var: esc,
            },
            Self::demote_action(rho, rho_p, vec![flag]),
        );
        // If the restricted pointer is actually used, the restriction is
        // an effect on ρ (prevents overlapping sibling restricts).
        for kind in [EffectKind::Read, EffectKind::Write, EffectKind::Alloc] {
            self.cs.conditional(
                Guard::LocIn {
                    loc: rho_p,
                    kinds: kind.mask(),
                    var: l2,
                },
                Action {
                    unify: vec![],
                    include: vec![(Effect::atom(kind, rho), parent_eff)],
                    flags: vec![],
                },
            );
        }
    }

    // ---- Confine wiring ----------------------------------------------------

    /// Materializes a confine unit once its `ρ` and `L1` are known.
    fn materialize(&mut self, st: &mut State, ix: usize, rho: Loc, l1_effect: Effect) -> bool {
        let rho = st.locs.find(rho);
        if st.locs.is_tainted(rho) {
            self.units[ix].pre_reasons.push(Reason::Tainted);
            self.units[ix].aborted = true;
            return false;
        }
        let content = st.locs.content(rho);
        let name = format!("{}'", self.units[ix].key);
        let rho_p = st
            .locs
            .fresh_with(name, content, localias_alias::loc::Multiplicity::One);

        let l1 = self.cs.fresh_var("L1");
        self.cs.include(l1_effect, l1);
        let p_var = self.cs.fresh_var("p'");

        let (l2, gamma, parent_eff, xeff, explicit, demoted) = {
            let u = &self.units[ix];
            (u.l2, u.gamma, u.parent_eff, u.xeff, u.explicit, u.demoted)
        };
        let esc = self.escape_var(st, gamma, rho);
        // The restriction effect propagates outward through xeff.
        self.cs.include(Effect::var(xeff), parent_eff);

        if explicit {
            let t1 = self.tag(TagTarget::Confine(ix), Reason::AliasAccessed);
            self.cs.check_not_in(rho, KindMask::ACCESS, l2, t1);
            let t2 = self.tag(TagTarget::Confine(ix), Reason::Escapes);
            self.cs.check_not_in(rho_p, KindMask::MENTION, esc, t2);
            // Referential transparency, reported via flags.
            let f_side = self.cs.fresh_flag();
            self.units[ix]
                .reason_flags
                .push((f_side, Reason::ConfinedExprHasSideEffect));
            self.cs.conditional(
                Guard::AnyKind {
                    var: l1,
                    kinds: KindMask::WRITE_OR_ALLOC,
                },
                Action {
                    unify: vec![],
                    include: vec![],
                    flags: vec![f_side],
                },
            );
            let f_rt = self.cs.fresh_flag();
            self.units[ix]
                .reason_flags
                .push((f_rt, Reason::ScopeWritesConfinedInput));
            self.cs.conditional(
                Guard::Overlap {
                    left: l1,
                    left_kinds: KindMask::READ,
                    right: l2,
                    right_kinds: KindMask::WRITE_OR_ALLOC,
                },
                Action {
                    unify: vec![],
                    include: vec![],
                    flags: vec![f_rt],
                },
            );
            // The restriction itself is an effect.
            self.cs.include(Effect::atom(EffectKind::Write, rho), xeff);
        } else {
            // Inference: each guard both demotes and records its reason.
            let demote_with = |gen: &mut Gen, guard: Guard, reason: Reason| {
                let rf = gen.cs.fresh_flag();
                gen.units[ix].reason_flags.push((rf, reason));
                let mut action = Self::demote_action(rho, rho_p, vec![demoted, rf]);
                action.include.push((Effect::var(l1), p_var));
                gen.cs.conditional(guard, action);
            };
            demote_with(
                self,
                Guard::LocIn {
                    loc: rho,
                    kinds: KindMask::ACCESS,
                    var: l2,
                },
                Reason::AliasAccessed,
            );
            demote_with(
                self,
                Guard::LocIn {
                    loc: rho_p,
                    kinds: KindMask::MENTION,
                    var: esc,
                },
                Reason::Escapes,
            );
            demote_with(
                self,
                Guard::AnyKind {
                    var: l1,
                    kinds: KindMask::WRITE_OR_ALLOC,
                },
                Reason::ConfinedExprHasSideEffect,
            );
            demote_with(
                self,
                Guard::Overlap {
                    left: l1,
                    left_kinds: KindMask::READ,
                    right: l2,
                    right_kinds: KindMask::WRITE_OR_ALLOC,
                },
                Reason::ScopeWritesConfinedInput,
            );
            // Conditional extra effects: the confine is an effect on ρ of
            // whatever kinds ρ' is used at.
            for kind in [EffectKind::Read, EffectKind::Write, EffectKind::Alloc] {
                self.cs.conditional(
                    Guard::LocIn {
                        loc: rho_p,
                        kinds: kind.mask(),
                        var: l2,
                    },
                    Action {
                        unify: vec![],
                        include: vec![(Effect::atom(kind, rho), xeff)],
                        flags: vec![],
                    },
                );
            }
        }

        self.units[ix].mat = Some(Mat { rho, rho_p, p_var });
        true
    }

    /// Handles an occurrence of an active unit's expression: materializes
    /// pending units in the stack outside-in and returns the replacement
    /// type, or schedules a first-occurrence evaluation.
    fn occurrence(&mut self, st: &mut State, e: &Expr, key: &str) -> Option<Ty> {
        let stack: Vec<usize> = self.active_by_key.get(key)?.clone();
        if stack.is_empty() {
            return None;
        }
        // Find the first unmaterialized (and unaborted) unit outside-in;
        // everything before it is materialized.
        let mut base: Option<usize> = None; // innermost materialized
        for &ix in &stack {
            if self.units[ix].aborted {
                continue;
            }
            if self.units[ix].mat.is_some() {
                base = Some(ix);
                continue;
            }
            match base {
                None => {
                    // Outermost pending: evaluate this occurrence raw,
                    // capturing its effect as L1.
                    let cap = self.cs.fresh_var("L1 capture");
                    self.frames.push(Frame {
                        kind: FrameKind::Capture,
                        eff: cap,
                        gamma: None,
                    });
                    self.awaiting.push((e.id, ix));
                    return None;
                }
                Some(prev) => {
                    let (prev_rho_p, prev_p) = {
                        let m = self.units[prev].mat.as_ref().expect("materialized");
                        (m.rho_p, m.p_var)
                    };
                    if self.materialize(st, ix, prev_rho_p, Effect::var(prev_p)) {
                        base = Some(ix);
                    }
                }
            }
        }
        let inner = base?;
        let (rho_p, p_var) = {
            let m = self.units[inner].mat.as_ref().expect("materialized");
            (m.rho_p, m.p_var)
        };
        let eff = self.top_eff();
        self.cs.include(Effect::var(p_var), eff);
        Some(Ty::Ref(rho_p))
    }

    /// Completes a scheduled first-occurrence evaluation.
    fn finish_awaited(&mut self, st: &mut State, e: &Expr, ty: Ty) -> Ty {
        let (_, ix) = self.awaiting.pop().expect("awaiting non-empty");
        // Pop the capture frame; its contents are L1 and also flow to the
        // enclosing effect (the confine evaluates e1 once).
        let cap = self.frames.pop().expect("capture frame");
        debug_assert_eq!(cap.kind, FrameKind::Capture);
        let eff = self.top_eff();
        self.cs.include(Effect::var(cap.eff), eff);

        let rho = match &ty {
            Ty::Ref(l) => *l,
            _ => {
                self.units[ix].pre_reasons.push(Reason::NotAPointer);
                self.units[ix].aborted = true;
                return ty;
            }
        };
        if !self.materialize(st, ix, rho, Effect::var(cap.eff)) {
            return ty;
        }
        // Deeper pending units for the same key chain off this one.
        let key = self.units[ix].key.clone();
        self.occurrence(st, e, &key).unwrap_or(ty)
    }

    // ---- Post-walk ----------------------------------------------------------

    /// Emits the memoized `locs(·)` chains over the final location
    /// structure and replays walk-time location merges. Must be called
    /// after the typing walk, before solving.
    pub fn finalize(&mut self, st: &mut State) {
        for (winner, loser) in st.locs.take_merges() {
            for (l, v) in self.loc_vars.merge(winner, loser) {
                self.cs.include(l, v);
            }
        }

        let mut emitted: HashSet<Loc> = HashSet::new();
        let mut structs_done: HashSet<String> = HashSet::new();
        let mut stack: Vec<(Loc, EffVar)> = self.loc_vars.iter().collect();
        let mut struct_stack: Vec<String> = self.struct_eps.keys().cloned().collect();
        loop {
            while let Some((l, v)) = stack.pop() {
                let r = st.locs.find(l);
                if !emitted.insert(r) {
                    continue;
                }
                self.cs.include(Effect::atom(EffectKind::Mention, r), v);
                match st.locs.content(r) {
                    Ty::Ref(l2) => {
                        let v2 = self.loc_var(st, l2);
                        self.cs.include(Effect::var(v2), v);
                        stack.push((st.locs.find(l2), v2));
                    }
                    Ty::Struct(s) => {
                        let vs = self.struct_var(&s);
                        self.cs.include(Effect::var(vs), v);
                        struct_stack.push(s);
                    }
                    _ => {}
                }
            }
            if struct_stack.is_empty() {
                break;
            }
            while let Some(s) = struct_stack.pop() {
                if !structs_done.insert(s.clone()) {
                    continue;
                }
                let vs = self.struct_var(&s);
                let fields: Vec<Loc> = st
                    .fields
                    .iter()
                    .filter(|((sn, _), _)| *sn == s)
                    .map(|(_, &l)| l)
                    .collect();
                for fl in fields {
                    let fv = self.loc_var(st, fl);
                    self.cs.include(Effect::var(fv), vs);
                    stack.push((st.locs.find(fl), fv));
                }
            }
            if stack.is_empty() {
                break;
            }
        }
    }

    /// Consumes the generator after solving, producing the outcome lists
    /// plus the per-function effect-summary variables.
    #[allow(clippy::type_complexity)]
    pub fn into_outcomes(
        mut self,
        st: &mut State,
        sol: &localias_effects::Solution,
    ) -> (
        ConstraintSystem,
        Vec<Diag>,
        Vec<RestrictOutcome>,
        Vec<CandidateOutcome>,
        Vec<ConfineOutcome>,
        HashMap<String, EffVar>,
    ) {
        // Attach violated checks to their outcomes.
        for v in sol.violations() {
            let (target, reason) = self.tag_targets[v.tag as usize];
            match target {
                TagTarget::Restrict(i) => self.restrict_outcomes[i].reasons.push(reason),
                TagTarget::Confine(i) => self.units[i].pre_reasons.push(reason),
            }
        }
        // Failed explicit restricts lose strong-update eligibility.
        for &(idx, rho_p) in &self.mult_fixups {
            if !self.restrict_outcomes[idx].reasons.is_empty() {
                st.locs
                    .raise_multiplicity(rho_p, localias_alias::loc::Multiplicity::Many);
            }
        }

        let mut candidates = Vec::new();
        for (mut outcome, flag) in self.candidate_flags {
            outcome.restricted = !sol.flag(flag);
            candidates.push(outcome);
        }

        let mut confines = Vec::new();
        for u in &mut self.units {
            let mut reasons = std::mem::take(&mut u.pre_reasons);
            for &(flag, reason) in &u.reason_flags {
                if sol.flag(flag) {
                    reasons.push(reason);
                }
            }
            if !u.explicit && sol.flag(u.demoted) && reasons.is_empty() {
                reasons.push(Reason::AliasAccessed);
            }
            // Failed explicit confines lose strong-update eligibility.
            if u.explicit && !reasons.is_empty() {
                if let Some(m) = &u.mat {
                    st.locs
                        .raise_multiplicity(m.rho_p, localias_alias::loc::Multiplicity::Many);
                }
            }
            confines.push(ConfineOutcome {
                site: u.site,
                expr: u.key.clone(),
                explicit: u.explicit,
                reasons,
                unused: u.mat.is_none() && !u.aborted,
                locs: u.mat.as_ref().map(|m| (m.rho, m.rho_p)),
            });
        }

        let fun_effects = self
            .fun_effs
            .iter()
            .map(|(name, fe)| (name.clone(), fe.summary))
            .collect();
        (
            self.cs,
            self.diags,
            self.restrict_outcomes,
            candidates,
            confines,
            fun_effects,
        )
    }

    /// Free register variables of `e` (resolved during the walk) that are
    /// assigned inside `body` — the syntactic complement of referential
    /// transparency for effect-free locals.
    fn register_rt_violation(&self, st: &State, e: &Expr, body: &Block) -> bool {
        let mut free_regs: HashSet<String> = HashSet::new();
        struct Fv<'a> {
            st: &'a State,
            out: &'a mut HashSet<String>,
        }
        impl Visitor for Fv<'_> {
            fn visit_expr(&mut self, e: &Expr) {
                if let ExprKind::Var(x) = &e.kind {
                    if let Some(Some(v)) = self.st.var_of_expr.get(e.id.index()) {
                        if matches!(self.st.vars[v.index()].kind, VarKind::Register) {
                            self.out.insert(x.name.to_string());
                        }
                    }
                }
                walk_expr(self, e);
            }
        }
        let mut fv = Fv {
            st,
            out: &mut free_regs,
        };
        fv.visit_expr(e);
        if free_regs.is_empty() {
            return false;
        }
        let mut assigned = HashSet::new();
        struct Av<'a>(&'a mut HashSet<String>);
        impl Visitor for Av<'_> {
            fn visit_expr(&mut self, e: &Expr) {
                if let ExprKind::Assign(lhs, _) = &e.kind {
                    if let ExprKind::Var(x) = &lhs.kind {
                        self.0.insert(x.name.to_string());
                    }
                }
                walk_expr(self, e);
            }
        }
        let mut av = Av(&mut assigned);
        av.visit_block(body);
        free_regs.iter().any(|n| assigned.contains(n))
    }
}

impl Hooks for Gen {
    fn on_read(&mut self, st: &mut State, loc: Loc, _at: NodeId) {
        self.emit(st, EffectKind::Read, loc);
    }

    fn on_write(&mut self, st: &mut State, loc: Loc, _at: NodeId) {
        self.emit(st, EffectKind::Write, loc);
    }

    fn on_alloc(&mut self, st: &mut State, loc: Loc, _at: NodeId) {
        self.emit(st, EffectKind::Alloc, loc);
    }

    fn on_call(&mut self, _st: &mut State, callee: &str, _at: NodeId) {
        let fe = self.fun_eff(callee);
        let eff = self.top_eff();
        self.cs.include(Effect::var(fe.summary), eff);
    }

    fn enter_scope(&mut self, st: &mut State, kind: ScopeKind) {
        match kind {
            ScopeKind::Fun(_) => {
                let name = st.current_fun().expect("in a function").to_string();
                let fe = self.fun_eff(&name);
                let gamma = self.cs.fresh_var("ε_Γ");
                self.cs.include(Effect::var(self.gamma_globals), gamma);
                self.frames.push(Frame {
                    kind: FrameKind::Fun(name),
                    eff: fe.raw,
                    gamma: Some(gamma),
                });
            }
            ScopeKind::Block(_) | ScopeKind::RestrictBody(_) | ScopeKind::ConfineBody(_) => {
                let eff = self.cs.fresh_var("scope eff");
                let gamma = self.cur_gamma();
                self.frames.push(Frame {
                    kind: FrameKind::Scope,
                    eff,
                    gamma: Some(gamma),
                });
                if let ScopeKind::ConfineBody(stmt) = kind {
                    if let Some(&ix) = self.pending_body.get(&stmt) {
                        // The explicit confine's L2 is this body's effect.
                        self.cs.include(Effect::var(eff), self.units[ix].l2);
                        self.units[ix].active = true;
                        self.activate_key(ix);
                    }
                }
            }
        }
    }

    fn exit_scope(&mut self, st: &mut State, kind: ScopeKind) {
        let frame = self.frames.pop().expect("scope frame");
        match kind {
            ScopeKind::Fun(_) => {
                let FrameKind::Fun(name) = &frame.kind else {
                    panic!("frame mismatch: expected function frame");
                };
                let name = name.clone();
                let fe = self.fun_eff(&name);
                if self.opts.apply_down {
                    // (Down): mask the raw body effect by the locations
                    // visible through globals and the signature.
                    let vis = self.cs.fresh_var("visible");
                    self.cs.include(Effect::var(self.gamma_globals), vis);
                    if let Some(sig) = st.funs.get(&name).cloned() {
                        for p in &sig.params {
                            if let Some(v) = self.ty_eps(st, p) {
                                self.cs.include(Effect::var(v), vis);
                            }
                        }
                        if let Some(v) = self.ty_eps(st, &sig.ret) {
                            self.cs.include(Effect::var(v), vis);
                        }
                    }
                    self.cs.include(
                        Effect::inter(Effect::var(fe.raw), Effect::var(vis)),
                        fe.summary,
                    );
                } else {
                    // Ablation: no masking — the raw effect is the
                    // summary.
                    self.cs.include(Effect::var(fe.raw), fe.summary);
                }
            }
            ScopeKind::Block(_) | ScopeKind::RestrictBody(_) => {
                let eff = self.top_eff();
                self.cs.include(Effect::var(frame.eff), eff);
            }
            ScopeKind::ConfineBody(stmt) => {
                let eff = self.top_eff();
                self.cs.include(Effect::var(frame.eff), eff);
                if let Some(ix) = self.pending_body.remove(&stmt) {
                    self.units[ix].active = false;
                    self.deactivate_key(ix);
                }
            }
        }
    }

    fn on_stmt_index(&mut self, st: &mut State, block: NodeId, index: usize, total: usize) {
        // Pop the previous statement's frame.
        if matches!(
            self.frames.last().map(|f| &f.kind),
            Some(FrameKind::Stmt { block: b }) if *b == block
        ) {
            let frame = self.frames.pop().expect("stmt frame");
            let eff = self.top_eff();
            self.cs.include(Effect::var(frame.eff), eff);
        }

        // Deactivate range candidates that ended at index - 1.
        let ended: Vec<usize> = self
            .units
            .iter()
            .enumerate()
            .filter(|(_, u)| {
                u.active
                    && matches!(u.site, ConfineSite::Range { block: b, end, .. }
                        if b == block && end + 1 == index)
            })
            .map(|(i, _)| i)
            .collect();
        for ix in ended {
            self.units[ix].active = false;
            self.deactivate_key(ix);
        }

        if index >= total {
            return;
        }

        // Activate candidates starting here, widest first so the
        // occurrence-interception stack reflects lexical nesting (the
        // innermost-first translation order).
        if let Some(mut starting) = self.pending_ranges.remove(&(block, index)) {
            starting.sort_by_key(|&ix| match self.units[ix].site {
                ConfineSite::Range { start, end, .. } => std::cmp::Reverse(end - start),
                ConfineSite::Stmt(_) => std::cmp::Reverse(usize::MAX),
            });
            for ix in starting {
                let ConfineSite::Range { start, end, .. } = self.units[ix].site else {
                    continue;
                };
                self.units[ix].gamma = self.cur_gamma();
                self.units[ix].parent_eff = self.top_eff();
                self.units[ix].fun = st.current_fun().map(str::to_string);
                self.units[ix].active = true;
                self.activate_key(ix);
                let l2 = self.units[ix].l2;
                let xeff = self.units[ix].xeff;
                self.register_range(
                    block,
                    RangeReg {
                        start,
                        end,
                        l2,
                        xeff: Some(xeff),
                    },
                );
            }
        }

        // Push this statement's frame and feed covering registrations.
        self.stmt_indices.insert(block, index);
        let eff = self.cs.fresh_var("stmt");
        self.frames.push(Frame {
            kind: FrameKind::Stmt { block },
            eff,
            gamma: None,
        });
        if let Some(regs) = self.range_regs.get(&block) {
            let covering: Vec<EffVar> = regs
                .iter()
                .filter(|r| r.start <= index && index <= r.end)
                .map(|r| r.l2)
                .collect();
            for l2 in covering {
                self.cs.include(Effect::var(eff), l2);
            }
        }
    }

    fn bind_ty(&mut self, st: &mut State, site: BindSite, init_ty: Ty, at: NodeId) -> Ty {
        use localias_ast::BindingKind;
        let explicit = match site {
            BindSite::Param { restrict } => {
                if restrict {
                    true
                } else if self.opts.infer_restrict_params {
                    false
                } else {
                    return init_ty;
                }
            }
            BindSite::Decl { binding, has_init } => match binding {
                BindingKind::Restrict => true,
                BindingKind::Let => {
                    if !(self.opts.infer_restrict && has_init) {
                        return init_ty;
                    }
                    false
                }
            },
            BindSite::RestrictStmt => true,
            BindSite::Global => return init_ty,
        };

        let rho = match &init_ty {
            Ty::Ref(l) => st.locs.find(*l),
            _ => {
                if explicit {
                    self.diags.push(Diag {
                        at,
                        span: Span::DUMMY,
                        msg: format!("cannot restrict a non-pointer ({})", Reason::NotAPointer),
                    });
                }
                return init_ty;
            }
        };
        if st.locs.is_tainted(rho) {
            if explicit {
                self.diags.push(Diag {
                    at,
                    span: Span::DUMMY,
                    msg: format!("cannot restrict: {}", Reason::Tainted),
                });
            }
            return init_ty;
        }
        let content = st.locs.content(rho);
        let name = format!("{}'", st.locs.name(rho));
        let rho_p = st
            .locs
            .fresh_with(name, content, localias_alias::loc::Multiplicity::One);
        self.pending_bind = Some(PendingBind {
            rho,
            rho_p,
            gamma_pre: self.cur_gamma(),
            explicit,
        });
        Ty::Ref(rho_p)
    }

    fn on_bind(&mut self, st: &mut State, var: VarId, site: BindSite, at: NodeId) {
        let info = st.vars[var.index()].clone();

        // Extend ε_Γ with the new binding's reachable locations.
        let mut parts: Vec<EffVar> = Vec::new();
        if let Some(v) = self.ty_eps(st, &info.ty) {
            parts.push(v);
        }
        if let VarKind::Addressed(l) = info.kind {
            parts.push(self.loc_var(st, l));
        }
        if matches!(site, BindSite::Global) {
            for v in parts {
                self.cs.include(Effect::var(v), self.gamma_globals);
            }
        } else {
            let old = self.cur_gamma();
            let new = self.cs.fresh_var("ε_Γ+");
            self.cs.include(Effect::var(old), new);
            for v in parts {
                self.cs.include(Effect::var(v), new);
            }
            let frame = self
                .frames
                .iter_mut()
                .rev()
                .find(|f| f.gamma.is_some())
                .expect("a gamma frame");
            frame.gamma = Some(new);
        }

        // Wire a pending restrict/candidate.
        let Some(pending) = self.pending_bind.take() else {
            return;
        };
        let PendingBind {
            rho,
            rho_p,
            gamma_pre,
            explicit,
        } = pending;

        // L2 and the parent effect depend on the binder's shape.
        let (l2, parent_eff) = match site {
            BindSite::Param { .. } => {
                let name = st.current_fun().expect("param binds in a function");
                let fe = self.fun_eff(name);
                let l2 = self.cs.fresh_var("L2 param");
                self.cs.include(Effect::var(fe.raw), l2);
                // The restriction effect of a parameter belongs to the
                // function's summary (it happens at each call).
                (l2, fe.summary)
            }
            BindSite::RestrictStmt => {
                let body_eff = self.top_eff();
                let l2 = self.cs.fresh_var("L2 restrict");
                self.cs.include(Effect::var(body_eff), l2);
                let parent = self.frames[self.frames.len() - 2].eff;
                (l2, parent)
            }
            BindSite::Decl { .. } => {
                // Scope: the rest of the enclosing block — all statement
                // frames with a higher index feed this L2.
                let l2 = self.cs.fresh_var("L2 decl");
                let parent = self.top_eff();
                if let Some(Frame {
                    kind: FrameKind::Stmt { block },
                    ..
                }) = self.frames.last()
                {
                    let block = *block;
                    let idx = self.stmt_indices.get(&block).copied().unwrap_or(0);
                    self.register_range(
                        block,
                        RangeReg {
                            start: idx + 1,
                            end: usize::MAX,
                            l2,
                            xeff: None,
                        },
                    );
                }
                (l2, parent)
            }
            BindSite::Global => return,
        };

        let wiring = RestrictWiring {
            rho,
            rho_p,
            gamma_pre,
            l2,
            parent_eff,
        };
        if explicit {
            self.wire_restrict_check(st, &info.name, at, wiring);
        } else {
            self.wire_restrict_candidate(st, &info.name, at, wiring);
        }
    }

    fn on_confine_start(&mut self, _st: &mut State, at: NodeId) {
        let cap = self.cs.fresh_var("L1 confine");
        self.frames.push(Frame {
            kind: FrameKind::Capture,
            eff: cap,
            gamma: None,
        });
        self.pending_confine_stmt.push(at);
    }

    fn on_confine_expr(&mut self, st: &mut State, expr: &Expr, body: &Block, at: NodeId) {
        let stmt = self.pending_confine_stmt.pop().expect("confine start");
        debug_assert_eq!(stmt, at);
        let cap = self.frames.pop().expect("capture frame");
        debug_assert_eq!(cap.kind, FrameKind::Capture);
        let eff = self.top_eff();
        self.cs.include(Effect::var(cap.eff), eff);

        let key = pretty::print_expr(expr);
        let l2 = self.cs.fresh_var("L2 confine");
        let xeff = self.cs.fresh_var("xeff confine");
        let demoted = self.cs.fresh_flag();
        let ix = self.units.len();
        let root = root_of(expr);
        self.units.push(Unit {
            site: ConfineSite::Stmt(at),
            key: key.clone(),
            root,
            explicit: true,
            fun: st.current_fun().map(str::to_string),
            l2,
            gamma: self.cur_gamma(),
            parent_eff: self.top_eff(),
            xeff,
            demoted,
            reason_flags: Vec::new(),
            pre_reasons: Vec::new(),
            mat: None,
            aborted: false,
            active: false,
        });

        if !expr.is_confinable_shape() {
            self.units[ix].pre_reasons.push(Reason::NotConfinableShape);
            self.units[ix].aborted = true;
            return;
        }
        if self.register_rt_violation(st, expr, body) {
            self.units[ix].pre_reasons.push(Reason::RegisterReassigned);
        }
        let ty = st.expr_ty[expr.id.index()].clone();
        let rho = match ty {
            Some(Ty::Ref(l)) => l,
            _ => {
                self.units[ix].pre_reasons.push(Reason::NotAPointer);
                self.units[ix].aborted = true;
                return;
            }
        };
        if self.materialize(st, ix, rho, Effect::var(cap.eff)) {
            self.pending_body.insert(at, ix);
        }
    }

    fn intercept_expr(&mut self, st: &mut State, e: &Expr) -> Option<Ty> {
        if self.active_roots.is_empty() {
            return None;
        }
        // Cheap shape filter before printing.
        if !matches!(
            e.kind,
            ExprKind::Var(_)
                | ExprKind::Unary(_, _)
                | ExprKind::Field(_, _)
                | ExprKind::Arrow(_, _)
                | ExprKind::Index(_, _)
        ) {
            return None;
        }
        // Pre-filter on the leftmost identifier before paying for a
        // printed key.
        match Self::leftmost_ident(e) {
            Some(root) if self.active_roots.contains_key(root) => {}
            _ => return None,
        }
        let key = pretty::print_expr(e);
        if !self.active_by_key.contains_key(&key) {
            return None;
        }
        self.occurrence(st, e, &key)
    }

    fn after_expr(&mut self, st: &mut State, e: &Expr, ty: Ty) -> Ty {
        if let Some(&(id, _)) = self.awaiting.last() {
            if id == e.id {
                return self.finish_awaited(st, e, ty);
            }
        }
        ty
    }
}
