//! Corner cases of restrict and confine inference: odd scopes, shadowing,
//! nested candidates, interactions between the two inference modes, and
//! idempotence properties.

use localias_ast::{parse_module, Module};
use localias_core::{analyze, check, infer_confines, infer_restricts, Options, Reason};

fn parse(src: &str) -> Module {
    parse_module("corner", src).expect("parse")
}

#[test]
fn candidate_in_nested_block_scopes_to_that_block() {
    // The inner block's `p` dies with the block, so `*q` afterwards is
    // outside its scope — `p` can be restrict.
    let m = parse(
        r#"
        void f(int *q) {
            {
                int *p = q;
                *p = 1;
            }
            *q = 2;
        }
        "#,
    );
    let a = infer_restricts(&m);
    assert_eq!(a.candidates.len(), 1);
    assert!(a.candidates[0].restricted, "{:?}", a.candidates);
}

#[test]
fn uninitialized_declarations_are_not_candidates() {
    let m = parse("void f(int *q) { int *p; p = q; *p = 1; *q = 2; }");
    let a = infer_restricts(&m);
    assert!(
        a.candidates.is_empty(),
        "let-or-restrict needs an initializer: {:?}",
        a.candidates
    );
}

#[test]
fn shadowing_keeps_candidates_separate() {
    let m = parse(
        r#"
        void f(int *q, int *r) {
            int *p = q;
            *p = 1;
            {
                int *p = r;
                *p = 2;
            }
        }
        "#,
    );
    let a = infer_restricts(&m);
    assert_eq!(a.candidates.len(), 2);
    assert!(
        a.candidates.iter().all(|c| c.restricted),
        "both shadowed bindings are independent: {:?}",
        a.candidates
    );
}

#[test]
fn heap_pointer_candidates() {
    // A fresh allocation is trivially unaliased: always restrictable.
    let m = parse("void f() { int *p = new (1); *p = 2; }");
    let a = infer_restricts(&m);
    assert!(a.candidates[0].restricted);
}

#[test]
fn inference_modes_compose() {
    // Running decl-inference and param-inference together: each candidate
    // gets its own verdict.
    let m = parse(
        r#"
        lock locks[8];
        extern void work();
        void dwl(lock *l) {
            lock *own = l;
            spin_lock(own);
            work();
            spin_unlock(own);
        }
        void foo(int i) { dwl(&locks[i]); }
        "#,
    );
    let a = analyze(
        &m,
        Options {
            infer_restrict: true,
            infer_restrict_params: true,
            ..Options::default()
        },
    );
    let by_name = |n: &str| {
        a.candidates
            .iter()
            .find(|c| c.name == n)
            .unwrap_or_else(|| panic!("candidate {n}: {:?}", a.candidates))
    };
    // The param can be restrict... and then `own` (a copy of l, used
    // exclusively) can too.
    assert!(by_name("l").restricted, "{:?}", a.candidates);
    assert!(by_name("own").restricted, "{:?}", a.candidates);
}

#[test]
fn confine_then_explicit_confine_nest() {
    // An explicit confine inside a larger inferable region: both levels
    // must verify (nested confines chain ρ → ρ' → ρ'').
    let m = parse(
        r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
            confine (&locks[i]) {
                spin_lock(&locks[i]);
                spin_unlock(&locks[i]);
            }
        }
        "#,
    );
    let inf = infer_confines(&m);
    let explicit_ok = inf
        .analysis
        .confines
        .iter()
        .filter(|c| c.explicit)
        .all(|c| c.ok());
    assert!(explicit_ok, "{:?}", inf.analysis.confines);
    assert!(!inf.chosen.is_empty(), "{:?}", inf.analysis.confines);
}

#[test]
fn confine_inference_is_idempotent_on_outcomes() {
    let m = parse(
        r#"
        lock locks[8];
        extern void work();
        void f(int i, int c) {
            if (c) {
                spin_lock(&locks[i]);
                work();
                spin_unlock(&locks[i]);
            }
        }
        "#,
    );
    let a = infer_confines(&m);
    let b = infer_confines(&m);
    assert_eq!(a.chosen, b.chosen);
    assert_eq!(a.candidates.len(), b.candidates.len());
}

#[test]
fn two_locks_two_regions_both_confined() {
    let m = parse(
        r#"
        lock tx_locks[4];
        lock rx_locks[4];
        extern void tx();
        extern void rx();
        void f(int i) {
            spin_lock(&tx_locks[i]);
            tx();
            spin_unlock(&tx_locks[i]);
            spin_lock(&rx_locks[i]);
            rx();
            spin_unlock(&rx_locks[i]);
        }
        "#,
    );
    let inf = infer_confines(&m);
    assert_eq!(inf.chosen.len(), 2, "{:?}", inf.analysis.confines);
}

#[test]
fn interleaved_distinct_locks_confine_with_overlapping_regions() {
    // lock A; lock B; unlock A; unlock B — regions overlap but the locks
    // are distinct arrays, so both confines hold.
    let m = parse(
        r#"
        lock a_locks[4];
        lock b_locks[4];
        extern void work();
        void f(int i) {
            spin_lock(&a_locks[i]);
            spin_lock(&b_locks[i]);
            work();
            spin_unlock(&a_locks[i]);
            spin_unlock(&b_locks[i]);
        }
        "#,
    );
    let inf = infer_confines(&m);
    assert_eq!(
        inf.chosen.len(),
        2,
        "independent overlapping regions: {:?}",
        inf.analysis.confines
    );
}

#[test]
fn explicit_restrict_inside_candidate_region() {
    // A hand-written restrict of an unrelated pointer inside a confine
    // candidate region must not block the confine.
    let m = parse(
        r#"
        lock locks[4];
        int scratch;
        void f(int i, int *q) {
            spin_lock(&locks[i]);
            restrict p = q { *p = 1; }
            spin_unlock(&locks[i]);
        }
        "#,
    );
    let inf = infer_confines(&m);
    assert!(!inf.chosen.is_empty(), "{:?}", inf.analysis.confines);
    let a = check(&m);
    assert!(a.restricts[0].ok());
}

#[test]
fn unused_restrict_inside_confine_region_is_harmless() {
    // Restricting the (already confined) lock element but never using the
    // new name: under the paper's liberal semantics the unused restrict
    // carries no restriction effect, so both the restrict and the
    // surrounding confine hold — and the program executes cleanly.
    let m = parse(
        r#"
        lock locks[4];
        void f(int i) {
            spin_lock(&locks[i]);
            restrict p = &locks[i] { p; }
            spin_unlock(&locks[i]);
        }
        "#,
    );
    let inf = infer_confines(&m);
    assert!(
        !inf.chosen.is_empty(),
        "the confine still holds: {:?}",
        inf.analysis.confines
    );
}

#[test]
fn using_confined_lock_inside_its_restrict_scope_fails() {
    // Inside `p`'s restrict scope the confined occurrence `&locks[i]`
    // denotes the *outer* fresh location — which is exactly what p
    // restricts, so using it there is an alias access.
    let m = parse(
        r#"
        lock locks[4];
        void f(int i) {
            spin_lock(&locks[i]);
            restrict p = &locks[i] {
                spin_unlock(&locks[i]);
            }
        }
        "#,
    );
    let inf = infer_confines(&m);
    let rejected = inf
        .analysis
        .restricts
        .iter()
        .any(|r| r.reasons.contains(&Reason::AliasAccessed));
    assert!(
        rejected,
        "the restrict must reject the occurrence access: {:?}",
        inf.analysis.restricts
    );
}

#[test]
fn reasons_surface_for_rejections() {
    let m = parse(
        r#"
        lock locks[4];
        int sink;
        void f(int i) {
            sink = (int) (&locks[i]);
            spin_lock(&locks[i]);
            spin_unlock(&locks[i]);
        }
        "#,
    );
    let inf = infer_confines(&m);
    let reasons: Vec<&Reason> = inf
        .analysis
        .confines
        .iter()
        .flat_map(|c| c.reasons.iter())
        .collect();
    assert!(
        reasons.contains(&&Reason::Tainted) || reasons.contains(&&Reason::AliasAccessed),
        "{reasons:?}"
    );
}

#[test]
fn general_strategy_recovers_interleaved_regions() {
    // Two critical sections on element i, with a section on element j
    // (the same abstract location) between them. The heuristic's min–max
    // range for &locks[i] spans j's accesses and fails; the general
    // strategy's disjoint pair candidates succeed.
    let src = r#"
        lock locks[8];
        extern void a();
        extern void b();
        extern void c();
        void f(int i, int j) {
            spin_lock(&locks[i]);
            a();
            spin_unlock(&locks[i]);
            spin_lock(&locks[j]);
            b();
            spin_unlock(&locks[j]);
            spin_lock(&locks[i]);
            c();
            spin_unlock(&locks[i]);
        }
    "#;
    let m = parse(src);

    let heuristic = localias_core::infer_confines(&m);
    let chosen_i: Vec<_> = heuristic
        .chosen
        .iter()
        .map(|&k| &heuristic.candidates[k])
        .filter(|c| c.key == "&(locks[i])")
        .collect();
    assert!(
        chosen_i.is_empty(),
        "the min–max range for i spans j's section and must fail: {chosen_i:?}"
    );

    let general = localias_core::infer_confines_general(&m);
    let chosen_i: Vec<_> = general
        .chosen
        .iter()
        .map(|&k| &general.candidates[k])
        .filter(|c| c.key == "&(locks[i])")
        .collect();
    assert!(
        chosen_i.len() >= 2,
        "both of i's sections are individually confinable: {:?}",
        general.analysis.confines
    );
}

#[test]
fn general_strategy_subsumes_heuristic_on_simple_regions() {
    let src = r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
        }
    "#;
    let m = parse(src);
    let h = localias_core::infer_confines(&m);
    let g = localias_core::infer_confines_general(&m);
    assert!(!h.chosen.is_empty());
    assert!(!g.chosen.is_empty());
    // The general strategy's outermost success covers at least the
    // heuristic's range.
    let h_best = &h.candidates[h.chosen[0]];
    let covered = g
        .chosen
        .iter()
        .map(|&k| &g.candidates[k])
        .any(|c| c.key == h_best.key && c.start <= h_best.start && h_best.end <= c.end);
    assert!(covered, "general must not lose the heuristic's region");
}
