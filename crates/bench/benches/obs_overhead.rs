//! Pins the disabled-path cost of the obs macros.
//!
//! The whole pipeline is instrumented with `obs::span!`/`obs::count`
//! under the promise that, with no sink installed, each site costs a
//! branch on one relaxed atomic load. This bench measures that cost
//! directly — both bare (a tight loop of nothing but gated sites) and
//! embedded in a real analysis run — so a regression that turns the
//! macros into unconditional work shows up as an order-of-magnitude
//! jump in `disabled/span` or a visible gap between
//! `pipeline/instrumented-off` and what the sweep cost before the
//! instrumentation landed.

use localias_bench::harness::BenchGroup;
use localias_obs as obs;

fn main() {
    // Sinks must be off: this bench exists to price the disabled path.
    obs::disable_metrics();
    obs::disable_spans();

    let mut g = BenchGroup::new("obs_disabled");
    g.sample_size(20);

    // One gated counter site: a relaxed load + untaken branch.
    g.bench("count", || {
        obs::count(obs::Counter::CheckSatNodes, 1);
    });

    // One gated span site: enter + drop, both short-circuited.
    g.bench("span", || {
        let _s = obs::span!("bench.disabled");
    });

    // A hot-loop shape like `reaches()`: 64 gated sites per iteration.
    g.bench("count-x64", || {
        for _ in 0..64 {
            obs::count(obs::Counter::CheckSatEdges, 1);
        }
    });

    // The macros inside real work: a full three-mode module measurement
    // with collection off. Compare against the same line with spans and
    // counters enabled to see the *enabled* overhead too.
    let corpus = localias_corpus::generate(localias_corpus::DEFAULT_SEED);
    let module = &corpus[0];
    let mut p = BenchGroup::new("obs_pipeline");
    p.sample_size(10);
    p.bench("instrumented-off", || {
        localias_bench::ModuleResult::measure(module)
    });
    obs::enable_all();
    p.bench("instrumented-on", || {
        localias_bench::ModuleResult::measure(module)
    });
    obs::disable_metrics();
    obs::disable_spans();
    let _ = obs::drain();
}
