//! §4 complexity claim: restrict *checking* is `O(kn)` for `k`
//! annotations in a program of size `n`.
//!
//! Two sweeps: program size `n` at fixed `k` (expect ~linear growth), and
//! annotation count `k` at fixed `n` (expect ~linear growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use localias_bench::checking_workload;

fn bench_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("check_scaling/n");
    g.sample_size(10);
    for n in [100usize, 200, 400, 800, 1600] {
        let m = checking_workload(n, 8);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let a = localias_core::check(m);
                assert!(a.restricts.iter().all(|r| r.ok()));
                a.restricts.len()
            })
        });
    }
    g.finish();
}

fn bench_annotation_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("check_scaling/k");
    g.sample_size(10);
    for k in [1usize, 4, 16, 64] {
        let m = checking_workload(800, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &m, |b, m| {
            b.iter(|| {
                let a = localias_core::check(m);
                a.restricts.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_size_sweep, bench_annotation_sweep);
criterion_main!(benches);
