//! §4 complexity claim: restrict *checking* is `O(kn)` for `k`
//! annotations in a program of size `n`.
//!
//! Two sweeps: program size `n` at fixed `k` (expect ~linear growth), and
//! annotation count `k` at fixed `n` (expect ~linear growth).

use localias_bench::checking_workload;
use localias_bench::harness::BenchGroup;

fn bench_size_sweep() {
    let mut g = BenchGroup::new("check_scaling/n");
    g.sample_size(10);
    for n in [100usize, 200, 400, 800, 1600] {
        let m = checking_workload(n, 8);
        g.bench(n, || {
            let a = localias_core::check(&m);
            assert!(a.restricts.iter().all(|r| r.ok()));
            a.restricts.len()
        });
    }
}

fn bench_annotation_sweep() {
    let mut g = BenchGroup::new("check_scaling/k");
    g.sample_size(10);
    for k in [1usize, 4, 16, 64] {
        let m = checking_workload(800, k);
        g.bench(k, || {
            let a = localias_core::check(&m);
            a.restricts.len()
        });
    }
}

fn main() {
    bench_size_sweep();
    bench_annotation_sweep();
}
