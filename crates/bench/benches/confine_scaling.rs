//! §6 complexity: confine inference is `O(n²)` via least-solution
//! reachability; the paper's implementation prefers a targeted backward
//! search that is faster in practice. The sweep measures end-to-end
//! confine inference; the `solver` bench holds the matching
//! full-propagation vs. targeted-query ablation.

use localias_bench::confine_workload;
use localias_bench::harness::BenchGroup;

fn main() {
    let mut g = BenchGroup::new("infer_confines/pairs");
    g.sample_size(10);
    for pairs in [4usize, 16, 64, 128] {
        let m = confine_workload(pairs);
        g.bench(pairs, || {
            let inf = localias_core::infer_confines(&m);
            assert_eq!(inf.chosen.len(), pairs);
            inf.chosen.len()
        });
    }
}
