//! §6 complexity: confine inference is `O(n²)` via least-solution
//! reachability; the paper's implementation prefers a targeted backward
//! search that is faster in practice. The sweep measures end-to-end
//! confine inference; the `solver` bench holds the matching
//! full-propagation vs. targeted-query ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use localias_bench::confine_workload;

fn bench_confine_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("infer_confines/pairs");
    g.sample_size(10);
    for pairs in [4usize, 16, 64, 128] {
        let m = confine_workload(pairs);
        g.throughput(Throughput::Elements(pairs as u64));
        g.bench_with_input(BenchmarkId::from_parameter(pairs), &m, |b, m| {
            b.iter(|| {
                let inf = localias_core::infer_confines(m);
                assert_eq!(inf.chosen.len(), pairs);
                inf.chosen.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_confine_sweep);
criterion_main!(benches);
