//! §5 complexity claim: restrict *inference* is `O(n²)` worst case
//! (conditional constraints may each trigger linear re-propagation).
//!
//! Sweep program size with every pointer declaration a `let-or-restrict`
//! candidate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use localias_bench::checking_workload;

fn bench_inference_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("infer_restricts/n");
    g.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let m = checking_workload(n, 0);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| {
                let a = localias_core::infer_restricts(m);
                a.candidates.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inference_sweep);
criterion_main!(benches);
