//! §5 complexity claim: restrict *inference* is `O(n²)` worst case
//! (conditional constraints may each trigger linear re-propagation).
//!
//! Sweep program size with every pointer declaration a `let-or-restrict`
//! candidate.

use localias_bench::checking_workload;
use localias_bench::harness::BenchGroup;

fn main() {
    let mut g = BenchGroup::new("infer_restricts/n");
    g.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let m = checking_workload(n, 0);
        g.bench(n, || {
            let a = localias_core::infer_restricts(&m);
            a.candidates.len()
        });
    }
}
