//! Micro-benchmarks of the effect constraint solver, including the
//! ablation behind the paper's §6 implementation note: computing the full
//! least solution (forward propagation for every location, the `O(n²)`
//! bound) versus answering only the `k` needed queries with the targeted
//! Figure 5 search (`O(kn)` — "usually more efficient" because each query
//! touches a small portion of the graph).

use localias_alias::{LocTable, Ty};
use localias_bench::harness::BenchGroup;
use localias_effects::{build, reaches, solve, ConstraintSystem, Effect, EffectKind, KindMask};
use localias_prng::Rng64;

/// Builds a layered random constraint system of `n` variables.
fn layered_system(n: usize, seed: u64) -> (ConstraintSystem, LocTable) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut cs = ConstraintSystem::new();
    let mut locs = LocTable::new();
    let vars: Vec<_> = (0..n).map(|i| cs.fresh_var(format!("v{i}"))).collect();
    let ls: Vec<_> = (0..n / 4 + 1)
        .map(|i| locs.fresh(format!("l{i}"), Ty::Int))
        .collect();
    // Atoms at the bottom layer.
    for v in vars.iter().take(n / 4 + 1) {
        let l = ls[rng.gen_range(0..ls.len())];
        let kind = match rng.gen_range(0..3u32) {
            0 => EffectKind::Read,
            1 => EffectKind::Write,
            _ => EffectKind::Mention,
        };
        cs.include(Effect::atom(kind, l), *v);
    }
    // Edges forward through the layers; a sprinkle of intersections.
    for i in 1..n {
        let from = vars[rng.gen_range(0..i)];
        if i % 13 == 0 && i >= 2 {
            let gate = vars[rng.gen_range(0..i)];
            cs.include(Effect::inter(Effect::var(from), Effect::var(gate)), vars[i]);
        } else {
            cs.include(Effect::var(from), vars[i]);
        }
    }
    (cs, locs)
}

fn bench_full_solution() {
    let mut g = BenchGroup::new("solver/full_least_solution");
    g.sample_size(20);
    for n in [200usize, 800, 3200] {
        g.bench_with_setup(
            n,
            || layered_system(n, 42),
            |(mut cs, mut locs)| {
                let sol = solve(&mut cs, &mut locs);
                sol.rounds
            },
        );
    }
}

/// The ablation: full propagation vs `k` targeted CHECK-SAT queries.
fn bench_targeted_vs_full() {
    let mut g = BenchGroup::new("solver/checksat_ablation");
    g.sample_size(20);
    let n = 1600;
    let k = 8;

    g.bench_with_setup(
        "full_propagation",
        || layered_system(n, 7),
        |(mut cs, mut locs)| {
            let sol = solve(&mut cs, &mut locs);
            sol.rounds
        },
    );

    g.bench_with_setup(
        format!("targeted_x{k}"),
        || {
            let (mut cs, locs) = layered_system(n, 7);
            let graph = build(&mut cs);
            (cs, locs, graph)
        },
        |(cs, mut locs, graph)| {
            // k queries, as checking k restrict annotations would.
            let mut hits = 0;
            for q in 0..k {
                let loc = localias_alias::Loc((q % 7) as u32);
                let var = localias_effects::EffVar((q * 97 % 1600) as u32);
                if reaches(&graph, &cs, &mut locs, loc, KindMask::ACCESS, var) {
                    hits += 1;
                }
            }
            hits
        },
    );
}

fn main() {
    bench_full_solution();
    bench_targeted_vs_full();
}
