//! The §7 performance claim: confine inference adds a modest overhead to
//! the whole analysis (the paper: 28.5 s with vs 26.0 s without on its
//! largest affected module, ide-tape — about 10%).
//!
//! Benchmarks the full pipeline (alias analysis + constraints + lock
//! checking) on the largest corpus module and on the `ide_tape`
//! analogue, with and without confine inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use localias_corpus::{generate, DEFAULT_SEED};
use localias_cqual::{check_locks, Mode};

fn bench_overhead(c: &mut Criterion) {
    let corpus = generate(DEFAULT_SEED);
    let largest = corpus
        .iter()
        .max_by_key(|m| m.source.len())
        .expect("nonempty corpus");
    let ide = corpus
        .iter()
        .find(|m| m.name == "ide_tape")
        .expect("ide_tape module");

    let mut g = c.benchmark_group("confine_overhead");
    g.sample_size(20);
    for m in [largest, ide] {
        let parsed = m.parse();
        g.bench_with_input(
            BenchmarkId::new("without", &m.name),
            &parsed,
            |b, parsed| b.iter(|| check_locks(parsed, Mode::NoConfine).error_count()),
        );
        g.bench_with_input(BenchmarkId::new("with", &m.name), &parsed, |b, parsed| {
            b.iter(|| check_locks(parsed, Mode::Confine).error_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
