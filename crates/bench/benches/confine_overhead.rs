//! The §7 performance claim: confine inference adds a modest overhead to
//! the whole analysis (the paper: 28.5 s with vs 26.0 s without on its
//! largest affected module, ide-tape — about 10%).
//!
//! Benchmarks the full pipeline (alias analysis + constraints + lock
//! checking) on the largest corpus module and on the `ide_tape`
//! analogue, with and without confine inference.

use localias_bench::harness::BenchGroup;
use localias_corpus::{generate, DEFAULT_SEED};
use localias_cqual::{check_locks, Mode};

fn main() {
    let corpus = generate(DEFAULT_SEED);
    let largest = corpus
        .iter()
        .max_by_key(|m| m.source.len())
        .expect("nonempty corpus");
    let ide = corpus
        .iter()
        .find(|m| m.name == "ide_tape")
        .expect("ide_tape module");

    let mut g = BenchGroup::new("confine_overhead");
    g.sample_size(20);
    for m in [largest, ide] {
        let parsed = m.parse();
        g.bench(format!("without/{}", m.name), || {
            check_locks(&parsed, Mode::NoConfine).error_count()
        });
        g.bench(format!("with/{}", m.name), || {
            check_locks(&parsed, Mode::Confine).error_count()
        });
    }
}
