//! Shared helpers for the benchmark harness: the experiment runner that
//! the figure/table binaries and the complexity benches build on, plus
//! synthetic program generators for those benches and a small in-repo
//! timing harness ([`harness`]) standing in for criterion.

pub mod cache;
pub mod cli;
pub mod diff;
pub mod fuzz;
pub mod harness;
pub mod json;
pub mod merge;

pub use cache::{
    AnalysisCache, CachePolicy, CacheStats, CachedValues, PrecisionOutcome, ANALYSIS_VERSION,
    DEFAULT_SHARDS, MAX_SHARDS,
};
pub use cli::CliOpts;
pub use diff::{diff_benches, DiffReport, DEFAULT_THRESHOLD_PCT};
pub use localias_corpus::{partition_range, CorpusStream};
pub use localias_obs::text_histogram;
pub use merge::merge_partitions;

use cache::CachedOutcome;
use localias_alias::Backend;
use localias_ast::Module;
use localias_core::SharedAnalysis;
use localias_corpus::GeneratedModule;
use localias_cqual::{check_locks_shared_jobs, Mode};
use localias_obs as obs;
use std::fmt::Write as _;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Per-module measured error counts under the three modes.
#[derive(Debug, Clone)]
pub struct ModuleResult {
    /// Module name.
    pub name: String,
    /// Errors without confine inference.
    pub no_confine: usize,
    /// Errors with confine inference.
    pub confine: usize,
    /// Errors assuming all updates strong.
    pub all_strong: usize,
}

/// Wall-clock time one module spent in each pipeline phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Base analysis plus the no-confine and all-strong checks (the two
    /// modes that share one analysis).
    pub check: Duration,
    /// Confine inference plus its check.
    pub confine: Duration,
}

impl PhaseTimes {
    fn accumulate(&mut self, other: PhaseTimes) {
        self.parse += other.parse;
        self.check += other.check;
        self.confine += other.confine;
    }
}

impl ModuleResult {
    /// Measures one corpus module under all three modes.
    ///
    /// The no-confine and all-strong modes share one base analysis
    /// through [`SharedAnalysis`], so this parses once and runs two (not
    /// three) analysis pipelines.
    pub fn measure(m: &GeneratedModule) -> ModuleResult {
        Self::measure_timed(m).0
    }

    /// [`ModuleResult::measure`], also reporting per-phase times.
    pub fn measure_timed(m: &GeneratedModule) -> (ModuleResult, PhaseTimes) {
        let t0 = Instant::now();
        let parsed = m.parse();
        let parse = t0.elapsed();
        Self::measure_parsed(&m.name, &parsed, parse, 1, Backend::Steensgaard)
    }

    /// Runs the analysis pipelines on an already-parsed module (the cache
    /// parses first to canonicalize, so the miss path must not re-parse).
    /// `intra_jobs` fans each lock check out across the module's call-graph
    /// waves; reports are byte-identical for every value, so cached results
    /// are valid whatever `intra_jobs` produced them. `backend` selects
    /// the alias backend the frozen snapshots are produced through.
    fn measure_parsed(
        name: &str,
        parsed: &Module,
        parse: Duration,
        intra_jobs: usize,
        backend: Backend,
    ) -> (ModuleResult, PhaseTimes) {
        let mut shared = SharedAnalysis::new_with_backend(parsed, backend);
        let t1 = Instant::now();
        let no_confine =
            check_locks_shared_jobs(&mut shared, Mode::NoConfine, intra_jobs).error_count();
        let all_strong =
            check_locks_shared_jobs(&mut shared, Mode::AllStrong, intra_jobs).error_count();
        let check = t1.elapsed();

        let t2 = Instant::now();
        let confine = check_locks_shared_jobs(&mut shared, Mode::Confine, intra_jobs).error_count();
        let confine_time = t2.elapsed();

        (
            ModuleResult {
                name: name.to_string(),
                no_confine,
                confine,
                all_strong,
            },
            PhaseTimes {
                parse,
                check,
                confine: confine_time,
            },
        )
    }

    /// Spurious errors that strong updates could eliminate.
    pub fn potential(&self) -> usize {
        self.no_confine - self.all_strong.min(self.no_confine)
    }

    /// Spurious errors confine inference eliminated.
    pub fn eliminated(&self) -> usize {
        self.no_confine - self.confine.min(self.no_confine)
    }
}

/// The machine's available parallelism (≥ 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Aggregate timing and error statistics for one corpus sweep, ready to
/// serialize as `BENCH_experiment.json`.
#[derive(Debug, Clone)]
pub struct ExperimentBench {
    /// Corpus seed.
    pub seed: u64,
    /// Modules measured.
    pub modules: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the sweep (excluding cache store
    /// I/O, which is reported separately in [`ExperimentBench::cache`]).
    pub wall: Duration,
    /// Per-phase CPU time, summed over all modules (and threads). Cache
    /// hits replay the phase times of the run that produced them, so this
    /// keeps describing the analysis cost the results represent even when
    /// `wall` collapses on a warm sweep.
    pub phases: PhaseTimes,
    /// Total error counts per mode, summed over all modules.
    pub errors: (usize, usize, usize),
    /// Total spurious errors strong updates could eliminate.
    pub potential: usize,
    /// Total spurious errors confine inference eliminated.
    pub eliminated: usize,
    /// Result-cache statistics (`None` when the sweep ran uncached).
    pub cache: Option<CacheStats>,
    /// Observability snapshot of the sweep (`None` unless the caller
    /// enabled obs collection and attached a drained [`obs::Trace`]).
    pub profile: Option<obs::Trace>,
    /// Latency histograms recorded during the sweep (empty when the
    /// caller did not attach the drained snapshots). Unlike `profile`,
    /// histograms are always collected — see [`init_obs`].
    pub hist: Vec<obs::HistSnapshot>,
    /// Which slice of the corpus this sweep covered (`None` for a full,
    /// unpartitioned run).
    pub partition: Option<PartitionInfo>,
    /// Per-module `(name, no-confine, confine, all-strong)` rows, in
    /// sweep order. `None` unless the caller opts in — partition
    /// artifacts carry them so `bench-merge` can union disjoint sweeps
    /// into one result set.
    pub results: Option<Vec<ModuleResult>>,
}

/// Which disjoint slice of a seeded corpus one partitioned sweep covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionInfo {
    /// Partition index, `0 ≤ index < count`.
    pub index: usize,
    /// Total number of cooperating partitions.
    pub count: usize,
    /// Total modules in the *whole* corpus the partitions split.
    pub total: usize,
}

/// Formats an `f64` as a JSON number that parses back to the same value:
/// Rust's shortest-round-trip representation, which is locale-independent
/// and always a valid JSON literal for finite inputs. Non-finite values
/// (which JSON cannot represent) degrade to `0.0`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".to_string()
    }
}

/// Renders a counter slice as a JSON array of integers.
fn json_usize_array(xs: &[usize]) -> String {
    let mut out = String::with_capacity(2 + xs.len() * 4);
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an [`obs::Trace`] as a JSON object: a `spans` array (path,
/// count, total/self nanoseconds) plus a `counters` object keyed by the
/// registry's dotted names, non-zero entries only. Public so bench
/// binaries with their own report schemas (e.g. `watch`) can embed the
/// same profile block the experiment schema uses.
pub fn json_trace(t: &obs::Trace) -> String {
    let mut out = String::from("{\n    \"spans\": [");
    for (i, s) in t.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{\"path\": {}, \"count\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
            json_str(&s.path),
            s.count,
            s.total_ns,
            s.self_ns
        );
    }
    if !t.spans.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("],\n    \"counters\": {");
    for (i, (name, value)) in t.counters.iter_nonzero().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n      {}: {value}", json_str(name));
    }
    if !t.counters.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("}\n  }");
    out
}

/// Renders the latency-histogram block every bench schema embeds: one
/// entry per *registered* histogram (zero-sample histograms included, so
/// the block's shape is identical across cold and warm runs), keyed by
/// dotted name, carrying the exact aggregate plus the p50/p90/p95/p99
/// percentiles and the sparse `[bucket_index, count]` pairs. Public so
/// bench binaries with their own report schemas embed the same block.
pub fn json_hists(hists: &[obs::HistSnapshot]) -> String {
    let mut out = String::from("{");
    for (i, name) in obs::ALL_HISTS
        .iter()
        .map(|&h| obs::hist_name(h))
        .enumerate()
    {
        let empty = obs::HistSnapshot::empty(name);
        let h = hists.iter().find(|h| h.name == name).unwrap_or(&empty);
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
            json_str(name),
            h.count,
            h.sum_ns,
            h.min_ns,
            h.max_ns,
            h.percentile(50),
            h.percentile(90),
            h.percentile(95),
            h.percentile(99),
        );
        for (j, (idx, count)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("\n  }");
    out
}

impl ExperimentBench {
    /// Sweep throughput in modules per wall-clock second.
    pub fn modules_per_sec(&self) -> f64 {
        self.modules as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Renders the stats as a small, stable JSON document
    /// (schema `localias-bench-experiment/v6`).
    ///
    /// v2 extended v1 with the `cache` block (`null` on uncached sweeps)
    /// and switched every float to a shortest-round-trip rendering, so
    /// each number parses back to the exact measured value. v3 extends
    /// the `cache` block with the sharded-store observability fields:
    /// `shards`, per-shard `shard_hits`/`shard_misses`, `quarantined`,
    /// and the lock-contention counters `lock_retries`/`lock_skips`.
    /// v4 adds the `profile` block (`null` unless the run collected an
    /// obs trace): aggregated spans plus non-zero counter totals.
    /// v5 adds `partition` (`{"index", "count", "total"}` for a
    /// partitioned sweep, else `null`) and `results` (per-module
    /// `[name, nc, cf, as]` rows when the caller opts in, else `null`) —
    /// the fields `bench-merge` unions disjoint partition sweeps with.
    /// v6 adds the `hist` block ([`json_hists`]): per-operation latency
    /// histograms with exact p50/p90/p95/p99 percentiles, one entry per
    /// registered histogram on every run.
    pub fn to_json(&self) -> String {
        let (nc, cf, st) = self.errors;
        let profile = match &self.profile {
            None => "null".to_string(),
            Some(t) => json_trace(t),
        };
        let partition = match &self.partition {
            None => "null".to_string(),
            Some(p) => format!(
                "{{\"index\": {}, \"count\": {}, \"total\": {}}}",
                p.index, p.count, p.total
            ),
        };
        let results = match &self.results {
            None => "null".to_string(),
            Some(rows) => {
                let mut out = String::from("[");
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "\n    [{}, {}, {}, {}]",
                        json_str(&r.name),
                        r.no_confine,
                        r.confine,
                        r.all_strong
                    );
                }
                if !rows.is_empty() {
                    out.push_str("\n  ");
                }
                out.push(']');
                out
            }
        };
        let cache = match &self.cache {
            None => "null".to_string(),
            Some(c) => format!(
                "{{\n    \"hits\": {},\n    \"misses\": {},\n    \"dir\": {},\n    \
                 \"shards\": {},\n    \"shard_hits\": {},\n    \"shard_misses\": {},\n    \
                 \"quarantined\": {},\n    \"lock_retries\": {},\n    \"lock_skips\": {},\n    \
                 \"load_seconds\": {},\n    \"store_seconds\": {}\n  }}",
                c.hits,
                c.misses,
                json_str(&c.dir),
                c.shards,
                json_usize_array(&c.shard_hits),
                json_usize_array(&c.shard_misses),
                c.quarantined,
                c.lock_retries,
                c.lock_skips,
                json_f64(c.load.as_secs_f64()),
                json_f64(c.store.as_secs_f64()),
            ),
        };
        let hist = json_hists(&self.hist);
        format!(
            "{{\n  \"schema\": \"localias-bench-experiment/v6\",\n  \
             \"seed\": {},\n  \
             \"modules\": {},\n  \
             \"threads\": {},\n  \
             \"wall_seconds\": {},\n  \
             \"modules_per_second\": {},\n  \
             \"phase_cpu_seconds\": {{\n    \
             \"parse\": {},\n    \
             \"check\": {},\n    \
             \"confine\": {}\n  }},\n  \
             \"errors\": {{\n    \
             \"no_confine\": {nc},\n    \
             \"confine\": {cf},\n    \
             \"all_strong\": {st}\n  }},\n  \
             \"spurious\": {{\n    \
             \"potential\": {},\n    \
             \"eliminated\": {}\n  }},\n  \
             \"cache\": {cache},\n  \
             \"partition\": {partition},\n  \
             \"results\": {results},\n  \
             \"hist\": {hist},\n  \
             \"profile\": {profile}\n}}\n",
            self.seed,
            self.modules,
            self.threads,
            json_f64(self.wall.as_secs_f64()),
            json_f64(self.modules_per_sec()),
            json_f64(self.phases.parse.as_secs_f64()),
            json_f64(self.phases.check.as_secs_f64()),
            json_f64(self.phases.confine.as_secs_f64()),
            self.potential,
            self.eliminated,
        )
    }
}

/// Measures every module of `corpus` across `jobs` worker threads
/// (`jobs == 0` → [`default_jobs`]). Results come back in corpus order
/// regardless of thread count or scheduling.
pub fn measure_corpus(corpus: &[GeneratedModule], jobs: usize) -> Vec<ModuleResult> {
    measure_corpus_timed(corpus, jobs, 0).0
}

/// [`measure_corpus`] plus aggregate timing statistics (uncached).
pub fn measure_corpus_timed(
    corpus: &[GeneratedModule],
    jobs: usize,
    seed: u64,
) -> (Vec<ModuleResult>, ExperimentBench) {
    measure_corpus_cached(corpus, jobs, 1, seed, Backend::Steensgaard, None)
}

/// What a worker learned about one module, beyond its result.
enum CacheNote {
    /// Sweep ran uncached.
    Uncached,
    /// The raw source fingerprint was already known — served without
    /// even parsing.
    RawHit { fp: u128 },
    /// Raw source changed but the canonical fingerprint still hit; the
    /// new raw fingerprint should alias it for the next sweep.
    CanonHit { fp: u128, raw: u128 },
    /// True miss: record the fresh measurement under this fingerprint.
    Miss { fp: u128, raw: u128 },
}

/// One worker's verdict on one module.
struct SweepOutcome {
    slot: usize,
    result: ModuleResult,
    times: PhaseTimes,
    note: CacheNote,
}

/// Corpus size above which the default shard count starts to contend.
const LARGE_CORPUS_SHARD_WARN: usize = 10_000;

/// The concrete `--cache-shards` value to suggest for a corpus of
/// `modules` modules currently running on `shards` shards.
///
/// Targets roughly one shard per thousand modules (shards hold whole
/// result records, so a thousand records per shard file keeps each file
/// small enough to rewrite cheaply), rounded up to a power of two to
/// match the sharding hash's mixing; never suggests less than doubling
/// the current count (the warning only fires when the current count
/// contends, so any useful suggestion is a strict increase) and never
/// more than [`MAX_SHARDS`].
fn suggest_cache_shards(modules: usize, shards: usize) -> usize {
    (modules / 1_000)
        .next_power_of_two()
        .max(shards.saturating_mul(2))
        .min(MAX_SHARDS)
}

/// The streaming sweep engine every `measure_*` entry point feeds.
///
/// `modules` yields `(slot, module)` pairs; `slot` is the module's index
/// in the returned result vector (`0..out_len`). With more than one
/// worker the iterator is drained by a producer thread into a *bounded*
/// channel (capacity `2·threads`), so no matter how large the corpus is,
/// only `O(threads)` modules are ever alive at once — each worker drops
/// its module as soon as the result (or cache note) is extracted.
/// Results are merged back into slot order afterwards, so output is
/// byte-identical for every `jobs` value and for the sequential path.
///
/// With a cache, each worker first resolves the module's raw source
/// fingerprint against an immutable cache snapshot — a hit skips the
/// parse entirely. Otherwise it parses and checks the canonical
/// fingerprint, so a formatting-only change is still a hit and only
/// genuine content changes pay for analysis. Cache mutations (aliases,
/// fresh records) are applied on the calling thread after the sweep;
/// persisting the store is the caller's job (see
/// [`measure_corpus_with_cache`]).
fn sweep_modules<M, I>(
    modules: I,
    out_len: usize,
    jobs: usize,
    intra_jobs: usize,
    seed: u64,
    backend: Backend,
    mut cache: Option<&mut AnalysisCache>,
) -> (Vec<ModuleResult>, ExperimentBench)
where
    M: std::borrow::Borrow<GeneratedModule> + Send,
    I: Iterator<Item = (usize, M)> + Send,
{
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let _sweep_span = obs::span!("bench.sweep");
    let start = Instant::now();

    let shards = cache.as_deref().map_or(0, AnalysisCache::shard_count);
    if shards > 0 && shards <= DEFAULT_SHARDS && out_len > LARGE_CORPUS_SHARD_WARN {
        obs::warn!(
            "localias-bench: {out_len} modules over {shards} cache shards will contend; \
             consider --cache-shards {} (max {MAX_SHARDS})",
            suggest_cache_shards(out_len, shards),
        );
    }

    let outcomes: Vec<SweepOutcome> = {
        let snapshot: Option<&AnalysisCache> = cache.as_deref();
        let work = |slot: usize, m: &GeneratedModule| -> SweepOutcome {
            if let Some(c) = snapshot {
                let raw = cache::source_fingerprint(&m.source, backend);
                let served = c
                    .resolve_raw(raw)
                    .and_then(|fp| Some((fp, c.lookup_fp(fp)?)));
                if let Some((fp, e)) = served {
                    return SweepOutcome {
                        slot,
                        result: e.to_result(&m.name),
                        times: e.times,
                        note: CacheNote::RawHit { fp },
                    };
                }
                let t0 = Instant::now();
                let parsed = m.parse();
                let parse = t0.elapsed();
                let fp = cache::module_fingerprint(&parsed, backend);
                if let Some(e) = c.lookup_fp(fp) {
                    return SweepOutcome {
                        slot,
                        result: e.to_result(&m.name),
                        times: e.times,
                        note: CacheNote::CanonHit { fp, raw },
                    };
                }
                let (r, t) =
                    ModuleResult::measure_parsed(&m.name, &parsed, parse, intra_jobs, backend);
                SweepOutcome {
                    slot,
                    result: r,
                    times: t,
                    note: CacheNote::Miss { fp, raw },
                }
            } else {
                let t0 = Instant::now();
                let parsed = m.parse();
                let parse = t0.elapsed();
                let (r, t) =
                    ModuleResult::measure_parsed(&m.name, &parsed, parse, intra_jobs, backend);
                SweepOutcome {
                    slot,
                    result: r,
                    times: t,
                    note: CacheNote::Uncached,
                }
            }
        };

        if threads <= 1 {
            // Sequential path: generate, measure, drop — one module live.
            modules.map(|(slot, m)| work(slot, m.borrow())).collect()
        } else {
            // Bounded in-flight set: the producer blocks once the channel
            // holds 2·threads undrained modules.
            let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, M)>(threads * 2);
            let rx = std::sync::Mutex::new(rx);
            // Workers inherit the sweep's span path, so the span tree is
            // identical whatever the thread count.
            let span_cx = obs::fork();
            std::thread::scope(|s| {
                let producer = s.spawn(move || {
                    for item in modules {
                        if tx.send(item).is_err() {
                            break; // workers gone (a worker panicked)
                        }
                    }
                });
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let span_cx = span_cx.clone();
                        let (rx, work) = (&rx, &work);
                        s.spawn(move || {
                            let _attached = span_cx.attach();
                            let mut out = Vec::new();
                            loop {
                                let item = rx.lock().expect("receiver poisoned").recv();
                                match item {
                                    Ok((slot, m)) => out.push(work(slot, m.borrow())),
                                    Err(_) => break out, // producer done, channel drained
                                }
                            }
                        })
                    })
                    .collect();
                producer.join().expect("producer thread panicked");
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
        }
    };

    let mut slots: Vec<Option<(ModuleResult, PhaseTimes)>> = (0..out_len).map(|_| None).collect();
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut shard_hits = vec![0usize; shards];
    let mut shard_misses = vec![0usize; shards];
    for o in outcomes {
        match o.note {
            CacheNote::Uncached => {}
            CacheNote::RawHit { fp } => {
                hits += 1;
                if let Some(c) = cache.as_deref() {
                    shard_hits[c.shard_of(fp)] += 1;
                    obs::count(obs::Counter::CacheShardHits, 1);
                }
            }
            CacheNote::CanonHit { fp, raw } => {
                hits += 1;
                if let Some(c) = cache.as_deref_mut() {
                    shard_hits[c.shard_of(fp)] += 1;
                    obs::count(obs::Counter::CacheShardHits, 1);
                    c.alias_raw(raw, fp);
                }
            }
            CacheNote::Miss { fp, raw } => {
                misses += 1;
                if let Some(c) = cache.as_deref_mut() {
                    shard_misses[c.shard_of(fp)] += 1;
                    obs::count(obs::Counter::CacheShardMisses, 1);
                    c.record(fp, raw, CachedOutcome::of(&o.result, o.times));
                }
            }
        }
        slots[o.slot] = Some((o.result, o.times));
    }

    let mut phases = PhaseTimes::default();
    let results: Vec<ModuleResult> = slots
        .into_iter()
        .map(|s| {
            let (r, t) = s.expect("every module measured exactly once");
            phases.accumulate(t);
            r
        })
        .collect();

    let errors = results.iter().fold((0, 0, 0), |(nc, cf, st), r| {
        (nc + r.no_confine, cf + r.confine, st + r.all_strong)
    });
    let cache_stats = cache.as_deref().map(|c| CacheStats {
        hits,
        misses,
        dir: c.dir_display(),
        shards,
        shard_hits,
        shard_misses,
        quarantined: c.quarantined(),
        lock_retries: 0, // lock counters are filled in after persist
        lock_skips: 0,
        load: c.load_time(),
        store: Duration::ZERO, // filled in after persist
    });
    let bench = ExperimentBench {
        seed,
        modules: results.len(),
        threads,
        wall: start.elapsed(),
        phases,
        errors,
        potential: results.iter().map(ModuleResult::potential).sum(),
        eliminated: results.iter().map(ModuleResult::eliminated).sum(),
        cache: cache_stats,
        profile: None,
        hist: Vec::new(),
        partition: None,
        results: None,
    };
    (results, bench)
}

/// The streaming sweep over an already-materialized corpus slice,
/// optionally backed by an [`AnalysisCache`]. Results come back in slice
/// order, byte-identical for every `jobs` value.
pub fn measure_corpus_cached(
    corpus: &[GeneratedModule],
    jobs: usize,
    intra_jobs: usize,
    seed: u64,
    backend: Backend,
    cache: Option<&mut AnalysisCache>,
) -> (Vec<ModuleResult>, ExperimentBench) {
    sweep_modules(
        corpus.iter().enumerate(),
        corpus.len(),
        jobs,
        intra_jobs,
        seed,
        backend,
        cache,
    )
}

/// Sweeps stream positions `range` of a [`CorpusStream`] without ever
/// materializing the corpus: modules are generated one at a time (by the
/// producer thread when `jobs > 1`) and dropped as soon as they are
/// measured or served from cache, so peak memory is `O(jobs)` modules
/// however large the range is. Results come back in stream order.
pub fn measure_stream_cached(
    stream: &CorpusStream,
    range: Range<usize>,
    jobs: usize,
    intra_jobs: usize,
    backend: Backend,
    cache: Option<&mut AnalysisCache>,
) -> (Vec<ModuleResult>, ExperimentBench) {
    let base = range.start;
    sweep_modules(
        range.clone().map(|p| (p - base, stream.module_at(p))),
        range.len(),
        jobs,
        intra_jobs,
        stream.seed(),
        backend,
        cache,
    )
}

/// One full streamed sweep under a [`CachePolicy`]: loads the store,
/// runs [`measure_stream_cached`], and atomically persists the store
/// back. Cache I/O failures degrade to warnings — results are never
/// affected.
pub fn measure_stream_with_cache(
    stream: &CorpusStream,
    range: Range<usize>,
    jobs: usize,
    intra_jobs: usize,
    backend: Backend,
    policy: &CachePolicy,
) -> (Vec<ModuleResult>, ExperimentBench) {
    match policy {
        CachePolicy::Disabled => {
            measure_stream_cached(stream, range, jobs, intra_jobs, backend, None)
        }
        CachePolicy::Dir { dir, shards } => {
            let mut c = AnalysisCache::load_sharded(dir, *shards);
            let (results, mut bench) =
                measure_stream_cached(stream, range, jobs, intra_jobs, backend, Some(&mut c));
            if let Err(e) = c.persist() {
                obs::warn!(
                    "localias-bench: warning: cache not fully written to {}: {e}",
                    dir.display()
                );
            }
            if let Some(stats) = bench.cache.as_mut() {
                stats.store = c.store_time();
                stats.quarantined = c.quarantined();
                stats.lock_retries = c.lock_retries();
                stats.lock_skips = c.lock_skips();
            }
            (results, bench)
        }
    }
}

/// One full cached sweep under a [`CachePolicy`]: loads the store, runs
/// [`measure_corpus_cached`], and atomically persists the store back.
/// Cache I/O failures degrade to warnings — results are never affected.
pub fn measure_corpus_with_cache(
    corpus: &[GeneratedModule],
    jobs: usize,
    intra_jobs: usize,
    seed: u64,
    backend: Backend,
    policy: &CachePolicy,
) -> (Vec<ModuleResult>, ExperimentBench) {
    match policy {
        CachePolicy::Disabled => {
            measure_corpus_cached(corpus, jobs, intra_jobs, seed, backend, None)
        }
        CachePolicy::Dir { dir, shards } => {
            let mut c = AnalysisCache::load_sharded(dir, *shards);
            let (results, mut bench) =
                measure_corpus_cached(corpus, jobs, intra_jobs, seed, backend, Some(&mut c));
            if let Err(e) = c.persist() {
                obs::warn!(
                    "localias-bench: warning: cache not fully written to {}: {e}",
                    dir.display()
                );
            }
            if let Some(stats) = bench.cache.as_mut() {
                stats.store = c.store_time();
                stats.quarantined = c.quarantined();
                stats.lock_retries = c.lock_retries();
                stats.lock_skips = c.lock_skips();
            }
            (results, bench)
        }
    }
}

/// What [`finish_obs`] drained from the run's observability sinks.
#[derive(Debug, Default)]
pub struct ObsReport {
    /// The full span/counter trace — `Some` only when the run asked for
    /// obs output (`--trace-out`, `--trace-chrome`, or `--profile`).
    pub trace: Option<obs::Trace>,
    /// Merged latency histograms. Always populated (histograms are
    /// cheap enough to collect unconditionally), so every bench
    /// artifact carries its `hist` block even without `--profile`.
    pub hists: Vec<obs::HistSnapshot>,
}

/// Applies the CLI's logging options and installs the obs sinks
/// (clearing any stale state so the trace covers exactly the run that
/// follows). Latency histograms are always enabled — they cost one TLS
/// array update per sample — while spans and counters only turn on
/// when `--trace-out`, `--trace-chrome`, or `--profile` asks for them.
/// Call once, right after argument parsing.
pub fn init_obs(opts: &CliOpts) {
    opts.apply_log_level();
    if opts.wants_obs() {
        obs::enable_all();
    } else {
        obs::enable_hists();
    }
    let _ = obs::drain();
}

/// Drains the obs sinks after the run: writes the JSON-lines trace to
/// `--trace-out`, the Chrome trace-event file to `--trace-chrome`,
/// prints the `--profile` table to stderr, and returns the drained
/// snapshots so callers can embed them (see [`ExperimentBench::profile`]
/// and [`ExperimentBench::hist`]). The report's histograms are populated
/// on every run; its trace only when the run asked for obs output.
pub fn finish_obs(opts: &CliOpts) -> Result<ObsReport, String> {
    if !opts.wants_obs() {
        let trace = obs::drain();
        obs::disable_hists();
        return Ok(ObsReport {
            trace: None,
            hists: trace.hists,
        });
    }
    // Flush the memory gauges exactly once, here — not inside the sweep,
    // so the trace shape stays invariant across thread counts.
    obs::gauge_max(obs::Counter::MemPeakRssBytes, obs::peak_rss_bytes());
    let arena = localias_ast::intern::stats();
    obs::gauge_max(obs::Counter::MemArenaBytes, arena.arena_bytes);
    obs::gauge_max(obs::Counter::MemArenaSavedBytes, arena.saved_bytes);
    let trace = obs::drain();
    obs::disable_hists();
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, trace.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &opts.trace_chrome {
        let counters: Vec<(String, u64)> = trace
            .counters
            .iter_nonzero()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        let chrome = obs::chrome_trace(&trace.spans, &counters, &trace.hists);
        // The exporter promises well-formed JSON; hold it to that before
        // the file lands where a browser will load it.
        crate::json::parse(&chrome).map_err(|e| format!("{path}: generated trace invalid: {e}"))?;
        std::fs::write(path, chrome).map_err(|e| format!("{path}: {e}"))?;
    }
    if opts.profile {
        eprint!("{}", trace.render_profile());
    }
    Ok(ObsReport {
        hists: trace.hists.clone(),
        trace: Some(trace),
    })
}

/// Runs the whole Section 7 experiment (all available cores, no cache)
/// and returns per-module results in corpus order.
pub fn run_experiment(seed: u64) -> Vec<ModuleResult> {
    run_experiment_timed(seed, 0).0
}

/// [`run_experiment`] with an explicit thread count (`0` = auto) and
/// aggregate timing statistics.
pub fn run_experiment_timed(seed: u64, jobs: usize) -> (Vec<ModuleResult>, ExperimentBench) {
    let corpus = localias_corpus::generate(seed);
    measure_corpus_timed(&corpus, jobs, seed)
}

/// [`run_experiment_timed`] under a [`CachePolicy`]: the incremental
/// entry point the `experiment`, `summary`, and `fig6` binaries use.
/// Streams the paper corpus rather than materializing it.
pub fn run_experiment_cached(
    seed: u64,
    jobs: usize,
    intra_jobs: usize,
    backend: Backend,
    policy: &CachePolicy,
) -> (Vec<ModuleResult>, ExperimentBench) {
    let stream = CorpusStream::paper(seed);
    let range = 0..stream.len();
    measure_stream_with_cache(&stream, range, jobs, intra_jobs, backend, policy)
}

/// Generates a synthetic program of roughly `n` statements with `k`
/// explicit `restrict` annotations, for the §4 `O(kn)` checking bench.
pub fn checking_workload(n: usize, k: usize) -> Module {
    let mut src = String::from("int g;\nextern void work();\n");
    let funs = n.max(1) / 10 + 1;
    let per_fun = n / funs + 1;
    let mut annotated = 0;
    for f in 0..funs {
        let _ = writeln!(src, "void f{f}(int *q{f}) {{");
        for s in 0..per_fun {
            match s % 5 {
                0 => {
                    let _ = writeln!(src, "    int *a{s} = q{f};");
                }
                1 if annotated < k => {
                    // Each annotation restricts its own fresh location
                    // (two restricts of one location in one scope are
                    // correctly rejected by the checker).
                    annotated += 1;
                    let _ = writeln!(src, "    int *s{s} = new (0);");
                    let _ = writeln!(src, "    restrict int *r{s} = s{s};");
                    let _ = writeln!(src, "    *r{s} = {s};");
                }
                2 => {
                    let _ = writeln!(src, "    int x{s} = g + {s};");
                }
                3 => {
                    let _ = writeln!(src, "    int *h{s} = new ({s});");
                    let _ = writeln!(src, "    *h{s} = {s};");
                }
                _ => {
                    let _ = writeln!(src, "    work();");
                }
            }
        }
        let _ = writeln!(src, "}}");
    }
    localias_ast::parse_module("workload", &src).expect("workload parses")
}

/// Generates a driver-like program with `pairs` confinable lock regions,
/// for the inference scaling benches.
pub fn confine_workload(pairs: usize) -> Module {
    let mut src = String::from("extern void work();\n");
    for p in 0..pairs {
        let _ = writeln!(src, "lock locks{p}[8];");
        let _ = writeln!(src, "void f{p}(int i) {{");
        let _ = writeln!(src, "    spin_lock(&locks{p}[i]);");
        let _ = writeln!(src, "    work();");
        let _ = writeln!(src, "    spin_unlock(&locks{p}[i]);");
        let _ = writeln!(src, "}}");
    }
    localias_ast::parse_module("confine-workload", &src).expect("workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_cqual::check_locks;

    #[test]
    fn checking_workload_scales_and_checks() {
        let m = checking_workload(100, 5);
        let a = localias_core::check(&m);
        assert_eq!(a.restricts.len(), 5);
        assert!(a.restricts.iter().all(|r| r.ok()), "{:?}", a.restricts);
    }

    #[test]
    fn confine_workload_is_fully_recoverable() {
        let m = confine_workload(4);
        let nc = check_locks(&m, Mode::NoConfine).error_count();
        let cf = check_locks(&m, Mode::Confine).error_count();
        assert_eq!(nc, 4);
        assert_eq!(cf, 0);
    }

    #[test]
    fn shard_suggestion_tracks_corpus_size() {
        // ~1k modules per shard, rounded up to a power of two.
        assert_eq!(suggest_cache_shards(50_000, DEFAULT_SHARDS), 64);
        assert_eq!(suggest_cache_shards(100_000, DEFAULT_SHARDS), 128);
        assert_eq!(suggest_cache_shards(200_000, DEFAULT_SHARDS), MAX_SHARDS);
        // Huge corpora clamp at the store's shard-count ceiling.
        assert_eq!(suggest_cache_shards(10_000_000, DEFAULT_SHARDS), MAX_SHARDS);
        // The suggestion is always a strict increase over a contending
        // count (the warning's precondition: shards <= DEFAULT_SHARDS).
        for shards in 1..=DEFAULT_SHARDS {
            for modules in [LARGE_CORPUS_SHARD_WARN + 1, 20_000, 500_000] {
                let s = suggest_cache_shards(modules, shards);
                assert!(s > shards, "modules={modules} shards={shards} -> {s}");
                assert!(s <= MAX_SHARDS);
            }
        }
    }

    /// Every float in the JSON report must be locale-independent and
    /// parse back to the exact measured value (shortest round trip) —
    /// pinned before the schema grew the v2 cache fields.
    #[test]
    fn json_floats_round_trip_exactly() {
        for x in [
            0.0,
            0.1,
            0.313788,
            1.0 / 3.0,
            1e-9,
            1877.06,
            f64::MAX,
            f64::MIN_POSITIVE,
            -2.5,
        ] {
            let s = json_f64(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
            assert!(!s.contains(','), "locale-dependent rendering: {s}");
        }
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn bench_json_parses_back_field_for_field() {
        let bench = ExperimentBench {
            seed: 7,
            modules: 2,
            threads: 1,
            wall: Duration::from_nanos(313_788_123),
            phases: PhaseTimes {
                parse: Duration::from_nanos(41_000_001),
                check: Duration::from_nanos(3),
                confine: Duration::from_nanos(148_000_000),
            },
            errors: (3, 2, 1),
            potential: 2,
            eliminated: 1,
            cache: Some(CacheStats {
                hits: 589,
                misses: 0,
                dir: ".localias-cache".into(),
                shards: 4,
                shard_hits: vec![147, 148, 147, 147],
                shard_misses: vec![0, 0, 0, 0],
                quarantined: 1,
                lock_retries: 2,
                lock_skips: 0,
                load: Duration::from_nanos(1_234_567),
                store: Duration::from_nanos(89),
            }),
            profile: None,
            hist: Vec::new(),
            partition: None,
            results: None,
        };
        let json = bench.to_json();
        assert!(json.contains("\"schema\": \"localias-bench-experiment/v6\""));
        assert!(json.contains("\"hist\": {"));
        assert!(json.contains("\"analyze.module\""));
        assert!(json.contains("\"check.function\""));
        assert!(json.contains("\"profile\": null"));
        assert!(json.contains("\"partition\": null"));
        assert!(json.contains("\"results\": null"));
        assert!(json.contains("\"hits\": 589"));
        assert!(json.contains("\"dir\": \".localias-cache\""));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"shard_hits\": [147,148,147,147]"));
        assert!(json.contains("\"shard_misses\": [0,0,0,0]"));
        assert!(json.contains("\"quarantined\": 1"));
        assert!(json.contains("\"lock_retries\": 2"));
        assert!(json.contains("\"lock_skips\": 0"));
        // Extract a float field and check exact parse-back.
        let wall = json
            .lines()
            .find(|l| l.contains("\"wall_seconds\""))
            .and_then(|l| l.split(": ").nth(1))
            .map(|v| v.trim_end_matches(','))
            .unwrap();
        assert_eq!(wall.parse::<f64>().unwrap(), bench.wall.as_secs_f64());

        let uncached = ExperimentBench {
            cache: None,
            ..bench
        };
        assert!(uncached.to_json().contains("\"cache\": null"));
    }

    /// The v4 `profile` block carries the trace's spans and non-zero
    /// counters, and the rendered JSON stays machine-parseable.
    #[test]
    fn profile_block_serializes_spans_and_counters() {
        let mut trace = obs::Trace::default();
        trace.spans.push(obs::SpanAgg {
            path: "bench.sweep".into(),
            count: 1,
            total_ns: 5_000,
            self_ns: 2_000,
        });
        let json = json_trace(&trace);
        assert!(json.contains("\"path\": \"bench.sweep\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"total_ns\": 5000"));
        assert!(json.contains("\"self_ns\": 2000"));
        assert!(json.contains("\"counters\": {}"));

        let (results, mut bench) = {
            let corpus = localias_corpus::generate(1);
            measure_corpus_cached(&corpus[..1], 1, 1, 1, Backend::Steensgaard, None)
        };
        assert_eq!(results.len(), 1);
        bench.profile = Some(trace);
        let json = bench.to_json();
        assert!(json.contains("\"profile\": {"));
        assert!(json.contains("\"spans\": ["));
    }

    /// The v6 `hist` block names every registered histogram — zeros
    /// included — so cold and warm artifacts share a shape, and renders
    /// exact percentiles for the ones that saw samples.
    #[test]
    fn hist_block_renders_all_registered_names() {
        let empty = json_hists(&[]);
        for h in obs::ALL_HISTS {
            assert!(
                empty.contains(&format!("\"{}\"", obs::hist_name(h))),
                "{empty}"
            );
        }
        let parsed = crate::json::parse(&empty).unwrap();
        assert!(matches!(parsed, crate::json::Value::Obj(_)));

        let mut snap = obs::HistSnapshot::empty("analyze.module");
        for v in [10u64, 20, 30, 40] {
            snap.count += 1;
            snap.sum_ns += v;
        }
        snap.min_ns = 10;
        snap.max_ns = 40;
        // Samples 10, 20, 30, 40 land in log2 buckets 4, 5, 5, 6.
        snap.buckets = vec![(4, 1), (5, 2), (6, 1)];
        let json = json_hists(&[snap.clone()]);
        assert!(json.contains("\"count\": 4"));
        assert!(json.contains(&format!("\"p50_ns\": {}", snap.percentile(50))));
        assert!(json.contains(&format!("\"p99_ns\": {}", snap.percentile(99))));
        assert!(json.contains("\"buckets\": [[4,1],[5,2],[6,1]]"));
        crate::json::parse(&json).unwrap();
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn histogram_renders() {
        let h = text_histogram(&[("1".to_string(), 10), ("2".to_string(), 5)], 20);
        assert!(h.contains("####"));
        assert!(h.contains(" 10"));
    }
}
