//! Shared helpers for the benchmark harness: the experiment runner that
//! the figure/table binaries and the complexity benches build on, plus
//! synthetic program generators for those benches and a small in-repo
//! timing harness ([`harness`]) standing in for criterion.

pub mod harness;

use localias_core::SharedAnalysis;
use localias_ast::Module;
use localias_corpus::GeneratedModule;
use localias_cqual::{check_locks_shared, Mode};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-module measured error counts under the three modes.
#[derive(Debug, Clone)]
pub struct ModuleResult {
    /// Module name.
    pub name: String,
    /// Errors without confine inference.
    pub no_confine: usize,
    /// Errors with confine inference.
    pub confine: usize,
    /// Errors assuming all updates strong.
    pub all_strong: usize,
}

/// Wall-clock time one module spent in each pipeline phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Base analysis plus the no-confine and all-strong checks (the two
    /// modes that share one analysis).
    pub check: Duration,
    /// Confine inference plus its check.
    pub confine: Duration,
}

impl PhaseTimes {
    fn accumulate(&mut self, other: PhaseTimes) {
        self.parse += other.parse;
        self.check += other.check;
        self.confine += other.confine;
    }
}

impl ModuleResult {
    /// Measures one corpus module under all three modes.
    ///
    /// The no-confine and all-strong modes share one base analysis
    /// through [`SharedAnalysis`], so this parses once and runs two (not
    /// three) analysis pipelines.
    pub fn measure(m: &GeneratedModule) -> ModuleResult {
        Self::measure_timed(m).0
    }

    /// [`ModuleResult::measure`], also reporting per-phase times.
    pub fn measure_timed(m: &GeneratedModule) -> (ModuleResult, PhaseTimes) {
        let t0 = Instant::now();
        let parsed = m.parse();
        let parse = t0.elapsed();

        let mut shared = SharedAnalysis::new(&parsed);
        let t1 = Instant::now();
        let no_confine = check_locks_shared(&mut shared, Mode::NoConfine).error_count();
        let all_strong = check_locks_shared(&mut shared, Mode::AllStrong).error_count();
        let check = t1.elapsed();

        let t2 = Instant::now();
        let confine = check_locks_shared(&mut shared, Mode::Confine).error_count();
        let confine_time = t2.elapsed();

        (
            ModuleResult {
                name: m.name.clone(),
                no_confine,
                confine,
                all_strong,
            },
            PhaseTimes {
                parse,
                check,
                confine: confine_time,
            },
        )
    }

    /// Spurious errors that strong updates could eliminate.
    pub fn potential(&self) -> usize {
        self.no_confine - self.all_strong.min(self.no_confine)
    }

    /// Spurious errors confine inference eliminated.
    pub fn eliminated(&self) -> usize {
        self.no_confine - self.confine.min(self.no_confine)
    }
}

/// The machine's available parallelism (≥ 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Extracts a `--jobs N` flag from a raw argument list, removing it.
/// Returns `Ok(0)` (auto) when absent.
pub fn take_jobs_flag(args: &mut Vec<String>) -> Result<usize, String> {
    let Some(i) = args.iter().position(|a| a == "--jobs" || a == "-j") else {
        return Ok(0);
    };
    let flag = args.remove(i);
    if i >= args.len() {
        return Err(format!("{flag} requires a thread count"));
    }
    let val = args.remove(i);
    if args.iter().any(|a| a == "--jobs" || a == "-j") {
        return Err(format!("{flag} given more than once"));
    }
    val.parse()
        .map_err(|_| format!("bad thread count `{val}`"))
}

/// Aggregate timing and error statistics for one corpus sweep, ready to
/// serialize as `BENCH_experiment.json`.
#[derive(Debug, Clone)]
pub struct ExperimentBench {
    /// Corpus seed.
    pub seed: u64,
    /// Modules measured.
    pub modules: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of the sweep.
    pub wall: Duration,
    /// Per-phase CPU time, summed over all modules (and threads).
    pub phases: PhaseTimes,
    /// Total error counts per mode, summed over all modules.
    pub errors: (usize, usize, usize),
    /// Total spurious errors strong updates could eliminate.
    pub potential: usize,
    /// Total spurious errors confine inference eliminated.
    pub eliminated: usize,
}

impl ExperimentBench {
    /// Sweep throughput in modules per wall-clock second.
    pub fn modules_per_sec(&self) -> f64 {
        self.modules as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Renders the stats as a small, stable JSON document
    /// (schema `localias-bench-experiment/v1`).
    pub fn to_json(&self) -> String {
        let (nc, cf, st) = self.errors;
        format!(
            "{{\n  \"schema\": \"localias-bench-experiment/v1\",\n  \
             \"seed\": {},\n  \
             \"modules\": {},\n  \
             \"threads\": {},\n  \
             \"wall_seconds\": {:.6},\n  \
             \"modules_per_second\": {:.2},\n  \
             \"phase_cpu_seconds\": {{\n    \
             \"parse\": {:.6},\n    \
             \"check\": {:.6},\n    \
             \"confine\": {:.6}\n  }},\n  \
             \"errors\": {{\n    \
             \"no_confine\": {nc},\n    \
             \"confine\": {cf},\n    \
             \"all_strong\": {st}\n  }},\n  \
             \"spurious\": {{\n    \
             \"potential\": {},\n    \
             \"eliminated\": {}\n  }}\n}}\n",
            self.seed,
            self.modules,
            self.threads,
            self.wall.as_secs_f64(),
            self.modules_per_sec(),
            self.phases.parse.as_secs_f64(),
            self.phases.check.as_secs_f64(),
            self.phases.confine.as_secs_f64(),
            self.potential,
            self.eliminated,
        )
    }
}

/// Measures every module of `corpus` across `jobs` worker threads
/// (`jobs == 0` → [`default_jobs`]). Results come back in corpus order
/// regardless of thread count or scheduling.
pub fn measure_corpus(corpus: &[GeneratedModule], jobs: usize) -> Vec<ModuleResult> {
    measure_corpus_timed(corpus, jobs, 0).0
}

/// [`measure_corpus`] plus aggregate timing statistics.
///
/// Work distribution is a shared atomic index (work stealing at module
/// granularity); each worker keeps `(index, result)` pairs that are
/// merged back into corpus order afterwards, so output is byte-identical
/// for every `jobs` value.
pub fn measure_corpus_timed(
    corpus: &[GeneratedModule],
    jobs: usize,
    seed: u64,
) -> (Vec<ModuleResult>, ExperimentBench) {
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let start = Instant::now();

    let indexed: Vec<(usize, ModuleResult, PhaseTimes)> = if threads <= 1 {
        corpus
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let (r, t) = ModuleResult::measure_timed(m);
                (i, r, t)
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= corpus.len() {
                                break out;
                            }
                            let (r, t) = ModuleResult::measure_timed(&corpus[i]);
                            out.push((i, r, t));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    };

    let mut slots: Vec<Option<ModuleResult>> = vec![None; corpus.len()];
    let mut phases = PhaseTimes::default();
    for (i, r, t) in indexed {
        phases.accumulate(t);
        slots[i] = Some(r);
    }
    let results: Vec<ModuleResult> = slots
        .into_iter()
        .map(|s| s.expect("every module measured exactly once"))
        .collect();

    let errors = results.iter().fold((0, 0, 0), |(nc, cf, st), r| {
        (nc + r.no_confine, cf + r.confine, st + r.all_strong)
    });
    let bench = ExperimentBench {
        seed,
        modules: results.len(),
        threads,
        wall: start.elapsed(),
        phases,
        errors,
        potential: results.iter().map(ModuleResult::potential).sum(),
        eliminated: results.iter().map(ModuleResult::eliminated).sum(),
    };
    (results, bench)
}

/// Runs the whole Section 7 experiment (all available cores) and returns
/// per-module results in corpus order.
pub fn run_experiment(seed: u64) -> Vec<ModuleResult> {
    run_experiment_timed(seed, 0).0
}

/// [`run_experiment`] with an explicit thread count (`0` = auto) and
/// aggregate timing statistics.
pub fn run_experiment_timed(seed: u64, jobs: usize) -> (Vec<ModuleResult>, ExperimentBench) {
    let corpus = localias_corpus::generate(seed);
    measure_corpus_timed(&corpus, jobs, seed)
}

/// Renders a text histogram: `buckets` of `(label, count)`, scaled to
/// `width` columns.
pub fn text_histogram(buckets: &[(String, usize)], width: usize) -> String {
    let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (label, count) in buckets {
        let bar = "#".repeat(count * width / max);
        let _ = writeln!(out, "{label:>12} | {bar} {count}");
    }
    out
}

/// Generates a synthetic program of roughly `n` statements with `k`
/// explicit `restrict` annotations, for the §4 `O(kn)` checking bench.
pub fn checking_workload(n: usize, k: usize) -> Module {
    let mut src = String::from("int g;\nextern void work();\n");
    let funs = n.max(1) / 10 + 1;
    let per_fun = n / funs + 1;
    let mut annotated = 0;
    for f in 0..funs {
        let _ = writeln!(src, "void f{f}(int *q{f}) {{");
        for s in 0..per_fun {
            match s % 5 {
                0 => {
                    let _ = writeln!(src, "    int *a{s} = q{f};");
                }
                1 if annotated < k => {
                    // Each annotation restricts its own fresh location
                    // (two restricts of one location in one scope are
                    // correctly rejected by the checker).
                    annotated += 1;
                    let _ = writeln!(src, "    int *s{s} = new (0);");
                    let _ = writeln!(src, "    restrict int *r{s} = s{s};");
                    let _ = writeln!(src, "    *r{s} = {s};");
                }
                2 => {
                    let _ = writeln!(src, "    int x{s} = g + {s};");
                }
                3 => {
                    let _ = writeln!(src, "    int *h{s} = new ({s});");
                    let _ = writeln!(src, "    *h{s} = {s};");
                }
                _ => {
                    let _ = writeln!(src, "    work();");
                }
            }
        }
        let _ = writeln!(src, "}}");
    }
    localias_ast::parse_module("workload", &src).expect("workload parses")
}

/// Generates a driver-like program with `pairs` confinable lock regions,
/// for the inference scaling benches.
pub fn confine_workload(pairs: usize) -> Module {
    let mut src = String::from("extern void work();\n");
    for p in 0..pairs {
        let _ = writeln!(src, "lock locks{p}[8];");
        let _ = writeln!(src, "void f{p}(int i) {{");
        let _ = writeln!(src, "    spin_lock(&locks{p}[i]);");
        let _ = writeln!(src, "    work();");
        let _ = writeln!(src, "    spin_unlock(&locks{p}[i]);");
        let _ = writeln!(src, "}}");
    }
    localias_ast::parse_module("confine-workload", &src).expect("workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_cqual::check_locks;

    #[test]
    fn checking_workload_scales_and_checks() {
        let m = checking_workload(100, 5);
        let a = localias_core::check(&m);
        assert_eq!(a.restricts.len(), 5);
        assert!(a.restricts.iter().all(|r| r.ok()), "{:?}", a.restricts);
    }

    #[test]
    fn confine_workload_is_fully_recoverable() {
        let m = confine_workload(4);
        let nc = check_locks(&m, Mode::NoConfine).error_count();
        let cf = check_locks(&m, Mode::Confine).error_count();
        assert_eq!(nc, 4);
        assert_eq!(cf, 0);
    }

    #[test]
    fn histogram_renders() {
        let h = text_histogram(&[("1".to_string(), 10), ("2".to_string(), 5)], 20);
        assert!(h.contains("####"));
        assert!(h.contains(" 10"));
    }
}
