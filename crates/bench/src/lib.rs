//! Shared helpers for the benchmark harness: the experiment runner that
//! the figure/table binaries and the Criterion benches build on, plus
//! synthetic program generators for the complexity benches.

use localias_ast::Module;
use localias_corpus::GeneratedModule;
use localias_cqual::{check_locks, Mode};
use std::fmt::Write as _;

/// Per-module measured error counts under the three modes.
#[derive(Debug, Clone)]
pub struct ModuleResult {
    /// Module name.
    pub name: String,
    /// Errors without confine inference.
    pub no_confine: usize,
    /// Errors with confine inference.
    pub confine: usize,
    /// Errors assuming all updates strong.
    pub all_strong: usize,
}

impl ModuleResult {
    /// Measures one corpus module under all three modes.
    pub fn measure(m: &GeneratedModule) -> ModuleResult {
        let parsed = m.parse();
        ModuleResult {
            name: m.name.clone(),
            no_confine: check_locks(&parsed, Mode::NoConfine).error_count(),
            confine: check_locks(&parsed, Mode::Confine).error_count(),
            all_strong: check_locks(&parsed, Mode::AllStrong).error_count(),
        }
    }

    /// Spurious errors that strong updates could eliminate.
    pub fn potential(&self) -> usize {
        self.no_confine - self.all_strong.min(self.no_confine)
    }

    /// Spurious errors confine inference eliminated.
    pub fn eliminated(&self) -> usize {
        self.no_confine - self.confine.min(self.no_confine)
    }
}

/// Runs the whole Section 7 experiment and returns per-module results.
pub fn run_experiment(seed: u64) -> Vec<ModuleResult> {
    localias_corpus::generate(seed)
        .iter()
        .map(ModuleResult::measure)
        .collect()
}

/// Renders a text histogram: `buckets` of `(label, count)`, scaled to
/// `width` columns.
pub fn text_histogram(buckets: &[(String, usize)], width: usize) -> String {
    let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (label, count) in buckets {
        let bar = "#".repeat(count * width / max);
        let _ = writeln!(out, "{label:>12} | {bar} {count}");
    }
    out
}

/// Generates a synthetic program of roughly `n` statements with `k`
/// explicit `restrict` annotations, for the §4 `O(kn)` checking bench.
pub fn checking_workload(n: usize, k: usize) -> Module {
    let mut src = String::from("int g;\nextern void work();\n");
    let funs = n.max(1) / 10 + 1;
    let per_fun = n / funs + 1;
    let mut annotated = 0;
    for f in 0..funs {
        let _ = writeln!(src, "void f{f}(int *q{f}) {{");
        for s in 0..per_fun {
            match s % 5 {
                0 => {
                    let _ = writeln!(src, "    int *a{s} = q{f};");
                }
                1 if annotated < k => {
                    // Each annotation restricts its own fresh location
                    // (two restricts of one location in one scope are
                    // correctly rejected by the checker).
                    annotated += 1;
                    let _ = writeln!(src, "    int *s{s} = new (0);");
                    let _ = writeln!(src, "    restrict int *r{s} = s{s};");
                    let _ = writeln!(src, "    *r{s} = {s};");
                }
                2 => {
                    let _ = writeln!(src, "    int x{s} = g + {s};");
                }
                3 => {
                    let _ = writeln!(src, "    int *h{s} = new ({s});");
                    let _ = writeln!(src, "    *h{s} = {s};");
                }
                _ => {
                    let _ = writeln!(src, "    work();");
                }
            }
        }
        let _ = writeln!(src, "}}");
    }
    localias_ast::parse_module("workload", &src).expect("workload parses")
}

/// Generates a driver-like program with `pairs` confinable lock regions,
/// for the inference scaling benches.
pub fn confine_workload(pairs: usize) -> Module {
    let mut src = String::from("extern void work();\n");
    for p in 0..pairs {
        let _ = writeln!(src, "lock locks{p}[8];");
        let _ = writeln!(src, "void f{p}(int i) {{");
        let _ = writeln!(src, "    spin_lock(&locks{p}[i]);");
        let _ = writeln!(src, "    work();");
        let _ = writeln!(src, "    spin_unlock(&locks{p}[i]);");
        let _ = writeln!(src, "}}");
    }
    localias_ast::parse_module("confine-workload", &src).expect("workload parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checking_workload_scales_and_checks() {
        let m = checking_workload(100, 5);
        let a = localias_core::check(&m);
        assert_eq!(a.restricts.len(), 5);
        assert!(a.restricts.iter().all(|r| r.ok()), "{:?}", a.restricts);
    }

    #[test]
    fn confine_workload_is_fully_recoverable() {
        let m = confine_workload(4);
        let nc = check_locks(&m, Mode::NoConfine).error_count();
        let cf = check_locks(&m, Mode::Confine).error_count();
        assert_eq!(nc, 4);
        assert_eq!(cf, 0);
    }

    #[test]
    fn histogram_renders() {
        let h = text_histogram(&[("1".to_string(), 10), ("2".to_string(), 5)], 20);
        assert!(h.contains("####"));
        assert!(h.contains(" 10"));
    }
}
