//! Differential-fuzzing benchmark: throughput and precision of the
//! checker-vs-interpreter oracle loop (`localias_bench::fuzz`).
//!
//! Run with `cargo run --release -p localias-bench --bin fuzz`.
//! `--modules N` sets the number of fuzzed modules (default 2000), the
//! positional argument the corpus seed; the shared observability flags
//! (`--trace-out FILE`, `--profile`, `--quiet`) are honored. The
//! machine-readable report (schema `localias-bench-fuzz/v2`, which
//! added the `hist` latency block) is written to `BENCH_fuzz.json`, or
//! to `--bench-out FILE` when given: modules/s fuzzed, the
//! false-positive rate per mode per backend, shrinker statistics,
//! per-operation latency histograms, and the embedded obs profile
//! block.
//!
//! The binary exits non-zero on any soundness divergence — a fuzz
//! sweep doubles as a release gate.

use std::fmt::Write as _;
use std::time::Instant;

use localias_alias::Backend;
use localias_bench::fuzz::{mode_name, run_fuzz, FuzzConfig, FuzzReport};
use localias_bench::{finish_obs, init_obs, json_hists, json_trace, CliOpts, ObsReport};
use localias_cqual::MODES;
use localias_obs as obs;

fn fp_rates_json(report: &FuzzReport) -> String {
    let mut out = String::from("[\n    ");
    for (bi, backend) in Backend::ALL.into_iter().enumerate() {
        if bi > 0 {
            out.push_str(",\n    ");
        }
        let _ = write!(out, "{{\"backend\": \"{}\", \"modes\": {{", backend.name());
        for (mi, &mode) in MODES.iter().enumerate() {
            if mi > 0 {
                out.push_str(", ");
            }
            let st = &report.stats[backend.index()][mi];
            let _ = write!(
                out,
                "\"{}\": {{\"flagged\": {}, \"true_positives\": {}, \
                 \"false_positives\": {}, \"rate\": {}}}",
                mode_name(mode),
                st.flagged_funs,
                st.true_positive_funs,
                st.false_positive_funs,
                st.fp_rate(),
            );
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]");
    out
}

fn report_json(
    cfg: &FuzzConfig,
    report: &FuzzReport,
    wall_seconds: f64,
    obs_report: &ObsReport,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"localias-bench-fuzz/v2\",\n");
    let _ = write!(
        out,
        "  \"seed\": {},\n  \"iterations\": {},\n  \"fuel\": {},\n  \
         \"wall_seconds\": {wall_seconds},\n  \"modules_per_sec\": {},\n  \
         \"entries\": {},\n  \"runs\": {},\n  \"dyn_faults\": {},\n  \
         \"leaks\": {},\n  \"restrict_violations\": {},\n  \
         \"out_of_fuel\": {},\n  \"exec_errors\": {},\n  \
         \"divergences\": {},\n  \"fp_rates\": {},\n  \
         \"shrink\": {{\"candidates\": {}, \"steps\": {}}},\n  \"hist\": ",
        cfg.seed,
        cfg.iterations,
        cfg.fuel,
        report.modules as f64 / wall_seconds.max(1e-9),
        report.entries,
        report.runs,
        report.dyn_faults,
        report.leaks,
        report.restrict_violations,
        report.out_of_fuel,
        report.exec_errors,
        report.divergences.len(),
        fp_rates_json(report),
        report.shrink_candidates,
        report.shrink_steps,
    );
    out.push_str(&json_hists(&obs_report.hists));
    out.push_str(",\n  \"profile\": ");
    match &obs_report.trace {
        None => out.push_str("null"),
        Some(t) => out.push_str(&json_trace(t)),
    }
    out.push_str("\n}\n");
    out
}

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("fuzz: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    let cfg = FuzzConfig {
        seed: opts.seed_or_default(),
        iterations: opts.modules.unwrap_or(2000) as u64,
        ..FuzzConfig::default()
    };

    let t0 = Instant::now();
    let report = run_fuzz(&cfg);
    let wall = t0.elapsed();
    let obs_report = match finish_obs(&opts) {
        Ok(report) => report,
        Err(e) => {
            obs::error!("fuzz: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "Differential fuzzing — {} modules (seed {}), {:.2?}, {:.0} modules/s",
        report.modules,
        cfg.seed,
        wall,
        report.modules as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!();
    print!("{}", report.summary());
    println!();

    let out_path = opts
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_fuzz.json".to_string());
    let json = report_json(&cfg, &report, wall.as_secs_f64(), &obs_report);
    if let Err(e) = std::fs::write(&out_path, json) {
        obs::error!("fuzz: {out_path}: {e}");
        std::process::exit(1);
    }
    println!("(wrote {out_path})");

    if !report.clean() {
        obs::error!(
            "fuzz: {} soundness divergence(s) — the checker missed real faults",
            report.divergences.len()
        );
        std::process::exit(1);
    }
}
