//! Regenerates the Section 7 summary statistics — the experiment's
//! headline numbers — and prints them next to the paper's values.
//!
//! Run with `cargo run --release -p localias-bench --bin summary`.
//! Accepts an optional corpus seed, `--jobs N` worker threads (default:
//! all available cores), `--cache DIR` / `--no-cache` / `--cache-shards N`
//! to control the incremental result cache (default: `.localias-cache/`,
//! 16 shard files), and `--bench-out FILE` for the machine-readable
//! report.

use localias_bench::{finish_obs, init_obs, run_experiment_cached, CliOpts, ModuleResult};
use localias_obs as obs;

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("summary: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    let seed = opts.seed_or_default();
    let (results, mut bench) =
        run_experiment_cached(seed, opts.jobs, opts.intra_jobs, opts.alias, &opts.cache);
    match finish_obs(&opts) {
        Ok(report) => {
            bench.profile = report.trace;
            bench.hist = report.hists;
        }
        Err(e) => {
            obs::error!("summary: {e}");
            std::process::exit(1);
        }
    }

    let clean = results.iter().filter(|r| r.no_confine == 0).count();
    let real = results
        .iter()
        .filter(|r| r.no_confine > 0 && r.no_confine == r.all_strong)
        .count();
    let full = results
        .iter()
        .filter(|r| r.no_confine > r.all_strong && r.confine == r.all_strong)
        .count();
    let partial = results
        .iter()
        .filter(|r| r.no_confine > r.all_strong && r.confine > r.all_strong)
        .count();
    let potential: usize = results.iter().map(ModuleResult::potential).sum();
    let eliminated: usize = results.iter().map(ModuleResult::eliminated).sum();
    let pct = 100.0 * eliminated as f64 / potential as f64;

    println!(
        "Section 7 experiment — {} modules (seed {seed})",
        results.len()
    );
    println!();
    println!("{:<46} {:>8} {:>8}", "", "paper", "measured");
    println!("{:<46} {:>8} {:>8}", "modules analyzed", 589, results.len());
    println!(
        "{:<46} {:>8} {:>8}",
        "error-free without confine", 352, clean
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "errors unrelated to weak updates", 85, real
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "confine == all-strong (fully recovered)", 138, full
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "confine misses strong updates (Figure 7)", 14, partial
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "potentially eliminable type errors", 3277, potential
    );
    println!(
        "{:<46} {:>8} {:>8}",
        "eliminated by confine inference", 3116, eliminated
    );
    println!("{:<46} {:>7}% {:>7.0}%", "elimination rate", 95, pct);
    println!();
    println!(
        "(full corpus analyzed in {:.2?} on {} thread{}, {:.0} modules/s)",
        bench.wall,
        bench.threads,
        if bench.threads == 1 { "" } else { "s" },
        bench.modules_per_sec()
    );
    if let Some(c) = &bench.cache {
        println!(
            "(cache: {} hits, {} misses, dir {})",
            c.hits, c.misses, c.dir
        );
    }
    if let Some(path) = &opts.bench_out {
        if let Err(e) = std::fs::write(path, bench.to_json()) {
            obs::error!("summary: {path}: {e}");
            std::process::exit(1);
        }
        println!("(wrote {path})");
    }
}
