//! `scale` — throughput and memory vs. corpus size.
//!
//! Sweeps a grid of (corpus size, partition count) points. Every point
//! runs in fresh child processes of the `localias` driver binary — one
//! per partition, concurrently, over a shared cold cache — so peak RSS
//! is measured per sweep rather than accumulating across points.
//! Multi-partition points are `bench-merge`d and the merged module count
//! cross-checked, so the sweep exercises the same split/merge pipeline
//! a real multi-process run uses.
//!
//! ```text
//! scale [SEED] [--sizes N,N,...] [--partitions N,N,...] [--jobs N]
//!       [--bench-out FILE] [--bin PATH]
//! ```
//!
//! Defaults: sizes 1000,5000,20000,50000; partitions 1,2; the driver
//! binary at target/release/localias (or `$LOCALIAS_BIN`). The report
//! (schema `localias-bench-scale/v2`, which added the `hist` block)
//! embeds the obs profile and latency-histogram blocks from the largest
//! single-partition run, so the per-phase span tree, the `mem.*`
//! gauges, and the per-module latency distribution for the heaviest
//! sweep travel with the curve.

use localias_bench::json::{self, Value};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

struct Opts {
    seed: u64,
    sizes: Vec<usize>,
    partitions: Vec<usize>,
    jobs: usize,
    bench_out: Option<String>,
    bin: PathBuf,
}

struct Point {
    modules: usize,
    partitions: usize,
    wall_seconds: f64,
    modules_per_second: f64,
    peak_rss_bytes: u64,
    arena_bytes: u64,
    arena_saved_bytes: u64,
}

fn parse_list(val: &str, flag: &str) -> Result<Vec<usize>, String> {
    let out = val
        .split(',')
        .map(|s| s.trim().parse::<usize>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| format!("{flag}: bad list `{val}` (expected N,N,...)"))?;
    if out.is_empty() || out.contains(&0) {
        return Err(format!("{flag}: entries must be positive (got `{val}`)"));
    }
    Ok(out)
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        seed: localias_corpus::DEFAULT_SEED,
        sizes: vec![1_000, 5_000, 20_000, 50_000],
        partitions: vec![1, 2],
        jobs: 0,
        bench_out: None,
        bin: std::env::var_os("LOCALIAS_BIN")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/release/localias")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{a_flag} requires {what}", a_flag = a.clone()))
        };
        match a.as_str() {
            "--sizes" => opts.sizes = parse_list(&val("a size list")?, "--sizes")?,
            "--partitions" => {
                opts.partitions = parse_list(&val("a partition list")?, "--partitions")?;
            }
            "--jobs" | "-j" => {
                let v = val("a thread count")?;
                opts.jobs = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--bench-out" => opts.bench_out = Some(val("a file path")?),
            "--bin" => opts.bin = PathBuf::from(val("a driver binary path")?),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            positional => {
                opts.seed = positional
                    .parse()
                    .map_err(|_| format!("bad seed `{positional}`"))?;
            }
        }
    }
    Ok(opts)
}

fn read_json(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn counter(profile: &Value, name: &str) -> u64 {
    profile
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Runs one (size, partitions) point; returns the point plus the
/// profile and hist blocks of partition 0 (for embedding when this is
/// the headline point).
fn run_point(
    opts: &Opts,
    scratch: &Path,
    size: usize,
    parts: usize,
) -> Result<(Point, Value, Value), String> {
    let dir = scratch.join(format!("point-{size}-{parts}"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let cache = dir.join("cache");

    let mut children = Vec::with_capacity(parts);
    for i in 0..parts {
        let out = dir.join(format!("p{i}.json"));
        let child = Command::new(&opts.bin)
            .args([
                "experiment",
                &opts.seed.to_string(),
                "--modules",
                &size.to_string(),
                "--partition",
                &format!("{i}/{parts}"),
                "--jobs",
                &opts.jobs.to_string(),
                "--cache",
                cache.to_str().unwrap(),
                "--bench-out",
                out.to_str().unwrap(),
                "--profile",
                "--quiet",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("{}: {e}", opts.bin.display()))?;
        children.push((child, out));
    }

    let mut wall = 0.0f64;
    let mut peak_rss = 0u64;
    let mut arena = 0u64;
    let mut arena_saved = 0u64;
    let mut profile0 = Value::Null;
    let mut hist0 = Value::Null;
    for (i, (mut child, out)) in children.into_iter().enumerate() {
        let status = child.wait().map_err(|e| format!("wait: {e}"))?;
        if !status.success() {
            return Err(format!(
                "partition {i}/{parts} of the {size}-module sweep failed ({status})"
            ));
        }
        let doc = read_json(&out)?;
        let w = doc
            .get("wall_seconds")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{}: missing wall_seconds", out.display()))?;
        wall = wall.max(w);
        let profile = doc
            .get("profile")
            .cloned()
            .filter(|p| !p.is_null())
            .ok_or_else(|| format!("{}: missing profile block", out.display()))?;
        peak_rss = peak_rss.max(counter(&profile, "mem.peak_rss_bytes"));
        arena = arena.max(counter(&profile, "mem.arena_bytes"));
        arena_saved = arena_saved.max(counter(&profile, "mem.arena_saved_bytes"));
        if i == 0 {
            profile0 = profile;
            hist0 = doc.get("hist").cloned().unwrap_or(Value::Null);
        }
    }

    // Multi-partition points go through the real merge step, and the
    // merged artifact must cover the whole corpus.
    if parts > 1 {
        let merged = dir.join("merged.json");
        let mut cmd = Command::new(&opts.bin);
        cmd.arg("bench-merge");
        for i in 0..parts {
            cmd.arg(dir.join(format!("p{i}.json")));
        }
        let status = cmd
            .args(["--out", merged.to_str().unwrap()])
            .stdout(Stdio::null())
            .status()
            .map_err(|e| format!("bench-merge: {e}"))?;
        if !status.success() {
            return Err(format!("bench-merge of the {size}-module sweep failed"));
        }
        let doc = read_json(&merged)?;
        let total = doc.get("modules").and_then(Value::as_usize);
        if total != Some(size) {
            return Err(format!(
                "merged artifact covers {total:?} modules, expected {size}"
            ));
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok((
        Point {
            modules: size,
            partitions: parts,
            wall_seconds: wall,
            modules_per_second: size as f64 / wall.max(1e-9),
            peak_rss_bytes: peak_rss,
            arena_bytes: arena,
            arena_saved_bytes: arena_saved,
        },
        profile0,
        hist0,
    ))
}

fn render_report(opts: &Opts, points: &[Point], profile: &Value, hist: &Value) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema\": \"localias-bench-scale/v2\",\n  \"seed\": {},\n  \
         \"jobs\": {},\n  \"points\": [",
        opts.seed, opts.jobs
    );
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"modules\": {}, \"partitions\": {}, \"wall_seconds\": {}, \
             \"modules_per_second\": {}, \"peak_rss_bytes\": {}, \"arena_bytes\": {}, \
             \"arena_saved_bytes\": {}}}",
            if i == 0 { "" } else { "," },
            p.modules,
            p.partitions,
            p.wall_seconds,
            p.modules_per_second,
            p.peak_rss_bytes,
            p.arena_bytes,
            p.arena_saved_bytes
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"hist\": {},\n  \"profile\": {}\n}}\n",
        hist.render(),
        profile.render()
    );
    out
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("scale: {e}");
            std::process::exit(2);
        }
    };
    if !opts.bin.exists() {
        eprintln!(
            "scale: driver binary {} not found — build it first \
             (cargo build --release -p localias-driver) or set LOCALIAS_BIN",
            opts.bin.display()
        );
        std::process::exit(2);
    }

    let scratch = std::env::temp_dir().join(format!("localias-scale-{}", std::process::id()));
    let mut points = Vec::new();
    // The profile and hist blocks embedded in the report: the largest
    // single-partition sweep, i.e. the heaviest single process.
    let mut headline: Option<(usize, Value, Value)> = None;
    for &size in &opts.sizes {
        for &parts in &opts.partitions {
            match run_point(&opts, &scratch, size, parts) {
                Ok((point, profile, hist)) => {
                    println!(
                        "{:>7} modules x {} partition{}: {:>8.0} modules/s, \
                         peak RSS {:.1} MiB, wall {:.2}s",
                        point.modules,
                        point.partitions,
                        if point.partitions == 1 { " " } else { "s" },
                        point.modules_per_second,
                        point.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                        point.wall_seconds,
                    );
                    if parts == 1 && headline.as_ref().is_none_or(|(s, ..)| size > *s) {
                        headline = Some((size, profile, hist));
                    }
                    points.push(point);
                }
                Err(e) => {
                    let _ = std::fs::remove_dir_all(&scratch);
                    eprintln!("scale: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let (profile, hist) = headline
        .map(|(_, p, h)| (p, h))
        .unwrap_or((Value::Null, Value::Null));
    let report = render_report(&opts, &points, &profile, &hist);
    match &opts.bench_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("scale: {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        None => print!("{report}"),
    }
}
