//! The alias-backend precision/perf frontier: runs the full Section 7
//! experiment once per alias backend and prints the two sweeps side by
//! side — the four module categories, per-mode error totals, the
//! elimination rate, and wall-clock throughput — so the cost of the
//! more precise inclusion-based (Andersen) freeze is measured against
//! the paper's unification-based (Steensgaard) configuration rather
//! than guessed.
//!
//! Run with `cargo run --release -p localias-bench --bin alias`.
//! Accepts the shared sweep flags (`--seed`, `--jobs N`, `--intra-jobs N`,
//! `--cache DIR` / `--no-cache` / `--cache-shards N`, `--obs` /
//! `--obs-out FILE`). `--alias` is accepted but ignored: this binary
//! always sweeps every backend. The machine-readable report (schema
//! `localias-bench-alias/v2`, which added the `hist` latency block) is
//! written to `BENCH_alias.json`, or to
//! `--bench-out FILE` when given.
//!
//! On the default seed the Steensgaard sweep must reproduce the paper's
//! headline split — 352/85/138/14 over 589 modules — and the binary
//! exits non-zero if it does not, so the frontier numbers are anchored
//! to a verified baseline.

use std::fmt::Write as _;

use localias_alias::Backend;
use localias_bench::{
    finish_obs, init_obs, json_hists, json_trace, run_experiment_cached, CliOpts, ExperimentBench,
    ModuleResult, ObsReport,
};
use localias_corpus::DEFAULT_SEED;
use localias_obs as obs;

/// The paper's four-way module split at 589 modules: error-free without
/// confine, errors unrelated to weak updates, fully recovered by confine
/// inference, and the Figure 7 residue.
const PAPER_CATEGORIES: (usize, usize, usize, usize) = (352, 85, 138, 14);

/// One backend's sweep, reduced to the frontier quantities.
struct FrontierRow {
    backend: Backend,
    modules: usize,
    categories: (usize, usize, usize, usize),
    errors: (usize, usize, usize),
    potential: usize,
    eliminated: usize,
    bench: ExperimentBench,
}

/// Splits per-module results into the paper's four categories
/// (clean / real errors / fully recovered / partially recovered).
fn categories(results: &[ModuleResult]) -> (usize, usize, usize, usize) {
    let clean = results.iter().filter(|r| r.no_confine == 0).count();
    let real = results
        .iter()
        .filter(|r| r.no_confine > 0 && r.no_confine == r.all_strong)
        .count();
    let full = results
        .iter()
        .filter(|r| r.no_confine > r.all_strong && r.confine == r.all_strong)
        .count();
    let partial = results
        .iter()
        .filter(|r| r.no_confine > r.all_strong && r.confine > r.all_strong)
        .count();
    (clean, real, full, partial)
}

fn sweep(backend: Backend, seed: u64, opts: &CliOpts) -> FrontierRow {
    let (results, bench) =
        run_experiment_cached(seed, opts.jobs, opts.intra_jobs, backend, &opts.cache);
    let errors = (
        results.iter().map(|r| r.no_confine).sum(),
        results.iter().map(|r| r.confine).sum(),
        results.iter().map(|r| r.all_strong).sum(),
    );
    FrontierRow {
        backend,
        modules: results.len(),
        categories: categories(&results),
        errors,
        potential: results.iter().map(ModuleResult::potential).sum(),
        eliminated: results.iter().map(ModuleResult::eliminated).sum(),
        bench,
    }
}

impl FrontierRow {
    fn elimination_rate(&self) -> f64 {
        100.0 * self.eliminated as f64 / self.potential.max(1) as f64
    }

    fn matches_paper(&self) -> Option<bool> {
        (self.modules == 589).then(|| self.categories == PAPER_CATEGORIES)
    }

    fn json(&self) -> String {
        let (clean, real, full, partial) = self.categories;
        let (nc, cf, st) = self.errors;
        let matches = match self.matches_paper() {
            None => "null".to_string(),
            Some(b) => b.to_string(),
        };
        let cache = match &self.bench.cache {
            None => "null".to_string(),
            Some(c) => format!("{{\"hits\": {}, \"misses\": {}}}", c.hits, c.misses),
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n      \"backend\": \"{}\",\n      \"modules\": {},\n      \
             \"wall_seconds\": {},\n      \"modules_per_sec\": {},\n      \
             \"errors\": {{\"no_confine\": {nc}, \"confine\": {cf}, \"all_strong\": {st}}},\n      \
             \"categories\": {{\"clean\": {clean}, \"real\": {real}, \"full\": {full}, \
             \"partial\": {partial}}},\n      \
             \"potential\": {},\n      \"eliminated\": {},\n      \
             \"elimination_rate\": {},\n      \"matches_paper\": {matches},\n      \
             \"cache\": {cache}\n    }}",
            self.backend,
            self.modules,
            self.bench.wall.as_secs_f64(),
            self.bench.modules_per_sec(),
            self.potential,
            self.eliminated,
            self.elimination_rate(),
        );
        out
    }
}

fn report_json(seed: u64, opts: &CliOpts, rows: &[FrontierRow], report: &ObsReport) -> String {
    let mut out = String::from("{\n  \"schema\": \"localias-bench-alias/v2\",\n");
    let _ = write!(
        out,
        "  \"seed\": {seed},\n  \"jobs\": {},\n  \"intra_jobs\": {},\n  \"backends\": [\n    ",
        opts.jobs, opts.intra_jobs
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n    ");
        }
        out.push_str(&row.json());
    }
    out.push_str("\n  ],\n  \"hist\": ");
    out.push_str(&json_hists(&report.hists));
    out.push_str(",\n  \"profile\": ");
    match &report.trace {
        None => out.push_str("null"),
        Some(t) => out.push_str(&json_trace(t)),
    }
    out.push_str("\n}\n");
    out
}

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("alias: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    let seed = opts.seed_or_default();

    let rows: Vec<FrontierRow> = Backend::ALL
        .iter()
        .map(|&b| sweep(b, seed, &opts))
        .collect();
    let report = match finish_obs(&opts) {
        Ok(report) => report,
        Err(e) => {
            obs::error!("alias: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "Alias backend frontier — {} modules (seed {seed})",
        rows[0].modules
    );
    println!();
    println!("{:<42} {:>14} {:>14}", "", "steensgaard", "andersen");
    let pair =
        |f: &dyn Fn(&FrontierRow) -> String| -> (String, String) { (f(&rows[0]), f(&rows[1])) };
    let print_row = |label: &str, f: &dyn Fn(&FrontierRow) -> String| {
        let (a, b) = pair(f);
        println!("{label:<42} {a:>14} {b:>14}");
    };
    print_row("error-free without confine", &|r| {
        r.categories.0.to_string()
    });
    print_row("errors unrelated to weak updates", &|r| {
        r.categories.1.to_string()
    });
    print_row("confine == all-strong (fully recovered)", &|r| {
        r.categories.2.to_string()
    });
    print_row("confine misses strong updates (Figure 7)", &|r| {
        r.categories.3.to_string()
    });
    print_row("no-confine errors (total)", &|r| r.errors.0.to_string());
    print_row("confine errors (total)", &|r| r.errors.1.to_string());
    print_row("all-strong errors (total)", &|r| r.errors.2.to_string());
    print_row("eliminated / potential", &|r| {
        format!("{}/{}", r.eliminated, r.potential)
    });
    print_row("elimination rate", &|r| {
        format!("{:.0}%", r.elimination_rate())
    });
    print_row("wall time", &|r| format!("{:.2?}", r.bench.wall));
    print_row("modules/s", &|r| {
        format!("{:.0}", r.bench.modules_per_sec())
    });
    println!();

    let out_path = opts
        .bench_out
        .clone()
        .unwrap_or_else(|| "BENCH_alias.json".to_string());
    if let Err(e) = std::fs::write(&out_path, report_json(seed, &opts, &rows, &report)) {
        obs::error!("alias: {out_path}: {e}");
        std::process::exit(1);
    }
    println!("(wrote {out_path})");

    // Anchor the frontier to the verified baseline: on the default seed
    // the Steensgaard sweep must reproduce the paper's headline split.
    if seed == DEFAULT_SEED {
        if let Some(false) = rows[0].matches_paper() {
            obs::error!(
                "alias: steensgaard categories {:?} diverge from the paper's {:?}",
                rows[0].categories,
                PAPER_CATEGORIES
            );
            std::process::exit(1);
        }
        println!("steensgaard baseline matches the paper: 352/85/138/14 over 589 modules");
    }
}
