//! Regenerates Figure 6: the distribution of spurious type errors
//! eliminated by confine inference over the modules where strong updates
//! matter.
//!
//! Run with `cargo run --release -p localias-bench --bin fig6`.
//! Accepts an optional corpus seed and `--jobs N` worker threads.

use localias_bench::{run_experiment_timed, take_jobs_flag, text_histogram};
use localias_corpus::DEFAULT_SEED;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match take_jobs_flag(&mut args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("fig6: {e}");
            std::process::exit(2);
        }
    };
    let seed = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let (results, _bench) = run_experiment_timed(seed, jobs);

    // The modules where confine inference could make a difference.
    let eliminations: Vec<usize> = results
        .iter()
        .filter(|r| r.no_confine > r.all_strong)
        .map(|r| r.eliminated())
        .collect();

    const BUCKETS: [(usize, usize, &str); 10] = [
        (0, 0, "0"),
        (1, 1, "1"),
        (2, 2, "2"),
        (3, 4, "3-4"),
        (5, 8, "5-8"),
        (9, 16, "9-16"),
        (17, 32, "17-32"),
        (33, 64, "33-64"),
        (65, 128, "65-128"),
        (129, usize::MAX, "129+"),
    ];
    let buckets: Vec<(String, usize)> = BUCKETS
        .iter()
        .map(|&(lo, hi, label)| {
            let n = eliminations.iter().filter(|&&e| lo <= e && e <= hi).count();
            (label.to_string(), n)
        })
        .collect();

    println!("Figure 6: spurious type errors eliminated by confine inference");
    println!(
        "({} modules where strong updates matter, seed {seed})",
        eliminations.len()
    );
    println!();
    println!("  eliminated | modules");
    print!("{}", text_histogram(&buckets, 50));
    println!();
    println!(
        "total eliminated: {} (paper: 3,116)",
        eliminations.iter().sum::<usize>()
    );
}
