//! Regenerates Figure 6: the distribution of spurious type errors
//! eliminated by confine inference over the modules where strong updates
//! matter.
//!
//! Run with `cargo run --release -p localias-bench --bin fig6`.
//! Accepts an optional corpus seed, `--jobs N` worker threads, and
//! `--cache DIR` / `--no-cache` / `--cache-shards N` for the incremental
//! result cache.

use localias_bench::{finish_obs, init_obs, run_experiment_cached, text_histogram, CliOpts};
use localias_obs as obs;

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("fig6: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    let seed = opts.seed_or_default();
    let (results, mut bench) =
        run_experiment_cached(seed, opts.jobs, opts.intra_jobs, opts.alias, &opts.cache);
    match finish_obs(&opts) {
        Ok(report) => {
            bench.profile = report.trace;
            bench.hist = report.hists;
        }
        Err(e) => {
            obs::error!("fig6: {e}");
            std::process::exit(1);
        }
    }

    // The modules where confine inference could make a difference.
    let eliminations: Vec<usize> = results
        .iter()
        .filter(|r| r.no_confine > r.all_strong)
        .map(|r| r.eliminated())
        .collect();

    const BUCKETS: [(usize, usize, &str); 10] = [
        (0, 0, "0"),
        (1, 1, "1"),
        (2, 2, "2"),
        (3, 4, "3-4"),
        (5, 8, "5-8"),
        (9, 16, "9-16"),
        (17, 32, "17-32"),
        (33, 64, "33-64"),
        (65, 128, "65-128"),
        (129, usize::MAX, "129+"),
    ];
    let buckets: Vec<(String, usize)> = BUCKETS
        .iter()
        .map(|&(lo, hi, label)| {
            let n = eliminations.iter().filter(|&&e| lo <= e && e <= hi).count();
            (label.to_string(), n)
        })
        .collect();

    println!("Figure 6: spurious type errors eliminated by confine inference");
    println!(
        "({} modules where strong updates matter, seed {seed})",
        eliminations.len()
    );
    println!();
    println!("  eliminated | modules");
    print!("{}", text_histogram(&buckets, 50));
    println!();
    println!(
        "total eliminated: {} (paper: 3,116)",
        eliminations.iter().sum::<usize>()
    );
    if let Some(path) = &opts.bench_out {
        if let Err(e) = std::fs::write(path, bench.to_json()) {
            obs::error!("fig6: {path}: {e}");
            std::process::exit(1);
        }
    }
}
