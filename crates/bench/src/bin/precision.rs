//! Compares the unification-based (Steensgaard) and inclusion-based
//! (Andersen) alias analyses over the driver corpus — quantifying the
//! direction the paper's §8 leaves unexplored ("restrict checking can
//! also be combined with more precise alias analyses").
//!
//! Metric: for every pair of pointer-typed locals in a function, does the
//! analysis consider their targets overlapping? Pairs aliased by
//! unification but *not* by inclusion are unification's precision loss —
//! each is a site where a more precise back-end could admit more
//! restricts/confines.
//!
//! Run with `cargo run --release -p localias-bench --bin precision`.
//! Accepts the shared CLI surface ([`CliOpts`]); the sweep shares the
//! experiment's sharded result store (default `.localias-cache/`) under
//! domain-separated keys, so a warm precision sweep re-runs nothing and
//! never collides with experiment entries. Persisting is merge-on-write
//! under per-shard locks, so `precision` and `experiment` can run side
//! by side on one cache directory without losing entries.

use localias_alias::andersen::{self, Cell};
use localias_alias::steensgaard;
use localias_bench::cache::{precision_fingerprint, PrecisionOutcome};
use localias_bench::harness::timed;
use localias_bench::{finish_obs, init_obs, AnalysisCache, CachePolicy, CliOpts};
use localias_corpus::random_module_source;
use localias_obs as obs;
use std::time::Duration;

/// Number of random pointer-heavy modules to compare.
const MODULES: u64 = 400;
/// Statements per module.
const STMTS: usize = 14;

/// Measures one subject module from scratch.
fn measure(src: &str) -> PrecisionOutcome {
    let parsed = localias_ast::parse_module("synth", src).expect("generated modules parse");
    let pts = andersen::analyze(&parsed);
    let mut uni = steensgaard::analyze(&parsed);

    let mut out = PrecisionOutcome {
        pairs: 0,
        aliased_uni: 0,
        aliased_incl: 0,
        gap: false,
    };
    for f in parsed.functions() {
        let fun = f.name.name.as_str();
        let ptrs: Vec<(String, localias_alias::Loc)> = uni
            .state
            .vars
            .iter()
            .filter(|v| v.fun.as_deref() == Some(fun))
            .filter_map(|v| v.ty.pointee().map(|l| (v.name.clone(), l)))
            .collect();
        for i in 0..ptrs.len() {
            for j in (i + 1)..ptrs.len() {
                out.pairs += 1;
                let u = uni.state.locs.same(ptrs[i].1, ptrs[j].1);
                let a = pts.may_point_same(
                    &Cell::Var(Some(fun.to_string()), ptrs[i].0.clone()),
                    &Cell::Var(Some(fun.to_string()), ptrs[j].0.clone()),
                );
                if u {
                    out.aliased_uni += 1;
                }
                if a {
                    out.aliased_incl += 1;
                }
                if u && !a {
                    out.gap = true;
                }
            }
        }
    }
    out
}

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("precision: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    let seed = opts.seed_or_default();
    let mut cache = match &opts.cache {
        CachePolicy::Disabled => None,
        CachePolicy::Dir { dir, shards } => Some(AnalysisCache::load_sharded(dir, *shards)),
    };

    let mut pairs_total = 0u64;
    let mut aliased_uni = 0u64;
    let mut aliased_incl = 0u64;
    let mut modules_with_gap = 0u64;
    let mut hits = 0usize;
    let mut misses = 0usize;

    let (_, elapsed) = timed("precision.sweep", || {
        for k in 0..MODULES {
            let src = random_module_source(seed.wrapping_add(k), STMTS);
            let key = precision_fingerprint(&src);
            let outcome = match cache.as_ref().and_then(|c| c.lookup_values(key)) {
                Some(v) => {
                    hits += 1;
                    PrecisionOutcome::from_values(v)
                }
                None => {
                    misses += 1;
                    let o = measure(&src);
                    if let Some(c) = cache.as_mut() {
                        c.record_values(key, key, o.to_values());
                    }
                    o
                }
            };
            pairs_total += outcome.pairs;
            aliased_uni += outcome.aliased_uni;
            aliased_incl += outcome.aliased_incl;
            if outcome.gap {
                modules_with_gap += 1;
            }
        }
    });
    let elapsed = Duration::from_secs_f64(elapsed);
    if let Some(c) = cache.as_mut() {
        if let Err(e) = c.persist() {
            obs::warn!("precision: warning: cache not written ({e})");
        }
    }

    println!("Alias-analysis precision over {MODULES} random pointer-heavy modules (seed {seed})");
    println!();
    println!("{:<46} {:>10}", "pointer-local pairs compared", pairs_total);
    println!(
        "{:<46} {:>10}",
        "aliased under unification (Steensgaard)", aliased_uni
    );
    println!(
        "{:<46} {:>10}",
        "aliased under inclusion (Andersen)", aliased_incl
    );
    println!(
        "{:<46} {:>10}",
        "pairs only unification conflates",
        aliased_uni - aliased_incl
    );
    println!(
        "{:<46} {:>10}",
        "modules where precision differs", modules_with_gap
    );
    println!();
    if cache.is_some() {
        println!("(both analyses over {MODULES} modules in {elapsed:.2?}; cache: {hits} hits, {misses} misses)");
    } else {
        println!("(both analyses over {MODULES} modules in {elapsed:.2?}, uncached)");
    }
    if let Err(e) = finish_obs(&opts) {
        obs::error!("precision: {e}");
        std::process::exit(1);
    }
}
