//! Compares the unification-based (Steensgaard) and inclusion-based
//! (Andersen) alias analyses over the driver corpus — quantifying the
//! direction the paper's §8 leaves unexplored ("restrict checking can
//! also be combined with more precise alias analyses").
//!
//! Metric: for every pair of pointer-typed locals in a function, does the
//! analysis consider their targets overlapping? Pairs aliased by
//! unification but *not* by inclusion are unification's precision loss —
//! each is a site where a more precise back-end could admit more
//! restricts/confines.
//!
//! Run with `cargo run --release -p localias-bench --bin precision`.

use localias_alias::andersen::{self, Cell};
use localias_alias::steensgaard;
use localias_corpus::{random_module_source, DEFAULT_SEED};

/// Number of random pointer-heavy modules to compare.
const MODULES: u64 = 400;
/// Statements per module.
const STMTS: usize = 14;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);

    let mut pairs_total = 0usize;
    let mut aliased_uni = 0usize;
    let mut aliased_incl = 0usize;
    let mut modules_with_gap = 0usize;

    let t0 = std::time::Instant::now();
    for k in 0..MODULES {
        let src = random_module_source(seed.wrapping_add(k), STMTS);
        let parsed = localias_ast::parse_module("synth", &src).expect("generated modules parse");
        let pts = andersen::analyze(&parsed);
        let mut uni = steensgaard::analyze(&parsed);

        let mut gap_here = false;
        for f in parsed.functions() {
            let fun = f.name.name.as_str();
            let ptrs: Vec<(String, localias_alias::Loc)> = uni
                .state
                .vars
                .iter()
                .filter(|v| v.fun.as_deref() == Some(fun))
                .filter_map(|v| v.ty.pointee().map(|l| (v.name.clone(), l)))
                .collect();
            for i in 0..ptrs.len() {
                for j in (i + 1)..ptrs.len() {
                    pairs_total += 1;
                    let u = uni.state.locs.same(ptrs[i].1, ptrs[j].1);
                    let a = pts.may_point_same(
                        &Cell::Var(Some(fun.to_string()), ptrs[i].0.clone()),
                        &Cell::Var(Some(fun.to_string()), ptrs[j].0.clone()),
                    );
                    if u {
                        aliased_uni += 1;
                    }
                    if a {
                        aliased_incl += 1;
                    }
                    if u && !a {
                        gap_here = true;
                    }
                }
            }
        }
        if gap_here {
            modules_with_gap += 1;
        }
    }
    let elapsed = t0.elapsed();

    println!("Alias-analysis precision over {MODULES} random pointer-heavy modules (seed {seed})");
    println!();
    println!("{:<46} {:>10}", "pointer-local pairs compared", pairs_total);
    println!(
        "{:<46} {:>10}",
        "aliased under unification (Steensgaard)", aliased_uni
    );
    println!(
        "{:<46} {:>10}",
        "aliased under inclusion (Andersen)", aliased_incl
    );
    println!(
        "{:<46} {:>10}",
        "pairs only unification conflates",
        aliased_uni - aliased_incl
    );
    println!(
        "{:<46} {:>10}",
        "modules where precision differs", modules_with_gap
    );
    println!();
    println!("(both analyses over {MODULES} modules in {elapsed:.2?})");
}
