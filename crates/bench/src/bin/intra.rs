//! Benchmarks the wave-parallel intra-module checking pipeline on the
//! synthesized mega-module: one module, hundreds of functions, a wide
//! three-layer call DAG (see `localias_corpus::mega_module`).
//!
//! For each mode the frozen-analysis checker runs once sequentially
//! (`intra_jobs = 1`) and once wave-parallel, asserts the two reports are
//! identical (the pipeline's core invariant), and reports the speedup.
//!
//! Run with `cargo run --release -p localias-bench --bin intra`.
//! Accepts `[SEED] [--funs N] [--intra-jobs N] [--bench-out FILE]`;
//! `--intra-jobs` sets the parallel row's thread count (default: all
//! cores). The machine-readable report (`--bench-out`, conventionally
//! `BENCH_intra.json`) uses schema `localias-bench-intra/v3` with
//! per-wave timings from the parallel run; v2 added each wave's
//! `max_fun_seconds` — the straggler function that bounds how much
//! parallelism can help that wave — and v3 the `hist` latency block
//! (per-function check and per-wave histograms with exact percentiles).

use localias_bench::harness::best_of;
use localias_bench::{finish_obs, init_obs, json_hists, CliOpts};
use localias_corpus::{mega_module, DEFAULT_MEGA_FUNS};
use localias_cqual::{check_locks_frozen_timed, IntraStats, Mode};
use localias_obs as obs;
use std::fmt::Write as _;

const MODES: [(Mode, &str); 3] = [
    (Mode::NoConfine, "no_confine"),
    (Mode::Confine, "confine"),
    (Mode::AllStrong, "all_strong"),
];

/// Timing runs per row; the minimum is reported.
const REPS: usize = 3;

/// JSON float rendering (shortest round trip; non-finite degrades to 0).
fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".to_string()
    }
}

struct ModeRow {
    key: &'static str,
    sequential: f64,
    parallel: f64,
    stats: IntraStats,
}

fn main() {
    // Pre-extract `--funs N`; everything else is the shared surface.
    let mut rest = Vec::new();
    let mut funs = DEFAULT_MEGA_FUNS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--funs" {
            let val = args.next().unwrap_or_default();
            funs = match val.parse() {
                Ok(n) => n,
                Err(_) => {
                    obs::error!("intra: bad function count `{val}`");
                    std::process::exit(2);
                }
            };
        } else {
            rest.push(a);
        }
    }
    let opts = match CliOpts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("intra: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    if opts.cache_explicit {
        obs::warn!("intra: note: intra measures uncached analysis; cache flags are ignored");
    }
    // Default (1 = the surface's sequential default) means "all cores"
    // here: the sequential row is always measured anyway.
    let par_jobs = if opts.intra_jobs <= 1 {
        0
    } else {
        opts.intra_jobs
    };
    let seed = opts.seed_or_default();

    let m = mega_module(seed, funs);
    let parsed = m.parse();
    let mut shared = localias_core::SharedAnalysis::new(&parsed);

    println!("Intra-module wave parallelism on the mega-module ({funs} functions, seed {seed})");
    println!();
    println!(
        "{:<12} {:>16} {:>16} {:>9} {:>7}",
        "mode", "sequential (ms)", "parallel (ms)", "speedup", "waves"
    );

    let mut rows: Vec<ModeRow> = Vec::new();
    for (mode, key) in MODES {
        let (analysis, frozen) = match mode {
            Mode::Confine => shared.confine_frozen(),
            Mode::NoConfine | Mode::AllStrong => shared.base_frozen(),
        };

        // Reports are byte-identical run to run, so best-of-REPS may keep
        // the first run's report with the fastest run's time.
        let time = |jobs: usize, label: &'static str| {
            let ((report, stats), best) = best_of(label, REPS, || {
                check_locks_frozen_timed(&parsed, analysis, frozen, mode, jobs)
            });
            (best, report, stats)
        };

        let (sequential, seq_report, _) = time(1, "intra.sequential");
        let (parallel, par_report, stats) = time(par_jobs, "intra.parallel");
        assert_eq!(
            par_report, seq_report,
            "parallel report must be byte-identical to sequential ({mode:?})"
        );

        println!(
            "{:<12} {:>16.3} {:>16.3} {:>8.2}x {:>7}",
            key,
            sequential * 1e3,
            parallel * 1e3,
            sequential / parallel,
            stats.waves.len()
        );
        rows.push(ModeRow {
            key,
            sequential,
            parallel,
            stats,
        });
    }

    let total_seq: f64 = rows.iter().map(|r| r.sequential).sum();
    let total_par: f64 = rows.iter().map(|r| r.parallel).sum();
    let threads = rows[0].stats.threads;
    println!();
    println!(
        "overall: {:.3} ms sequential vs {:.3} ms on {threads} threads — {:.2}x",
        total_seq * 1e3,
        total_par * 1e3,
        total_seq / total_par
    );

    // Drain obs before rendering the report so the hist block covers
    // every timed run above.
    let obs_report = match finish_obs(&opts) {
        Ok(r) => r,
        Err(e) => {
            obs::error!("intra: {e}");
            std::process::exit(1);
        }
    };

    if let Some(path) = &opts.bench_out {
        let mut modes = String::new();
        for (i, r) in rows.iter().enumerate() {
            let waves: Vec<String> = r
                .stats
                .waves
                .iter()
                .map(|w| {
                    format!(
                        "{{\"functions\": {}, \"seconds\": {}, \"max_fun_seconds\": {}}}",
                        w.functions,
                        jf(w.seconds),
                        jf(w.max_fun_seconds)
                    )
                })
                .collect();
            let _ = write!(
                modes,
                "    \"{}\": {{\n      \"sequential_seconds\": {},\n      \
                 \"parallel_seconds\": {},\n      \"speedup\": {},\n      \
                 \"sccs\": {},\n      \"waves\": [{}]\n    }}{}\n",
                r.key,
                jf(r.sequential),
                jf(r.parallel),
                jf(r.sequential / r.parallel),
                r.stats.sccs,
                waves.join(", "),
                if i + 1 < rows.len() { "," } else { "" },
            );
        }
        let json = format!(
            "{{\n  \"schema\": \"localias-bench-intra/v3\",\n  \"seed\": {seed},\n  \
             \"funs\": {funs},\n  \"threads\": {threads},\n  \
             \"sequential_seconds\": {},\n  \"parallel_seconds\": {},\n  \
             \"speedup\": {},\n  \"hist\": {},\n  \"modes\": {{\n{modes}  }}\n}}\n",
            jf(total_seq),
            jf(total_par),
            jf(total_seq / total_par),
            json_hists(&obs_report.hists),
        );
        if let Err(e) = std::fs::write(path, json) {
            obs::error!("intra: {path}: {e}");
            std::process::exit(1);
        }
        println!("(wrote {path})");
    }
}
